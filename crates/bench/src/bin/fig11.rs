//! Regenerates Fig. 11: performance vs compile time across the options.
//!
//! `cargo run --release -p pld-bench --bin fig11 [tiny|small|medium]`

use pld::execute;
use pld_bench::{compile_suite, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let entries = compile_suite(scale);

    println!("Figure 11: Performance vs. Compile Time ({scale:?} scale)\n");
    println!(
        "{:18} {:8} {:>14} {:>16} {:>12}",
        "benchmark", "option", "compile (s)", "s/input", "norm perf"
    );

    let mut points: Vec<(f64, f64)> = Vec::new();
    for e in &entries {
        let inputs = e.bench.input_refs();
        let items = e.bench.items as f64;
        let o3_perf = execute::perf_o3(&e.o3).expect("o3").seconds_per_input / items;
        let rows = [
            (
                "Vitis",
                e.o3.compile_seconds(),
                execute::perf_vitis(&e.o3).expect("vitis").seconds_per_input / items,
            ),
            ("-O3", e.o3.compile_seconds(), o3_perf),
            (
                "-O1",
                e.o1.compile_seconds(),
                execute::perf_o1(&e.o1, &inputs)
                    .expect("o1")
                    .seconds_per_input
                    / items,
            ),
            (
                "-O0",
                e.o0.compile_seconds(),
                execute::perf_o0(&e.o0, &inputs)
                    .expect("o0")
                    .seconds_per_input
                    / items,
            ),
        ];
        for (name, compile_s, per_input) in rows {
            let norm = o3_perf / per_input; // 1.0 = -O3 performance
            println!(
                "{:18} {:8} {:>14.1} {:>16.6} {:>12.6}",
                e.bench.name, name, compile_s, per_input, norm
            );
            points.push((compile_s, norm));
        }
    }

    // ASCII scatter: log-x compile time, log-y normalized performance.
    println!("\nlog-log scatter (x: compile seconds, y: normalized performance):");
    let (w, h) = (64, 16);
    let xs: Vec<f64> = points.iter().map(|p| p.0.log10()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1.log10()).collect();
    let (x0, x1) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y0, y1) = (
        ys.iter().cloned().fold(f64::INFINITY, f64::min),
        ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let mut grid = vec![vec![' '; w]; h];
    for (x, y) in xs.iter().zip(&ys) {
        let cx = (((x - x0) / (x1 - x0).max(1e-9)) * (w as f64 - 1.0)) as usize;
        let cy = (((y - y0) / (y1 - y0).max(1e-9)) * (h as f64 - 1.0)) as usize;
        grid[h - 1 - cy][cx] = '*';
    }
    for row in grid {
        println!("  |{}", row.into_iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(w));
    println!(
        "\npaper shape: three clusters — seconds/slow (-O0), minutes/mid (-O1),\n\
         hours/fast (Vitis & -O3) — new points in the compile-time/performance\n\
         trade space (Sec. 7.4)."
    );
}
