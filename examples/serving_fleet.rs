//! Fleet-scale serving: thousands of apps on N simulated cards.
//!
//! The single-device serving example (`examples/serving.rs`) is this
//! story at N = 1. Here a fleet of 4 simulated XCU50 cards serves
//! 1100 apps submitted through the async admission front-end:
//!
//! 1. **Farm compiles** — the app variants are compiled concurrently on
//!    the build farm against one shared artifact store
//!    ([`pld::build_batch`]), the fleet's admission-compile path;
//! 2. **Async admission** — every submission returns an
//!    `AdmissionTicket` future; a hand-rolled executor drives the
//!    tickets while the fleet's scheduling passes place each app by
//!    cache-aware best-fit bin packing, evicting within each tenant's
//!    QoS class when pages run out;
//! 3. **Per-tenant QoS** — three tenants at fair-share weights 4/2/1
//!    with eviction classes Guaranteed/Standard/Revocable; serving is
//!    weighted round-robin and each epoch refills NoC injection-credit
//!    budgets proportional to weight (token-rate throttling in the
//!    linking network itself);
//! 4. **Live migration under load** — mid-run, resident apps are moved
//!    between cards by replaying their `LoadOp` tape on the destination;
//!    outputs before and after are bit-identical;
//! 5. the fleet's KPIs — p50/p99 admission latency, migration downtime,
//!    per-tenant fairness — land in `BENCH_serving.json`.
//!
//! Run with: `cargo run --release --example serving_fleet`
//! CI smoke mode (2 cards, 128 apps, no JSON): `-- --smoke`

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use dfg::{Graph, GraphBuilder, Target};
use fabric::{Floorplan, PageId};
use kir::types::Value;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{build_batch, CompileOptions, OptLevel, TieredCache};
use pld_runtime::{DeviceId, EvictClass, Executor, Fleet, FleetAppId, QosSpec, TenantId};

const STAGES: usize = 2;
const WAVE: usize = 8;

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..8,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

fn pipeline(name: &str, n: usize, addend: i64) -> Graph {
    let mut b = GraphBuilder::new(name);
    let mut prev = None;
    for i in 0..n {
        let id = b.add(
            format!("s{i}"),
            stage(&format!("s{i}"), addend),
            Target::riscv_auto(),
        );
        match prev {
            None => b.ext_input("Input_1", id, "in"),
            Some(p) => {
                b.connect(format!("l{i}"), p, "out", id, "in");
            }
        }
        prev = Some(id);
    }
    b.ext_output("Output_1", prev.unwrap(), "out");
    b.build().unwrap()
}

fn words(values: std::ops::Range<u32>) -> Vec<Value> {
    values
        .map(|v| Value::Int(aplib::DynInt::from_raw(32, false, v as u128)))
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_devices = if smoke { 2 } else { 4 };
    let total_apps = if smoke { 128 } else { 1200 };
    let n_variants = if smoke { 8 } else { 16 };

    // --- 1. Farm-compiled app variants against one *persistent* shared
    // store: every card's builder opens the same cache directory
    // (`PLD_CACHE_DIR`, or a private temp dir), so only the first builder
    // in the fleet pays for a variant — later devices rebuild it from the
    // segment files, across process boundaries.
    let opts = CompileOptions::new(OptLevel::O0);
    let graphs: Vec<Graph> = (0..n_variants)
        .map(|i| pipeline(&format!("v{i}"), STAGES, i as i64 + 1))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let (cache_dir, private_dir) = match std::env::var("PLD_CACHE_DIR") {
        Ok(d) => (std::path::PathBuf::from(d), false),
        Err(_) => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let dir = std::env::temp_dir()
                .join(format!("pld-fleet-cache-{}-{nanos}", std::process::id()));
            (dir, true)
        }
    };

    // Device 0's builder: cold, persists, exits.
    let t0 = Instant::now();
    {
        let mut cache = TieredCache::open(&cache_dir).expect("open shared cache dir");
        for r in build_batch(&graphs, &opts, &mut cache, workers) {
            r.expect("variant compiles at -O0");
        }
        cache.persist().expect("persist shared cache");
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // Device 1's builder: a fresh instance over the same directory. Every
    // stage product comes back from device 0's segments — the cross-device
    // warm path every remaining card in the fleet takes.
    let mut cache = TieredCache::open(&cache_dir).expect("reopen shared cache dir");
    let t0 = Instant::now();
    let batch = build_batch(&graphs, &opts, &mut cache, workers);
    let warm_secs = t0.elapsed().as_secs_f64();
    let (mut warm_hits, mut warm_execs) = (0u64, 0u64);
    let variants: Vec<_> = batch
        .into_iter()
        .map(|r| {
            let (app, report) = r.expect("variant compiles at -O0");
            warm_hits += report.total_hits();
            warm_execs += report.total_executions();
            app
        })
        .collect();
    let cross_device_hit_rate = warm_hits as f64 / (warm_hits + warm_execs).max(1) as f64;
    let shared_products = cache.disk_len();
    drop(cache);
    println!(
        "compiled {} app variants on {} farm workers: device-0 cold {:.1} ms, \
         device-1 warm {:.1} ms from {} shared on-disk products \
         (cross-device hit rate {:.3})",
        variants.len(),
        workers,
        cold_secs * 1e3,
        warm_secs * 1e3,
        shared_products,
        cross_device_hit_rate
    );
    assert!(
        cross_device_hit_rate >= 0.8,
        "second device's builder should rebuild warm, got {cross_device_hit_rate:.3}"
    );

    // --- 2. Fleet bring-up + tenant QoS contracts -------------------------
    let fp = Floorplan::u50();
    let fleet = Rc::new(RefCell::new(Fleet::new(n_devices, &fp)));
    let tenants = [
        (
            TenantId(0),
            QosSpec {
                weight: 4,
                evict: EvictClass::Guaranteed,
            },
        ),
        (
            TenantId(1),
            QosSpec {
                weight: 2,
                evict: EvictClass::Standard,
            },
        ),
        (
            TenantId(2),
            QosSpec {
                weight: 1,
                evict: EvictClass::Revocable,
            },
        ),
    ];
    {
        let mut f = fleet.borrow_mut();
        for (tenant, spec) in tenants {
            f.set_tenant(tenant, spec);
        }
        f.set_inject_base_credits(Some(16));
    }
    println!(
        "fleet up: {n_devices} devices x {} pages; tenants t0/t1/t2 at weights 4/2/1 \
         (guaranteed/standard/revocable)",
        fp.pages.len()
    );

    // --- 3. Async admission in waves, serving + migration under load ------
    // Apps hold a serving lease of a few waves; when it expires they
    // retire and their pages recycle — the churn that keeps every QoS
    // class admissible under sustained load.
    let slots = n_devices * (fp.pages.len() / STAGES);
    let lease = slots / WAVE + 1;
    let mut pool = Executor::new();
    type Admitted = Rc<RefCell<Vec<(FleetAppId, usize, TenantId, usize)>>>;
    let admitted: Admitted = Rc::new(RefCell::new(Vec::new()));
    let rejected = Rc::new(RefCell::new(0u64));
    let input = words(0..8);
    let mut cursors = [0usize; 3];
    let mut served_ok = 0u64;
    let mut migrations_ok = 0u64;
    let mut evicted_per_tenant = [0u64; 3];
    let mut tenant_of = std::collections::HashMap::new();
    let mut next = 0;
    let mut wave_idx = 0usize;
    let t_run = Instant::now();
    while next < total_apps || pool.pending() > 0 {
        wave_idx += 1;

        // Expired leases first: retired pages host this wave's arrivals.
        let expiring: Vec<FleetAppId> = {
            let f = fleet.borrow();
            admitted
                .borrow()
                .iter()
                .filter(|(id, _, _, wave)| wave + lease <= wave_idx && f.is_resident(*id))
                .map(|(id, _, _, _)| *id)
                .collect()
        };
        let mut retired = 0;
        for id in expiring {
            if fleet.borrow_mut().retire(id).is_ok() {
                retired += 1;
            }
        }
        if wave_idx.is_multiple_of(32) {
            println!(
                "wave {wave_idx}: {} resident, {retired} leases expired",
                fleet.borrow().stats().apps_resident
            );
        }

        // Submit one wave of async tickets.
        let wave_end = (next + WAVE).min(total_apps);
        for i in next..wave_end {
            let tenant = tenants[i % tenants.len()].0;
            let variant = i % variants.len();
            let ticket = match fleet.borrow_mut().submit_async(
                tenant,
                &format!("app{i}"),
                variants[variant].clone(),
            ) {
                Ok(ticket) => ticket,
                Err(e) => {
                    println!("submit of app{i} refused: {e}");
                    *rejected.borrow_mut() += 1;
                    continue;
                }
            };
            tenant_of.insert(ticket.app(), tenant);
            let admitted = Rc::clone(&admitted);
            let rejected = Rc::clone(&rejected);
            pool.spawn(async move {
                match ticket.await {
                    Ok(adm) => admitted
                        .borrow_mut()
                        .push((adm.app, variant, tenant, wave_idx)),
                    Err(_) => *rejected.borrow_mut() += 1,
                }
            });
        }
        next = wave_end;

        // One scheduling pass places the wave and resolves its tickets.
        let events = fleet.borrow_mut().pump();
        for e in &events {
            if let pld_runtime::FleetEvent::Evicted { app, .. } = e {
                if let Some(t) = tenant_of.get(app) {
                    evicted_per_tenant[t.0 as usize] += 1;
                }
            }
        }
        pool.run_until_stalled();

        // New epoch: refill every tenant's injection-credit budget.
        fleet.borrow_mut().refill_credits();

        // Weighted round-robin serving: `weight` requests per tenant per
        // epoch, against that tenant's resident apps.
        for (slot, (tenant, spec)) in tenants.iter().enumerate() {
            for _ in 0..spec.weight {
                let pick = {
                    let f = fleet.borrow();
                    let entries = admitted.borrow();
                    let mine: Vec<FleetAppId> = entries
                        .iter()
                        .filter(|(id, _, t, _)| *t == *tenant && f.is_resident(*id))
                        .map(|(id, _, _, _)| *id)
                        .collect();
                    if mine.is_empty() {
                        None
                    } else {
                        let id = mine[cursors[slot] % mine.len()];
                        cursors[slot] += 1;
                        Some(id)
                    }
                };
                if let Some(id) = pick {
                    if fleet
                        .borrow_mut()
                        .run(id, &[("Input_1", input.clone())])
                        .is_ok()
                    {
                        served_ok += 1;
                    }
                }
            }
        }

        // Live migration under load: every fourth wave, move one resident
        // Guaranteed app to the next card and check bit-identity.
        if !wave_idx.is_multiple_of(4) {
            continue;
        }
        if let Some((id, variant)) = {
            let f = fleet.borrow();
            let entries = admitted.borrow();
            entries
                .iter()
                .rev()
                .find(|(id, _, t, _)| *t == TenantId(0) && f.is_resident(*id))
                .map(|(id, variant, _, _)| (*id, *variant))
        } {
            let from = fleet.borrow().locate(id).expect("resident").0;
            let to = DeviceId((from.0 + 1) % n_devices);
            let before = fleet
                .borrow_mut()
                .run(id, &[("Input_1", input.clone())])
                .expect("resident app serves");
            let moved = fleet.borrow_mut().migrate(id, to);
            match moved {
                Ok(downtime) => {
                    let after = fleet
                        .borrow_mut()
                        .run(id, &[("Input_1", input.clone())])
                        .expect("migrated app serves");
                    assert_eq!(before, after, "migration must preserve outputs");
                    let expected: Vec<u32> = (0..8u32)
                        .map(|v| v + (variant as u32 + 1) * STAGES as u32)
                        .collect();
                    let got: Vec<u32> = after["Output_1"].iter().map(|v| v.raw() as u32).collect();
                    assert_eq!(got, expected, "migrated app computes its pipeline");
                    migrations_ok += 1;
                    if migrations_ok <= 3 {
                        println!(
                            "live migration: {} {from} -> {to}, {:.3} ms downtime, outputs bit-identical",
                            fleet.borrow().name_of(id).unwrap_or("?"),
                            downtime * 1e3
                        );
                    }
                }
                Err(e) => println!("migration of {id} skipped: {e}"),
            }
        }
    }

    // --- 4. Report ---------------------------------------------------------
    let stats = fleet.borrow().stats();
    let throttled_pages: usize = {
        let f = fleet.borrow();
        (0..n_devices)
            .map(|d| {
                let dev = f.device(DeviceId(d)).expect("device").device();
                (0..fp.pages.len())
                    .filter(|&p| dev.page_inject_budget(PageId(p as u32)).is_some())
                    .count()
            })
            .sum()
    };
    println!(
        "\n{} apps submitted, {} admitted, {} rejected, {} evictions, {} migrations in {:.1} s",
        stats.submitted,
        stats.admitted,
        *rejected.borrow(),
        evicted_per_tenant.iter().sum::<u64>(),
        stats.migrations,
        t_run.elapsed().as_secs_f64()
    );
    println!(
        "evictions by class: guaranteed(t0) {}, standard(t1) {}, revocable(t2) {}",
        evicted_per_tenant[0], evicted_per_tenant[1], evicted_per_tenant[2]
    );
    println!(
        "served {served_ok} requests; {throttled_pages} pages under injection-credit throttle"
    );
    println!(
        "admission latency: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        stats.admission.percentile(0.50) * 1e3,
        stats.admission.percentile(0.99) * 1e3,
        stats.admission.max_seconds() * 1e3
    );
    for t in &stats.tenants {
        println!(
            "  {}: weight {}, {} served ({:.1} per weight unit)",
            t.tenant,
            t.weight,
            t.served,
            t.served as f64 / t.weight.max(1) as f64
        );
    }
    println!("weighted fairness (Jain): {:.4}", stats.fairness_index());

    // The claims this example exists to demonstrate.
    let min_admitted = if smoke { 90 } else { 1000 };
    assert!(
        stats.admitted >= min_admitted,
        "only {} of {} apps admitted",
        stats.admitted,
        stats.submitted
    );
    assert!(migrations_ok >= 1, "no successful live migration");
    assert!(
        stats.fairness_index() >= 0.8,
        "weighted fairness degraded: {}",
        stats.fairness_index()
    );

    if smoke {
        println!("\nsmoke mode: skipping BENCH_serving.json");
    } else {
        // Splice the shared-cache KPIs into the fleet stats JSON: drop the
        // closing brace and append a sibling "cache" object.
        let mut json = stats.to_json();
        let at = json.rfind('}').expect("stats JSON has a closing brace");
        json.truncate(at);
        json.push_str(&format!(
            "  ,\"cache\": {{\n    \"shared_store_products\": {shared_products},\n    \"device0_cold_build_seconds\": {cold_secs:.4},\n    \"device1_warm_build_seconds\": {warm_secs:.4},\n    \"cross_device_hit_rate\": {cross_device_hit_rate:.3}\n  }}\n}}\n"
        ));
        std::fs::write("BENCH_serving.json", json).expect("write BENCH_serving.json");
        println!("\nwrote BENCH_serving.json");
    }
    if private_dir {
        std::fs::remove_dir_all(&cache_dir).ok();
    }
}
