//! Performance models: the numbers behind Tab. 3, Fig. 10 and Fig. 11.
//!
//! Six execution modes, as in the paper's Tab. 3:
//!
//! * **Vitis** — the original monolithic design: bottleneck-operator cycles
//!   at the frequency of a *fused* netlist (operators wired directly, no
//!   isolating FIFOs — the long wires and SLR crossings the paper says can
//!   hurt the original designs);
//! * **`-O3`** — the PLD monolithic build: same bottleneck cycles at the
//!   FIFO-isolated kernel's post-P&R frequency;
//! * **`-O1`** — a cycle-level co-simulation of the page-decomposed design:
//!   fluid operator actors exchanging every token through the BFT linking
//!   network at 200 MHz, which is where the paper's 1.5–10× slowdowns come
//!   from;
//! * **`-O0`** — every operator executed on its page softcore (real RV32
//!   emulation of the compiled binaries); the pipeline bottleneck is the
//!   slowest softcore;
//! * **X86** — native host execution of the same graph (measured);
//! * **Emu** — RTL-style emulation of the monolithic netlist (measured
//!   event rate, extrapolated).
//!
//! Mixed `-O0`/`-O1` mappings (Fig. 10) fall out of the `-O1` co-simulation
//! by giving softcore-mapped operators their measured softcore cycle counts.

use dfg::{run_graph_trace, Graph, Target};
use kir::types::Value;
use noc::BftNoc;
use std::collections::VecDeque;
use std::fmt;

use crate::flow::{CompiledApp, OptLevel};

/// The overlay clock: the linking network and page logic run at 200 MHz
/// (paper Sec. 7.1).
pub const OVERLAY_MHZ: f64 = 200.0;

/// Execution mode of a performance measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// Original monolithic design under the vendor flow.
    Vitis,
    /// PLD monolithic (`-O3`).
    O3,
    /// PLD page-decomposed (`-O1`).
    O1,
    /// PLD all-softcore (`-O0`).
    O0,
    /// Native host execution.
    X86,
    /// RTL-style emulation.
    VitisEmu,
}

impl fmt::Display for RunMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunMode::Vitis => "Vitis",
            RunMode::O3 => "PLD -O3",
            RunMode::O1 => "PLD -O1",
            RunMode::O0 => "PLD -O0",
            RunMode::X86 => "X86 g++",
            RunMode::VitisEmu => "Vitis Emu",
        };
        f.write_str(s)
    }
}

/// One performance measurement (one cell group of Tab. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Mode measured.
    pub mode: RunMode,
    /// Clock frequency of the implementation (0 for host/emulation rows).
    pub fmax_mhz: f64,
    /// Simulated (or measured) seconds to process one input.
    pub seconds_per_input: f64,
    /// Simulated cycles (0 when not cycle-based).
    pub cycles: u64,
}

/// Performance-model failures.
#[derive(Debug)]
pub enum PerfError {
    /// Functional execution failed.
    Graph(dfg::GraphRunError),
    /// A softcore run failed.
    #[allow(missing_docs)]
    Softcore {
        op: String,
        error: softcore::RunError,
    },
    /// The co-simulation did not converge within its cycle budget.
    #[allow(missing_docs)]
    CycleBudget { cycles: u64 },
    /// The app was compiled at a level incompatible with the requested model.
    #[allow(missing_docs)]
    WrongLevel { expected: OptLevel },
}

impl fmt::Display for PerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerfError::Graph(e) => write!(f, "functional run failed: {e}"),
            PerfError::Softcore { op, error } => {
                write!(f, "softcore run of `{op}` failed: {error}")
            }
            PerfError::CycleBudget { cycles } => {
                write!(f, "co-simulation exceeded {cycles} cycles")
            }
            PerfError::WrongLevel { expected } => {
                write!(f, "model requires an app compiled at {expected}")
            }
        }
    }
}

impl std::error::Error for PerfError {}

impl From<dfg::GraphRunError> for PerfError {
    fn from(e: dfg::GraphRunError) -> Self {
        PerfError::Graph(e)
    }
}

fn words_of(values: &[Value]) -> u64 {
    values.iter().map(|v| v.scalar().words() as u64).sum()
}

/// Per-operator cycle counts for one input under direct FIFOs (`-O3`).
fn hw_cycles(app: &CompiledApp) -> Vec<u64> {
    app.operators
        .iter()
        .map(|o| o.hls.as_ref().map(|h| h.invocation_cycles).unwrap_or(1))
        .collect()
}

/// Per-operator cycle counts behind the overlay leaf interface (`-O1`).
fn overlay_hw_cycles(app: &CompiledApp) -> Vec<u64> {
    app.operators
        .iter()
        .map(|o| o.hls.as_ref().map(|h| h.overlay_cycles).unwrap_or(1))
        .collect()
}

/// Softcore cycle counts for one input, by actually running the compiled
/// binaries on the traced input streams.
fn softcore_cycles(app: &CompiledApp, trace: &dfg::GraphTrace) -> Result<Vec<u64>, PerfError> {
    let mut out = Vec::with_capacity(app.operators.len());
    for (i, op) in app.operators.iter().enumerate() {
        let Some(binary) = &op.soft else {
            out.push(0);
            continue;
        };
        let inputs: Vec<Vec<u32>> = trace.op_inputs[i]
            .iter()
            .map(kir::wire::stream_to_words)
            .collect();
        let result = softcore::execute(binary, &inputs, 50_000_000_000).map_err(|error| {
            PerfError::Softcore {
                op: op.name.clone(),
                error,
            }
        })?;
        out.push(result.cycles);
    }
    Ok(out)
}

/// Vitis row: bottleneck cycles at the fused-design frequency.
///
/// The fused frequency penalty reflects the paper's observation that the
/// original monolithic designs "may suffer from long wires and slow SLR
/// crossings" that PLD's `-O3` FIFOs isolate.
pub fn perf_vitis(app: &CompiledApp) -> Result<PerfReport, PerfError> {
    let mono = app.monolithic.as_ref().ok_or(PerfError::WrongLevel {
        expected: OptLevel::O3,
    })?;
    let cycles = hw_cycles(app).into_iter().max().unwrap_or(1);
    // Fused design: measured when the fused baseline compiled; otherwise the
    // analytic long-wire model (critical path plus the worst net delay).
    let fmax = match &mono.fused_timing {
        Some(t) => t.fmax_mhz.min(300.0),
        None => (1000.0 / (mono.timing.critical_ns + mono.timing.worst_net_ns)).min(300.0),
    };
    Ok(PerfReport {
        mode: RunMode::Vitis,
        fmax_mhz: fmax,
        seconds_per_input: cycles as f64 / (fmax * 1e6),
        cycles,
    })
}

/// `-O3` row: bottleneck cycles at the kernel's post-P&R frequency.
pub fn perf_o3(app: &CompiledApp) -> Result<PerfReport, PerfError> {
    let mono = app.monolithic.as_ref().ok_or(PerfError::WrongLevel {
        expected: OptLevel::O3,
    })?;
    let cycles = hw_cycles(app).into_iter().max().unwrap_or(1);
    let fmax = mono.timing.fmax_mhz.min(300.0);
    Ok(PerfReport {
        mode: RunMode::O3,
        fmax_mhz: fmax,
        seconds_per_input: cycles as f64 / (fmax * 1e6),
        cycles,
    })
}

/// `-O1` (and mixed `-O0`/`-O1`) row: cycle-level co-simulation of fluid
/// operator actors over the BFT linking network.
///
/// # Errors
///
/// See [`PerfError`].
pub fn perf_o1(app: &CompiledApp, inputs: &[(&str, Vec<Value>)]) -> Result<PerfReport, PerfError> {
    if app.level == OptLevel::O3 {
        return Err(PerfError::WrongLevel {
            expected: OptLevel::O1,
        });
    }
    let graph = &app.graph;
    let (outputs, _stats, trace) = run_graph_trace(graph, inputs)?;
    let soft_cycles = softcore_cycles(app, &trace)?;
    let hw = overlay_hw_cycles(app);

    // Per-operator total compute cycles for this workload.
    let compute: Vec<u64> = app
        .operators
        .iter()
        .enumerate()
        .map(|(i, o)| match o.target {
            Target::Hw { .. } => hw[i].max(1),
            Target::Riscv { .. } => soft_cycles[i].max(1),
        })
        .collect();

    // Token budgets per operator port, from the trace (exact).
    let in_words: Vec<Vec<u64>> = trace
        .op_inputs
        .iter()
        .map(|ports| ports.iter().map(|s| words_of(s)).collect())
        .collect();
    // Output words per (operator, output port index).
    let mut out_words: Vec<Vec<u64>> = graph
        .operators
        .iter()
        .map(|o| vec![0u64; o.kernel.outputs.len()])
        .collect();
    for e in &graph.edges {
        let dst_port = graph.operators[e.to.0 .0]
            .kernel
            .inputs
            .iter()
            .position(|p| p.name == e.to.1)
            .unwrap();
        let src_port = graph.operators[e.from.0 .0]
            .kernel
            .outputs
            .iter()
            .position(|p| p.name == e.from.1)
            .unwrap();
        out_words[e.from.0 .0][src_port] = in_words[e.to.0 .0][dst_port];
    }
    let mut ext_out_words = 0u64;
    for (pi, p) in graph.ext_outputs.iter().enumerate() {
        let src_port = graph.operators[p.op.0]
            .kernel
            .outputs
            .iter()
            .position(|o| o.name == p.port)
            .unwrap();
        let words = words_of(&outputs[&p.name]);
        out_words[p.op.0][src_port] = words;
        ext_out_words += words;
        let _ = pi;
    }

    // NoC setup: one leaf per page, plus DMA-in and DMA-out leaves.
    let n_pages = app.floorplan.pages.len();
    let max_ports = graph
        .operators
        .iter()
        .map(|o| o.kernel.inputs.len().max(o.kernel.outputs.len()))
        .max()
        .unwrap_or(1)
        .max(graph.ext_inputs.len())
        .max(graph.ext_outputs.len());
    let mut net = BftNoc::new(n_pages + 2, max_ports, 32);
    for link in &app.driver.links {
        net.set_dest(link.src_leaf as usize, link.stream as usize, link.dest);
    }

    let leaf_of: Vec<usize> = app
        .operators
        .iter()
        .map(|o| o.page.map(|p| p.0 as usize).unwrap_or(0))
        .collect();
    let dma_in = app.dma_in_leaf() as usize;
    let dma_out = app.dma_out_leaf() as usize;

    // DMA input queues: per ext input stream index, the word queue.
    let mut dma_queues: Vec<VecDeque<u32>> = Vec::new();
    for (idx, p) in graph.ext_inputs.iter().enumerate() {
        let stream = inputs
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[]);
        let words: VecDeque<u32> = stream.iter().flat_map(kir::wire::to_words).collect();
        dma_queues.push(words);
        let _ = idx;
    }

    // Fluid actors.
    struct Actor {
        leaf: usize,
        compute: u64,
        progress: u64,
        in_need: Vec<u64>,
        consumed: Vec<u64>,
        out_total: Vec<u64>,
        emitted: Vec<u64>,
        injected: Vec<u64>,
    }
    let mut actors: Vec<Actor> = graph
        .operators
        .iter()
        .enumerate()
        .map(|(i, o)| Actor {
            leaf: leaf_of[i],
            compute: compute[i],
            progress: 0,
            in_need: in_words[i].clone(),
            consumed: vec![0; o.kernel.inputs.len()],
            out_total: out_words[i].clone(),
            emitted: vec![0; o.kernel.outputs.len()],
            injected: vec![0; o.kernel.outputs.len()],
        })
        .collect();

    let mut received_ext = 0u64;
    let max_cycles: u64 = 4_000_000_000;
    let mut cycles = 0u64;

    while received_ext < ext_out_words {
        if cycles >= max_cycles {
            return Err(PerfError::CycleBudget { cycles });
        }
        // DMA in: one word per cycle onto its uplink.
        for (stream_idx, q) in dma_queues.iter_mut().enumerate() {
            if let Some(&w) = q.front() {
                if net.inject(dma_in, stream_idx, w).is_ok() {
                    q.pop_front();
                }
                break; // single uplink: one injection attempt per cycle
            }
        }

        for actor in &mut actors {
            // Drain arrived tokens.
            for (port, consumed) in actor.consumed.iter_mut().enumerate() {
                while net.try_recv(actor.leaf, port as u8).is_some() {
                    *consumed += 1;
                }
            }
            // Advance the fluid compute front if input coverage allows.
            if actor.progress < actor.compute {
                let t = actor.progress + 1;
                let ready = actor
                    .in_need
                    .iter()
                    .zip(&actor.consumed)
                    .all(|(&need, &have)| {
                        let required = (need as u128 * t as u128).div_ceil(actor.compute as u128);
                        have as u128 >= required
                    });
                if ready {
                    actor.progress = t;
                }
            }
            // Emit due output words.
            for (stream, emitted) in actor.emitted.iter_mut().enumerate() {
                let due = (actor.out_total[stream] as u128 * actor.progress as u128
                    / actor.compute as u128) as u64;
                *emitted = due;
            }
            // Inject pending words (uplink backpressure limits the rate).
            for stream in 0..actor.injected.len() {
                while actor.injected[stream] < actor.emitted[stream] {
                    if net.inject(actor.leaf, stream, 0).is_ok() {
                        actor.injected[stream] += 1;
                    } else {
                        break;
                    }
                }
            }
        }

        net.step();
        cycles += 1;

        // DMA out: count arrivals on every port.
        for port in 0..max_ports {
            while net.try_recv(dma_out, port as u8).is_some() {
                received_ext += 1;
            }
        }
    }

    Ok(PerfReport {
        mode: RunMode::O1,
        fmax_mhz: OVERLAY_MHZ,
        seconds_per_input: crate::vtime::overlay_seconds(cycles),
        cycles,
    })
}

/// `-O0` row: every operator on its softcore; the pipeline bottleneck is
/// the slowest core (they run concurrently, linked by the NoC, whose
/// bandwidth is negligible next to softcore compute).
pub fn perf_o0(app: &CompiledApp, inputs: &[(&str, Vec<Value>)]) -> Result<PerfReport, PerfError> {
    if app.operators.iter().any(|o| o.soft.is_none()) {
        return Err(PerfError::WrongLevel {
            expected: OptLevel::O0,
        });
    }
    let (_outputs, _stats, trace) = run_graph_trace(&app.graph, inputs)?;
    let cycles = softcore_cycles(app, &trace)?.into_iter().max().unwrap_or(1);
    Ok(PerfReport {
        mode: RunMode::O0,
        fmax_mhz: OVERLAY_MHZ,
        seconds_per_input: crate::vtime::overlay_seconds(cycles),
        cycles,
    })
}

/// X86 row: measured native execution of the same graph.
pub fn perf_x86(graph: &Graph, inputs: &[(&str, Vec<Value>)]) -> Result<PerfReport, PerfError> {
    let t0 = std::time::Instant::now();
    let _ = dfg::run_graph(graph, inputs)?;
    let seconds = t0.elapsed().as_secs_f64();
    Ok(PerfReport {
        mode: RunMode::X86,
        fmax_mhz: 0.0,
        seconds_per_input: seconds,
        cycles: 0,
    })
}

/// Vitis-Emu row: RTL-style emulation of the monolithic netlist. Measures
/// the real event rate on a calibration slice, then extrapolates to the
/// bottleneck cycle count.
pub fn perf_emu(app: &CompiledApp) -> Result<PerfReport, PerfError> {
    let mono = app.monolithic.as_ref().ok_or(PerfError::WrongLevel {
        expected: OptLevel::O3,
    })?;
    let cycles = hw_cycles(app).into_iter().max().unwrap_or(1);
    let probe = netlist::emulate(&mono.netlist, 2_000);
    let events_needed = cycles.saturating_mul(mono.netlist.cell_count() as u64);
    let seconds = events_needed as f64 / probe.events_per_second();
    Ok(PerfReport {
        mode: RunMode::VitisEmu,
        fmax_mhz: 0.0,
        seconds_per_input: seconds,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{compile, CompileOptions};
    use aplib::DynInt;
    use dfg::GraphBuilder;
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    const N: i64 = 64;

    fn stage(name: &str) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..N,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(1))),
                ],
            )])
            .build()
            .unwrap()
    }

    fn graph(targets: [Target; 2]) -> Graph {
        let mut b = GraphBuilder::new("g");
        let a = b.add("a", stage("a"), targets[0]);
        let c = b.add("c", stage("c"), targets[1]);
        b.ext_input("Input_1", a, "in");
        b.connect("l", a, "out", c, "in");
        b.ext_output("Output_1", c, "out");
        b.build().unwrap()
    }

    fn words() -> Vec<Value> {
        (0..N as u128)
            .map(|i| Value::Int(DynInt::from_raw(32, false, i)))
            .collect()
    }

    #[test]
    fn tab3_ordering_o3_beats_o1_beats_o0() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let o3_app = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        let o1_app = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        let o0_app = compile(&g, &CompileOptions::new(OptLevel::O0)).unwrap();

        let inputs = vec![("Input_1", words())];
        let o3 = perf_o3(&o3_app).unwrap();
        let o1 = perf_o1(&o1_app, &inputs).unwrap();
        let o0 = perf_o0(&o0_app, &inputs).unwrap();

        assert!(
            o3.seconds_per_input < o1.seconds_per_input,
            "{o3:?} vs {o1:?}"
        );
        assert!(
            o1.seconds_per_input * 10.0 < o0.seconds_per_input,
            "softcores are orders of magnitude slower: {o1:?} vs {o0:?}"
        );
        assert_eq!(o1.fmax_mhz, 200.0);
    }

    #[test]
    fn o1_cosim_delivers_all_tokens() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        let r = perf_o1(&app, &[("Input_1", words())]).unwrap();
        // At least one cycle per word through the shared uplinks.
        assert!(r.cycles >= N as u64, "{}", r.cycles);
    }

    #[test]
    fn mixed_mapping_lands_between_extremes() {
        let inputs = vec![("Input_1", words())];
        let all_hw = compile(
            &graph([Target::hw_auto(), Target::hw_auto()]),
            &CompileOptions::new(OptLevel::O1),
        )
        .unwrap();
        let mixed = compile(
            &graph([Target::riscv_auto(), Target::hw_auto()]),
            &CompileOptions::new(OptLevel::O1),
        )
        .unwrap();
        let all_soft = compile(
            &graph([Target::hw_auto(), Target::hw_auto()]),
            &CompileOptions::new(OptLevel::O0),
        )
        .unwrap();

        let hw = perf_o1(&all_hw, &inputs).unwrap();
        let mix = perf_o1(&mixed, &inputs).unwrap();
        let soft = perf_o0(&all_soft, &inputs).unwrap();
        assert!(hw.seconds_per_input <= mix.seconds_per_input);
        // Fig. 10's point: one softcore can approach the all-softcore case
        // but never beats the all-hardware one.
        assert!(mix.seconds_per_input <= soft.seconds_per_input * 1.05);
    }

    #[test]
    fn vitis_fused_is_not_faster_than_o3() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        let vitis = perf_vitis(&app).unwrap();
        let o3 = perf_o3(&app).unwrap();
        assert!(vitis.fmax_mhz <= o3.fmax_mhz + 1e-9);
    }

    #[test]
    fn emulation_is_much_slower_than_hardware() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        let o3 = perf_o3(&app).unwrap();
        let emu = perf_emu(&app).unwrap();
        // The emulator rate comes from a wall-clock probe of the host, so
        // the exact ratio varies with machine and build profile; the stable
        // claim is only that emulation never beats modeled hardware.
        assert!(emu.seconds_per_input > o3.seconds_per_input);
    }

    #[test]
    fn x86_measures_wall_clock() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let r = perf_x86(&g, &[("Input_1", words())]).unwrap();
        assert!(r.seconds_per_input > 0.0);
    }

    #[test]
    fn wrong_level_rejected() {
        let g = graph([Target::hw_auto(), Target::hw_auto()]);
        let o1_app = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        assert!(matches!(
            perf_o3(&o1_app),
            Err(PerfError::WrongLevel { .. })
        ));
        let o3_app = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        assert!(matches!(
            perf_o1(&o3_app, &[("Input_1", words())]),
            Err(PerfError::WrongLevel { .. })
        ));
    }
}
