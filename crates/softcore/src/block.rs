//! Pre-decoded basic-block execution: the fast path of the softcore.
//!
//! [`Cpu::step`] pays fetch + decode + dispatch for every simulated
//! instruction even though firmware is static between hot swaps. This
//! module decodes straight-line runs of instructions **once** into dense
//! micro-op buffers — immediates folded, register indices unpacked, branch
//! targets and link values pre-computed, cycle costs resolved — and
//! executes them with a tight dispatch loop ([`Cpu::run_ahead`]) that only
//! returns to the driver when the *next* instruction must interact with
//! the outside world (a stream-port access, `ebreak`, or a trap) or a
//! budget runs out. The driver then performs that one externally-visible
//! instruction through [`Cpu::step_cached`], which executes the single
//! pre-decoded micro-op — stream I/O, stalls, traps and all — mirroring
//! the decode-per-step [`Cpu::step`] case for case. `step` stays the
//! unmodified reference implementation, and the differential test suite
//! asserts the two engines produce bit-identical architectural state,
//! cycle counts, instruction counts, and stream traffic.
//!
//! Invalidation is centralized at the two places softcore memory is ever
//! written — `store_n` (covering executed stores *and* `ecall` intrinsic
//! slot writes) and [`Cpu::load`] (covering the loader and runtime
//! hot-swap reloads) — so self-modifying stores and swapped-in firmware
//! can never execute stale micro-ops. A store outside the cached span
//! costs one compare; an overlapping write drops the affected blocks and
//! bumps an epoch the dispatch loop checks after every memory write,
//! aborting the current block if its backing bytes may have changed.

use std::sync::Arc;

use crate::cpu::Cpu;
use crate::firmware::{self, cycles};
use crate::isa::Instr;

/// Longest straight-line run decoded into one block.
const MAX_BLOCK_OPS: usize = 64;

/// Default hot-trace promotion threshold for the superblock tier: a block
/// entered this many times is trace-linked across its recorded control
/// transfers (see [`Cpu::set_superblock_threshold`]).
pub const DEFAULT_SUPERBLOCK_THRESHOLD: u32 = 16;

/// Longest superblock trace, in micro-ops.
const MAX_SUPER_OPS: usize = 256;

/// Most constituent straight-line blocks linked into one superblock.
const MAX_SUPER_SPANS: usize = 8;

/// `succ` sentinel: no recorded successor (pcs are 4-aligned, never MAX).
const NO_SUCC: u32 = u32::MAX;

/// `heat` sentinel: entry already promoted to a superblock.
const PROMOTED: u32 = u32::MAX;

/// Pre-resolved load flavour (width + extension folded at decode time).
#[derive(Debug, Clone, Copy)]
enum LoadKind {
    Word,
    Half,
    HalfU,
    Byte,
    ByteU,
}

impl LoadKind {
    #[inline]
    fn len(self) -> u32 {
        match self {
            LoadKind::Word => 4,
            LoadKind::Half | LoadKind::HalfU => 2,
            LoadKind::Byte | LoadKind::ByteU => 1,
        }
    }
}

/// Pre-resolved store width.
#[derive(Debug, Clone, Copy)]
enum StoreKind {
    Word,
    Half,
    Byte,
}

impl StoreKind {
    #[inline]
    fn len(self) -> u32 {
        match self {
            StoreKind::Word => 4,
            StoreKind::Half => 2,
            StoreKind::Byte => 1,
        }
    }
}

/// Branch predicate.
#[derive(Debug, Clone, Copy)]
enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// One pre-decoded micro-op. Register indices are unpacked to `u8`,
/// immediates are pre-cast to the `u32` the wrapping arithmetic wants,
/// shift amounts are pre-masked, and control transfers carry absolute
/// `target`/`link` addresses so the dispatch loop never re-derives them.
#[derive(Debug, Clone, Copy)]
enum UOp {
    Lui {
        rd: u8,
        imm: u32,
    },
    Addi {
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    Andi {
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    Ori {
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    Xori {
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    Slli {
        rd: u8,
        rs1: u8,
        shamt: u32,
    },
    Srli {
        rd: u8,
        rs1: u8,
        shamt: u32,
    },
    Srai {
        rd: u8,
        rs1: u8,
        shamt: u32,
    },
    Add {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sub {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sll {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Srl {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sra {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Slt {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Sltu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    And {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Or {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Xor {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Mul {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Div {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Divu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Rem {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Remu {
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    Load {
        rd: u8,
        rs1: u8,
        imm: u32,
        kind: LoadKind,
    },
    Store {
        rs1: u8,
        rs2: u8,
        imm: u32,
        kind: StoreKind,
    },
    Branch {
        rs1: u8,
        rs2: u8,
        cond: Cond,
        target: u32,
    },
    Jal {
        rd: u8,
        link: u32,
        target: u32,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        imm: u32,
        link: u32,
    },
    Ecall,
}

/// A decoded straight-line block: micro-ops for the instruction words at
/// `[start, end)`. Blocks end at the first control transfer (included —
/// it executes in the dispatch loop) or at the first instruction the fast
/// path must hand back to [`Cpu::step`] (`ebreak`, an undecodable word, a
/// fetch past memory — all excluded, so `end` covers exactly the decoded
/// bytes the cache must watch for writes).
#[derive(Debug)]
struct Block {
    start: u32,
    end: u32,
    ops: Box<[UOp]>,
}

/// A superblock: micro-op blocks trace-linked across control transfers in
/// the direction the profile last observed. Execution runs the ops
/// linearly; each control op computes its real successor and keeps going
/// only while it matches the recorded trace (`pc_of` continuation), jumps
/// back to op 0 when it re-enters the trace head (the hot-loop special
/// case), and side-exits otherwise. Non-control seams are contiguous by
/// construction, so only control transfers are ever checked.
#[derive(Debug)]
struct Superblock {
    entry: u32,
    ops: Box<[UOp]>,
    /// Address of each op (the trace is not contiguous across branches).
    pc_of: Box<[u32]>,
    /// Constituent straight-line spans, watched by store invalidation.
    spans: Box<[(u32, u32)]>,
}

/// The per-core block cache: a direct-mapped table indexed by `pc >> 2`
/// (entries verify their exact `start`, so misaligned or colliding entry
/// points miss instead of aliasing), plus the union span of cached bytes
/// for the one-compare store fast path.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCache {
    slots: Vec<Option<Arc<Block>>>,
    /// Union span of decoded bytes; `hi == 0` means the cache is empty.
    lo: u32,
    hi: u32,
    /// Bumped on every invalidation; the dispatch loop snapshots it per
    /// block and aborts the block when it moves.
    epoch: u64,
    decoded: u64,
    invalidations: u64,
    /// Superblock tier (active when `promote_after != 0`): direct-mapped
    /// traces keyed by `entry >> 2` with exact-entry verification.
    supers: Vec<Option<Arc<Superblock>>>,
    /// Per-entry execution counters (`pc >> 2`), the promotion profile.
    heat: Vec<u32>,
    /// Last observed successor block entry per entry (`pc >> 2`).
    succ: Vec<u32>,
    /// Promotion threshold; `0` disables the superblock tier entirely
    /// (no profiling overhead on the plain block-cached path).
    promote_after: u32,
    formed: u64,
}

/// Block-cache counters, exposed for diagnostics and the differential
/// tests (a self-modifying store must show up here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcacheStats {
    /// Blocks currently cached.
    pub blocks: usize,
    /// Blocks decoded since reset (includes re-decodes after invalidation).
    pub decoded: u64,
    /// Invalidation events (writes that dropped at least one block).
    pub invalidations: u64,
    /// Superblock traces currently live.
    pub superblocks: usize,
    /// Superblock traces formed since reset (includes re-formations).
    pub superblocks_formed: u64,
}

impl BlockCache {
    #[inline]
    fn get(&self, pc: u32) -> Option<&Arc<Block>> {
        match self.slots.get((pc >> 2) as usize) {
            Some(Some(b)) if b.start == pc => Some(b),
            _ => None,
        }
    }

    fn insert(&mut self, block: Arc<Block>) {
        debug_assert!(!block.ops.is_empty());
        let idx = (block.start >> 2) as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.hi == 0 {
            self.lo = block.start;
            self.hi = block.end;
        } else {
            self.lo = self.lo.min(block.start);
            self.hi = self.hi.max(block.end);
        }
        self.decoded += 1;
        self.slots[idx] = Some(block);
    }

    /// Drops every block whose decoded bytes overlap `[addr, addr+len)`.
    /// The fast path is the two compares against the union span.
    #[inline]
    pub(crate) fn invalidate(&mut self, addr: u32, len: u32) {
        if addr >= self.hi || addr.saturating_add(len) <= self.lo {
            return;
        }
        self.invalidate_slow(addr, len);
    }

    #[cold]
    fn invalidate_slow(&mut self, addr: u32, len: u32) {
        let end = addr.saturating_add(len);
        let mut dropped = false;
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for slot in self.slots.iter_mut() {
            let Some(b) = slot else { continue };
            if b.start < end && addr < b.end {
                *slot = None;
                dropped = true;
            } else {
                lo = lo.min(b.start);
                hi = hi.max(b.end);
            }
        }
        // Superblocks watch the union of their constituent spans; a write
        // into any span tears the whole trace down (execution falls back to
        // plain blocks, which re-decode the fresh bytes).
        for slot in self.supers.iter_mut() {
            let Some(sb) = slot else { continue };
            if sb.spans.iter().any(|&(s, e)| s < end && addr < e) {
                *slot = None;
                dropped = true;
            } else {
                for &(s, e) in sb.spans.iter() {
                    lo = lo.min(s);
                    hi = hi.max(e);
                }
            }
        }
        if dropped {
            if hi == 0 {
                self.lo = 0;
            } else {
                self.lo = lo;
            }
            self.hi = hi;
            self.epoch += 1;
            self.invalidations += 1;
            // The profile described the old bytes; restart it.
            self.heat.iter_mut().for_each(|h| *h = 0);
            self.succ.iter_mut().for_each(|s| *s = NO_SUCC);
        }
    }

    /// Looks up a superblock whose trace head is exactly `pc`.
    #[inline]
    fn super_at(&self, pc: u32) -> Option<&Arc<Superblock>> {
        match self.supers.get((pc >> 2) as usize) {
            Some(Some(sb)) if sb.entry == pc => Some(sb),
            _ => None,
        }
    }

    /// Records a block entry for the promotion profile: `prev → now` is the
    /// observed control-flow edge, and `now`'s heat climbs toward the
    /// promotion threshold — crossing it trace-links a superblock from the
    /// recorded successor chain. Only called when the tier is enabled; the
    /// profile steers performance only, never architectural state.
    fn profile(&mut self, prev: Option<u32>, now: u32, mem: &[u8]) {
        let i = (now >> 2) as usize;
        let want = i.max(prev.map_or(0, |p| (p >> 2) as usize));
        if want >= self.heat.len() {
            self.heat.resize(want + 1, 0);
            self.succ.resize(want + 1, NO_SUCC);
        }
        if let Some(p) = prev {
            self.succ[(p >> 2) as usize] = now;
        }
        let h = &mut self.heat[i];
        if *h == PROMOTED {
            return;
        }
        *h += 1;
        if *h >= self.promote_after {
            // Reset on failure so a maturing profile gets another shot;
            // mark promoted on success (the probe will hit from now on).
            self.heat[i] = if self.form_super(mem, now) {
                PROMOTED
            } else {
                0
            };
        }
    }

    /// Trace-links blocks from `entry` along the recorded successor chain
    /// into a superblock. Returns whether a (multi-block) trace was formed.
    fn form_super(&mut self, mem: &[u8], entry: u32) -> bool {
        let mut ops = Vec::new();
        let mut pc_of: Vec<u32> = Vec::new();
        let mut spans: Vec<(u32, u32)> = Vec::new();
        let mut at = entry;
        while spans.len() < MAX_SUPER_SPANS && ops.len() < MAX_SUPER_OPS {
            let fresh;
            let b = match self.get(at) {
                Some(b) => &**b,
                None => {
                    fresh = decode_block(mem, at);
                    &fresh
                }
            };
            if b.ops.is_empty() {
                break;
            }
            for (i, &op) in b.ops.iter().enumerate() {
                ops.push(op);
                pc_of.push(b.start.wrapping_add(4 * i as u32));
            }
            spans.push((b.start, b.end));
            let ends_in_control = matches!(
                b.ops.last(),
                Some(UOp::Branch { .. } | UOp::Jal { .. } | UOp::Jalr { .. })
            );
            let next = self
                .succ
                .get((b.start >> 2) as usize)
                .copied()
                .unwrap_or(NO_SUCC);
            // A block that ends without a control transfer continues at its
            // own end by definition; a recorded successor elsewhere is
            // stale and must not be linked (linear fall-through in the
            // trace assumes contiguity at non-control seams).
            if next == NO_SUCC || (!ends_in_control && next != b.end) {
                break;
            }
            // Re-entry anywhere into the trace other than continuing the
            // tail is not representable linearly; the entry itself closes a
            // loop (handled by the dispatch loop's jump-to-head case).
            if pc_of.contains(&next) {
                break;
            }
            at = next;
        }
        if spans.len() < 2 {
            return false;
        }
        let idx = (entry >> 2) as usize;
        if idx >= self.supers.len() {
            self.supers.resize(idx + 1, None);
        }
        // The trace may cover bytes decoded fresh here (e.g. a constituent
        // block evicted by a direct-map collision): grow the union span so
        // the store fast path keeps watching every linked byte.
        for &(s, e) in &spans {
            if self.hi == 0 {
                self.lo = s;
                self.hi = e;
            } else {
                self.lo = self.lo.min(s);
                self.hi = self.hi.max(e);
            }
        }
        self.supers[idx] = Some(Arc::new(Superblock {
            entry,
            ops: ops.into_boxed_slice(),
            pc_of: pc_of.into_boxed_slice(),
            spans: spans.into_boxed_slice(),
        }));
        self.formed += 1;
        true
    }

    fn stats(&self) -> IcacheStats {
        IcacheStats {
            blocks: self.slots.iter().flatten().count(),
            decoded: self.decoded,
            invalidations: self.invalidations,
            superblocks: self.supers.iter().flatten().count(),
            superblocks_formed: self.formed,
        }
    }
}

/// Decodes the straight-line block starting at `pc`. Returns an empty
/// block when the very first instruction must go through [`Cpu::step`].
fn decode_block(mem: &[u8], pc: u32) -> Block {
    let mut ops = Vec::new();
    let mut at = pc;
    while ops.len() < MAX_BLOCK_OPS {
        let a = at as usize;
        let Some(end) = a.checked_add(4).filter(|&e| e <= mem.len()) else {
            break;
        };
        let word = u32::from_le_bytes(mem[a..end].try_into().unwrap());
        let Some(ins) = Instr::decode(word) else {
            break;
        };
        let (op, control) = match translate(ins, at) {
            Some(pair) => pair,
            None => break, // ebreak: always step()'s business
        };
        ops.push(op);
        at = at.wrapping_add(4);
        if control {
            break;
        }
    }
    Block {
        start: pc,
        end: pc.wrapping_add(4 * ops.len() as u32),
        ops: ops.into_boxed_slice(),
    }
}

/// Lowers one decoded instruction at address `at` to a micro-op; the bool
/// marks control transfers (which terminate the block). `None` is
/// `ebreak` — never pre-decoded, the driver handles it via `step`.
#[allow(clippy::too_many_lines)]
fn translate(ins: Instr, at: u32) -> Option<(UOp, bool)> {
    use Instr as I;
    let r = |x: u32| x as u8;
    let straight = |op: UOp| Some((op, false));
    let control = |op: UOp| Some((op, true));
    match ins {
        I::Lui { rd, imm } => straight(UOp::Lui {
            rd: r(rd),
            imm: imm as u32,
        }),
        I::Addi { rd, rs1, imm } => straight(UOp::Addi {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
        }),
        I::Andi { rd, rs1, imm } => straight(UOp::Andi {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
        }),
        I::Ori { rd, rs1, imm } => straight(UOp::Ori {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
        }),
        I::Xori { rd, rs1, imm } => straight(UOp::Xori {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
        }),
        I::Slli { rd, rs1, shamt } => straight(UOp::Slli {
            rd: r(rd),
            rs1: r(rs1),
            shamt: shamt & 31,
        }),
        I::Srli { rd, rs1, shamt } => straight(UOp::Srli {
            rd: r(rd),
            rs1: r(rs1),
            shamt: shamt & 31,
        }),
        I::Srai { rd, rs1, shamt } => straight(UOp::Srai {
            rd: r(rd),
            rs1: r(rs1),
            shamt: shamt & 31,
        }),
        I::Add { rd, rs1, rs2 } => straight(UOp::Add {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Sub { rd, rs1, rs2 } => straight(UOp::Sub {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Sll { rd, rs1, rs2 } => straight(UOp::Sll {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Srl { rd, rs1, rs2 } => straight(UOp::Srl {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Sra { rd, rs1, rs2 } => straight(UOp::Sra {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Slt { rd, rs1, rs2 } => straight(UOp::Slt {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Sltu { rd, rs1, rs2 } => straight(UOp::Sltu {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::And { rd, rs1, rs2 } => straight(UOp::And {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Or { rd, rs1, rs2 } => straight(UOp::Or {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Xor { rd, rs1, rs2 } => straight(UOp::Xor {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Mul { rd, rs1, rs2 } => straight(UOp::Mul {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Div { rd, rs1, rs2 } => straight(UOp::Div {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Divu { rd, rs1, rs2 } => straight(UOp::Divu {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Rem { rd, rs1, rs2 } => straight(UOp::Rem {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Remu { rd, rs1, rs2 } => straight(UOp::Remu {
            rd: r(rd),
            rs1: r(rs1),
            rs2: r(rs2),
        }),
        I::Lw { rd, rs1, imm } => straight(UOp::Load {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            kind: LoadKind::Word,
        }),
        I::Lh { rd, rs1, imm } => straight(UOp::Load {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            kind: LoadKind::Half,
        }),
        I::Lhu { rd, rs1, imm } => straight(UOp::Load {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            kind: LoadKind::HalfU,
        }),
        I::Lb { rd, rs1, imm } => straight(UOp::Load {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            kind: LoadKind::Byte,
        }),
        I::Lbu { rd, rs1, imm } => straight(UOp::Load {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            kind: LoadKind::ByteU,
        }),
        I::Sw { rs1, rs2, imm } => straight(UOp::Store {
            rs1: r(rs1),
            rs2: r(rs2),
            imm: imm as u32,
            kind: StoreKind::Word,
        }),
        I::Sh { rs1, rs2, imm } => straight(UOp::Store {
            rs1: r(rs1),
            rs2: r(rs2),
            imm: imm as u32,
            kind: StoreKind::Half,
        }),
        I::Sb { rs1, rs2, imm } => straight(UOp::Store {
            rs1: r(rs1),
            rs2: r(rs2),
            imm: imm as u32,
            kind: StoreKind::Byte,
        }),
        I::Beq { rs1, rs2, imm } => control(branch(Cond::Eq, rs1, rs2, imm, at)),
        I::Bne { rs1, rs2, imm } => control(branch(Cond::Ne, rs1, rs2, imm, at)),
        I::Blt { rs1, rs2, imm } => control(branch(Cond::Lt, rs1, rs2, imm, at)),
        I::Bge { rs1, rs2, imm } => control(branch(Cond::Ge, rs1, rs2, imm, at)),
        I::Bltu { rs1, rs2, imm } => control(branch(Cond::Ltu, rs1, rs2, imm, at)),
        I::Bgeu { rs1, rs2, imm } => control(branch(Cond::Geu, rs1, rs2, imm, at)),
        I::Jal { rd, imm } => control(UOp::Jal {
            rd: r(rd),
            link: at.wrapping_add(4),
            target: at.wrapping_add(imm as u32),
        }),
        I::Jalr { rd, rs1, imm } => control(UOp::Jalr {
            rd: r(rd),
            rs1: r(rs1),
            imm: imm as u32,
            link: at.wrapping_add(4),
        }),
        I::Ecall => straight(UOp::Ecall),
        I::Ebreak => None,
    }
}

fn branch(cond: Cond, rs1: u32, rs2: u32, imm: i32, at: u32) -> UOp {
    UOp::Branch {
        rs1: rs1 as u8,
        rs2: rs2 as u8,
        cond,
        target: at.wrapping_add(imm as u32),
    }
}

impl Cpu {
    /// Executes pre-decoded micro-ops until the next instruction needs the
    /// driver — a stream-port load/store, `ebreak`, or an instruction that
    /// would trap — or until `max_retire` instructions have retired or
    /// `self.cycles` reaches `cycle_limit`. Returns the number of
    /// instructions retired. The driver performs the visible instruction
    /// via [`Cpu::step_cached`] (or the reference [`Cpu::step`]).
    ///
    /// The fast path never performs an externally-visible access and never
    /// mutates state an about-to-trap instruction would leave untouched:
    /// it stops *before* such instructions, with `pc` pointing at them, so
    /// a follow-up `step` behaves exactly as in the decode-per-step loop.
    /// Interleaving `run_ahead` and `step` therefore produces bit-identical
    /// registers, memory, cycle counts, and instruction counts to stepping
    /// alone — the invariant the differential tests pin down.
    pub fn run_ahead(&mut self, max_retire: u64, cycle_limit: u64) -> u64 {
        self.run_ahead_inner(None, max_retire, cycle_limit)
    }

    /// The dispatch loop behind [`Cpu::run_ahead`]. `entry` optionally
    /// pre-supplies the block containing `self.pc` (which may point
    /// *mid-block*), letting [`Cpu::step_then_run`] continue in the block
    /// it just executed a visible op from without a fresh cache lookup.
    /// The hint must be current — callers check the invalidation epoch.
    fn run_ahead_inner(
        &mut self,
        mut entry: Option<Arc<Block>>,
        max_retire: u64,
        cycle_limit: u64,
    ) -> u64 {
        let mut retired = 0u64;
        // Counters accumulate in locals (flushed at every exit) so the hot
        // dispatch loop touches registers, not `self` fields.
        let mut cycles = self.cycles;
        // Every retirement bumps the instruction count by exactly one, so
        // the count is derived at flush time instead of per op.
        let instructions0 = self.instructions;
        // Previous block entry, for the superblock promotion profile.
        let mut prev_entry: Option<u32> = None;
        macro_rules! flush {
            () => {{
                self.cycles = cycles;
                self.instructions = instructions0 + retired;
            }};
        }
        'blocks: loop {
            if retired >= max_retire || cycles >= cycle_limit {
                flush!();
                return retired;
            }
            // Superblock tier: a hot trace starting exactly at `pc` runs in
            // one linear dispatch, skipping per-block entry overhead. The
            // mid-block `entry` hint bypasses the tier (traces are keyed by
            // their head).
            let profiling = self.icache.promote_after != 0 && entry.is_none();
            if profiling {
                if let Some(sb) = self.icache.super_at(self.pc) {
                    let sb = Arc::clone(sb);
                    if self.dispatch_super(&sb, &mut cycles, &mut retired, max_retire, cycle_limit)
                    {
                        flush!();
                        return retired;
                    }
                    prev_entry = Some(sb.entry);
                    continue 'blocks;
                }
            }
            let block = match entry.take() {
                Some(b) => b,
                None => match self.icache.get(self.pc) {
                    Some(b) => Arc::clone(b),
                    None => {
                        let b = decode_block(&self.mem, self.pc);
                        if b.ops.is_empty() {
                            flush!();
                            return retired;
                        }
                        let b = Arc::new(b);
                        self.icache.insert(Arc::clone(&b));
                        b
                    }
                },
            };
            if profiling {
                self.icache
                    .profile(prev_entry.replace(block.start), block.start, &self.mem);
            }
            let epoch = self.icache.epoch;
            let mut pc = self.pc;
            // If one pass over the whole block fits inside both budgets
            // even at the worst per-op cost, the per-op budget checks are
            // provably true and can be skipped until the next control
            // transfer re-establishes the bound.
            let len = block.ops.len() as u64;
            let mut unchecked = max_retire - retired >= len
                && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit;
            // Retire one sequential micro-op: advance past it and charge.
            macro_rules! retire {
                ($cost:expr) => {{
                    pc = pc.wrapping_add(4);
                    cycles += $cost;
                    retired += 1;
                }};
            }
            // One full pass over the block fits the budgets (used when a
            // control transfer re-enters the block, below).
            macro_rules! budget_clear {
                () => {
                    max_retire - retired >= len
                        && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit
                };
            }
            let ops = &block.ops;
            // Normal entries start at the block head; an `entry` hint may
            // resume mid-block (pc is inside `[start, end)` by contract).
            let mut idx = ((pc - block.start) >> 2) as usize;
            'ops: while idx < ops.len() {
                if !unchecked && (retired >= max_retire || cycles >= cycle_limit) {
                    self.pc = pc;
                    flush!();
                    return retired;
                }
                let op = ops[idx];
                idx += 1;
                match op {
                    UOp::Lui { rd, imm } => {
                        self.wr(rd, imm);
                        retire!(cycles::ALU);
                    }
                    UOp::Addi { rd, rs1, imm } => {
                        self.wr(rd, self.rr(rs1).wrapping_add(imm));
                        retire!(cycles::ALU);
                    }
                    UOp::Andi { rd, rs1, imm } => {
                        self.wr(rd, self.rr(rs1) & imm);
                        retire!(cycles::ALU);
                    }
                    UOp::Ori { rd, rs1, imm } => {
                        self.wr(rd, self.rr(rs1) | imm);
                        retire!(cycles::ALU);
                    }
                    UOp::Xori { rd, rs1, imm } => {
                        self.wr(rd, self.rr(rs1) ^ imm);
                        retire!(cycles::ALU);
                    }
                    UOp::Slli { rd, rs1, shamt } => {
                        self.wr(rd, self.rr(rs1) << shamt);
                        retire!(cycles::ALU);
                    }
                    UOp::Srli { rd, rs1, shamt } => {
                        self.wr(rd, self.rr(rs1) >> shamt);
                        retire!(cycles::ALU);
                    }
                    UOp::Srai { rd, rs1, shamt } => {
                        self.wr(rd, ((self.rr(rs1) as i32) >> shamt) as u32);
                        retire!(cycles::ALU);
                    }
                    UOp::Add { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1).wrapping_add(self.rr(rs2)));
                        retire!(cycles::ALU);
                    }
                    UOp::Sub { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1).wrapping_sub(self.rr(rs2)));
                        retire!(cycles::ALU);
                    }
                    UOp::Sll { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1) << (self.rr(rs2) & 31));
                        retire!(cycles::ALU);
                    }
                    UOp::Srl { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1) >> (self.rr(rs2) & 31));
                        retire!(cycles::ALU);
                    }
                    UOp::Sra { rd, rs1, rs2 } => {
                        self.wr(rd, ((self.rr(rs1) as i32) >> (self.rr(rs2) & 31)) as u32);
                        retire!(cycles::ALU);
                    }
                    UOp::Slt { rd, rs1, rs2 } => {
                        self.wr(rd, ((self.rr(rs1) as i32) < (self.rr(rs2) as i32)) as u32);
                        retire!(cycles::ALU);
                    }
                    UOp::Sltu { rd, rs1, rs2 } => {
                        self.wr(rd, (self.rr(rs1) < self.rr(rs2)) as u32);
                        retire!(cycles::ALU);
                    }
                    UOp::And { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1) & self.rr(rs2));
                        retire!(cycles::ALU);
                    }
                    UOp::Or { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1) | self.rr(rs2));
                        retire!(cycles::ALU);
                    }
                    UOp::Xor { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1) ^ self.rr(rs2));
                        retire!(cycles::ALU);
                    }
                    UOp::Mul { rd, rs1, rs2 } => {
                        self.wr(rd, self.rr(rs1).wrapping_mul(self.rr(rs2)));
                        retire!(cycles::MUL);
                    }
                    UOp::Div { rd, rs1, rs2 } => {
                        let a = self.rr(rs1) as i32;
                        let b = self.rr(rs2) as i32;
                        let q = if b == 0 { -1 } else { a.wrapping_div(b) };
                        self.wr(rd, q as u32);
                        retire!(cycles::DIV);
                    }
                    UOp::Divu { rd, rs1, rs2 } => {
                        let q = self.rr(rs1).checked_div(self.rr(rs2)).unwrap_or(u32::MAX);
                        self.wr(rd, q);
                        retire!(cycles::DIV);
                    }
                    UOp::Rem { rd, rs1, rs2 } => {
                        let a = self.rr(rs1) as i32;
                        let b = self.rr(rs2) as i32;
                        let v = if b == 0 { a } else { a.wrapping_rem(b) };
                        self.wr(rd, v as u32);
                        retire!(cycles::DIV);
                    }
                    UOp::Remu { rd, rs1, rs2 } => {
                        let b = self.rr(rs2);
                        let v = if b == 0 {
                            self.rr(rs1)
                        } else {
                            self.rr(rs1) % b
                        };
                        self.wr(rd, v);
                        retire!(cycles::DIV);
                    }
                    UOp::Load { rd, rs1, imm, kind } => {
                        let addr = self.rr(rs1).wrapping_add(imm);
                        if (firmware::STREAM_READ_BASE..firmware::STREAM_WRITE_BASE).contains(&addr)
                            || !self.mem_ok(addr, kind.len())
                        {
                            // Stream I/O or trap: step()'s business.
                            self.pc = pc;
                            flush!();
                            return retired;
                        }
                        let raw = self.load_n(addr, kind.len());
                        let v = match kind {
                            LoadKind::Word | LoadKind::HalfU | LoadKind::ByteU => raw,
                            LoadKind::Half => (raw as u16 as i16 as i32) as u32,
                            LoadKind::Byte => (raw as u8 as i8 as i32) as u32,
                        };
                        self.wr(rd, v);
                        retire!(cycles::LOAD);
                    }
                    UOp::Store {
                        rs1,
                        rs2,
                        imm,
                        kind,
                    } => {
                        let addr = self.rr(rs1).wrapping_add(imm);
                        if addr >= firmware::STREAM_WRITE_BASE || !self.mem_ok(addr, kind.len()) {
                            self.pc = pc;
                            flush!();
                            return retired;
                        }
                        self.store_n(addr, kind.len(), self.rr(rs2));
                        retire!(cycles::STORE);
                        if self.icache.epoch != epoch {
                            // The store hit decoded bytes (self-modifying
                            // code): this block may be stale past here.
                            self.pc = pc;
                            continue 'blocks;
                        }
                    }
                    UOp::Branch {
                        rs1,
                        rs2,
                        cond,
                        target,
                    } => {
                        let a = self.rr(rs1);
                        let b = self.rr(rs2);
                        let taken = match cond {
                            Cond::Eq => a == b,
                            Cond::Ne => a != b,
                            Cond::Lt => (a as i32) < (b as i32),
                            Cond::Ge => (a as i32) >= (b as i32),
                            Cond::Ltu => a < b,
                            Cond::Geu => a >= b,
                        };
                        pc = if taken { target } else { pc.wrapping_add(4) };
                        cycles += cycles::BRANCH;
                        retired += 1;
                        // Tight loops usually land back inside this block:
                        // resolve the target to a local op index and keep
                        // dispatching rather than paying the block-entry
                        // overhead once per loop iteration.
                        if pc >= block.start && pc < block.end {
                            idx = ((pc - block.start) >> 2) as usize;
                            unchecked = budget_clear!();
                            continue 'ops;
                        }
                        self.pc = pc;
                        continue 'blocks;
                    }
                    UOp::Jal { rd, link, target } => {
                        self.wr(rd, link);
                        pc = target;
                        cycles += cycles::BRANCH;
                        retired += 1;
                        if pc >= block.start && pc < block.end {
                            idx = ((pc - block.start) >> 2) as usize;
                            unchecked = budget_clear!();
                            continue 'ops;
                        }
                        self.pc = pc;
                        continue 'blocks;
                    }
                    UOp::Jalr { rd, rs1, imm, link } => {
                        // Link before reading rs1, mirroring step()'s write
                        // order (observable when rd == rs1).
                        self.wr(rd, link);
                        pc = self.rr(rs1).wrapping_add(imm) & !1;
                        cycles += cycles::BRANCH;
                        retired += 1;
                        if pc >= block.start && pc < block.end {
                            idx = ((pc - block.start) >> 2) as usize;
                            unchecked = budget_clear!();
                            continue 'ops;
                        }
                        self.pc = pc;
                        continue 'blocks;
                    }
                    UOp::Ecall => {
                        if self.rr(crate::isa::reg::A7 as u8) as usize >= self.intrinsics.len() {
                            // Would trap; leave it to step().
                            self.pc = pc;
                            flush!();
                            return retired;
                        }
                        self.ecall().expect("intrinsic index pre-checked");
                        retire!(cycles::INTRINSIC);
                        if self.icache.epoch != epoch {
                            // An intrinsic slot write landed in decoded
                            // bytes; treat like a self-modifying store.
                            self.pc = pc;
                            continue 'blocks;
                        }
                    }
                }
            }
            // Fell off the end of a straight-line block (length cap, or
            // the next word is step()'s business — re-looked up fresh).
            self.pc = pc;
            if self.icache.get(pc).is_none() && decodes_fast(&self.mem, pc) {
                continue;
            }
            if self.icache.get(pc).is_some() {
                continue;
            }
            flush!();
            return retired;
        }
    }

    /// Runs a superblock trace from its head, mirroring the block dispatch
    /// loop op for op (identical costs, write order, and stop-before
    /// semantics for visible or trapping ops — the bit-identity invariant
    /// covers this tier too). Cycle/instruction counts accumulate into the
    /// caller's locals. Returns `true` when the driver must take over
    /// (budget exhausted or a visible op is next, `self.pc` pointing at
    /// it): the caller flushes and returns. Returns `false` on a side exit
    /// — the trace's recorded direction diverged, the trace ran off its
    /// capped end, or a store invalidated linked bytes — with `self.pc` at
    /// the next instruction, ready for a fresh block/superblock probe.
    #[allow(clippy::too_many_lines)]
    fn dispatch_super(
        &mut self,
        sb: &Superblock,
        cycles: &mut u64,
        retired: &mut u64,
        max_retire: u64,
        cycle_limit: u64,
    ) -> bool {
        let epoch = self.icache.epoch;
        let ops = &sb.ops;
        let len = ops.len() as u64;
        // Same budget hoisting as the block loop: if a whole pass over the
        // trace fits both budgets at worst-case per-op cost, skip the
        // per-op checks until a loop-back re-establishes the bound.
        let mut unchecked = max_retire - *retired >= len
            && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit;
        // Retire one sequential micro-op.
        macro_rules! retire {
            ($idx:ident, $cost:expr) => {{
                *cycles += $cost;
                *retired += 1;
                $idx += 1;
            }};
        }
        let mut idx = 0usize;
        loop {
            if idx >= ops.len() {
                // Ran off the capped end of the trace mid-straight-line:
                // continue contiguously after the last op.
                self.pc = sb.pc_of[ops.len() - 1].wrapping_add(4);
                return false;
            }
            if !unchecked && (*retired >= max_retire || *cycles >= cycle_limit) {
                self.pc = sb.pc_of[idx];
                return true;
            }
            let at = sb.pc_of[idx];
            match ops[idx] {
                UOp::Lui { rd, imm } => {
                    self.wr(rd, imm);
                    retire!(idx, cycles::ALU);
                }
                UOp::Addi { rd, rs1, imm } => {
                    self.wr(rd, self.rr(rs1).wrapping_add(imm));
                    retire!(idx, cycles::ALU);
                }
                UOp::Andi { rd, rs1, imm } => {
                    self.wr(rd, self.rr(rs1) & imm);
                    retire!(idx, cycles::ALU);
                }
                UOp::Ori { rd, rs1, imm } => {
                    self.wr(rd, self.rr(rs1) | imm);
                    retire!(idx, cycles::ALU);
                }
                UOp::Xori { rd, rs1, imm } => {
                    self.wr(rd, self.rr(rs1) ^ imm);
                    retire!(idx, cycles::ALU);
                }
                UOp::Slli { rd, rs1, shamt } => {
                    self.wr(rd, self.rr(rs1) << shamt);
                    retire!(idx, cycles::ALU);
                }
                UOp::Srli { rd, rs1, shamt } => {
                    self.wr(rd, self.rr(rs1) >> shamt);
                    retire!(idx, cycles::ALU);
                }
                UOp::Srai { rd, rs1, shamt } => {
                    self.wr(rd, ((self.rr(rs1) as i32) >> shamt) as u32);
                    retire!(idx, cycles::ALU);
                }
                UOp::Add { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1).wrapping_add(self.rr(rs2)));
                    retire!(idx, cycles::ALU);
                }
                UOp::Sub { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1).wrapping_sub(self.rr(rs2)));
                    retire!(idx, cycles::ALU);
                }
                UOp::Sll { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1) << (self.rr(rs2) & 31));
                    retire!(idx, cycles::ALU);
                }
                UOp::Srl { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1) >> (self.rr(rs2) & 31));
                    retire!(idx, cycles::ALU);
                }
                UOp::Sra { rd, rs1, rs2 } => {
                    self.wr(rd, ((self.rr(rs1) as i32) >> (self.rr(rs2) & 31)) as u32);
                    retire!(idx, cycles::ALU);
                }
                UOp::Slt { rd, rs1, rs2 } => {
                    self.wr(rd, ((self.rr(rs1) as i32) < (self.rr(rs2) as i32)) as u32);
                    retire!(idx, cycles::ALU);
                }
                UOp::Sltu { rd, rs1, rs2 } => {
                    self.wr(rd, (self.rr(rs1) < self.rr(rs2)) as u32);
                    retire!(idx, cycles::ALU);
                }
                UOp::And { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1) & self.rr(rs2));
                    retire!(idx, cycles::ALU);
                }
                UOp::Or { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1) | self.rr(rs2));
                    retire!(idx, cycles::ALU);
                }
                UOp::Xor { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1) ^ self.rr(rs2));
                    retire!(idx, cycles::ALU);
                }
                UOp::Mul { rd, rs1, rs2 } => {
                    self.wr(rd, self.rr(rs1).wrapping_mul(self.rr(rs2)));
                    retire!(idx, cycles::MUL);
                }
                UOp::Div { rd, rs1, rs2 } => {
                    let a = self.rr(rs1) as i32;
                    let b = self.rr(rs2) as i32;
                    let q = if b == 0 { -1 } else { a.wrapping_div(b) };
                    self.wr(rd, q as u32);
                    retire!(idx, cycles::DIV);
                }
                UOp::Divu { rd, rs1, rs2 } => {
                    let q = self.rr(rs1).checked_div(self.rr(rs2)).unwrap_or(u32::MAX);
                    self.wr(rd, q);
                    retire!(idx, cycles::DIV);
                }
                UOp::Rem { rd, rs1, rs2 } => {
                    let a = self.rr(rs1) as i32;
                    let b = self.rr(rs2) as i32;
                    let v = if b == 0 { a } else { a.wrapping_rem(b) };
                    self.wr(rd, v as u32);
                    retire!(idx, cycles::DIV);
                }
                UOp::Remu { rd, rs1, rs2 } => {
                    let b = self.rr(rs2);
                    let v = if b == 0 {
                        self.rr(rs1)
                    } else {
                        self.rr(rs1) % b
                    };
                    self.wr(rd, v);
                    retire!(idx, cycles::DIV);
                }
                UOp::Load { rd, rs1, imm, kind } => {
                    let addr = self.rr(rs1).wrapping_add(imm);
                    if (firmware::STREAM_READ_BASE..firmware::STREAM_WRITE_BASE).contains(&addr)
                        || !self.mem_ok(addr, kind.len())
                    {
                        // Stream I/O or trap: stop *before* it, step()'s
                        // business — exactly as the block loop does.
                        self.pc = at;
                        return true;
                    }
                    let raw = self.load_n(addr, kind.len());
                    let v = match kind {
                        LoadKind::Word | LoadKind::HalfU | LoadKind::ByteU => raw,
                        LoadKind::Half => (raw as u16 as i16 as i32) as u32,
                        LoadKind::Byte => (raw as u8 as i8 as i32) as u32,
                    };
                    self.wr(rd, v);
                    retire!(idx, cycles::LOAD);
                }
                UOp::Store {
                    rs1,
                    rs2,
                    imm,
                    kind,
                } => {
                    let addr = self.rr(rs1).wrapping_add(imm);
                    if addr >= firmware::STREAM_WRITE_BASE || !self.mem_ok(addr, kind.len()) {
                        self.pc = at;
                        return true;
                    }
                    self.store_n(addr, kind.len(), self.rr(rs2));
                    retire!(idx, cycles::STORE);
                    if self.icache.epoch != epoch {
                        // The store hit linked bytes: this trace was torn
                        // down under us. Fall back to a fresh probe.
                        self.pc = at.wrapping_add(4);
                        return false;
                    }
                }
                UOp::Branch {
                    rs1,
                    rs2,
                    cond,
                    target,
                } => {
                    let a = self.rr(rs1);
                    let b = self.rr(rs2);
                    let taken = match cond {
                        Cond::Eq => a == b,
                        Cond::Ne => a != b,
                        Cond::Lt => (a as i32) < (b as i32),
                        Cond::Ge => (a as i32) >= (b as i32),
                        Cond::Ltu => a < b,
                        Cond::Geu => a >= b,
                    };
                    let next_pc = if taken { target } else { at.wrapping_add(4) };
                    *cycles += cycles::BRANCH;
                    *retired += 1;
                    idx += 1;
                    if idx < ops.len() && sb.pc_of[idx] == next_pc {
                        // Control followed the recorded trace.
                    } else if next_pc == sb.entry {
                        // Hot-loop specialization: the trace closes on its
                        // own head.
                        idx = 0;
                        unchecked = max_retire - *retired >= len
                            && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit;
                    } else {
                        self.pc = next_pc;
                        return false;
                    }
                }
                UOp::Jal { rd, link, target } => {
                    self.wr(rd, link);
                    *cycles += cycles::BRANCH;
                    *retired += 1;
                    idx += 1;
                    if idx < ops.len() && sb.pc_of[idx] == target {
                    } else if target == sb.entry {
                        idx = 0;
                        unchecked = max_retire - *retired >= len
                            && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit;
                    } else {
                        self.pc = target;
                        return false;
                    }
                }
                UOp::Jalr { rd, rs1, imm, link } => {
                    // Link before reading rs1, mirroring step()'s write
                    // order (observable when rd == rs1).
                    self.wr(rd, link);
                    let next_pc = self.rr(rs1).wrapping_add(imm) & !1;
                    *cycles += cycles::BRANCH;
                    *retired += 1;
                    idx += 1;
                    if idx < ops.len() && sb.pc_of[idx] == next_pc {
                    } else if next_pc == sb.entry {
                        idx = 0;
                        unchecked = max_retire - *retired >= len
                            && cycles.saturating_add(len * cycles::INTRINSIC) < cycle_limit;
                    } else {
                        self.pc = next_pc;
                        return false;
                    }
                }
                UOp::Ecall => {
                    if self.rr(crate::isa::reg::A7 as u8) as usize >= self.intrinsics.len() {
                        // Would trap; leave it to step().
                        self.pc = at;
                        return true;
                    }
                    self.ecall().expect("intrinsic index pre-checked");
                    retire!(idx, cycles::INTRINSIC);
                    if self.icache.epoch != epoch {
                        self.pc = at.wrapping_add(4);
                        return false;
                    }
                }
            }
        }
    }

    /// Executes exactly one instruction through the pre-decoded cache —
    /// including the externally-visible stream-port accesses [`Cpu::run_ahead`]
    /// stops at — with semantics mirroring [`Cpu::step`] case for case:
    /// identical stall, trap, cycle-cost, and register write-order
    /// behaviour. Falls back to `step` for anything without a micro-op
    /// form (`ebreak`, undecodable words, fetches past memory), so fast
    /// drivers can use it as a drop-in replacement for `step`.
    pub fn step_cached(&mut self, io: &mut dyn crate::cpu::StreamIo) -> crate::cpu::StepResult {
        let op = match self.icache.get(self.pc) {
            Some(b) => b.ops[0],
            None => {
                let b = decode_block(&self.mem, self.pc);
                let Some(&op) = b.ops.first() else {
                    return self.step(io);
                };
                self.icache.insert(Arc::new(b));
                op
            }
        };
        self.exec_uop(op, io)
    }

    /// [`Cpu::step_cached`] fused with [`Cpu::run_ahead`]: executes the
    /// visible instruction at `self.pc`, and — when it succeeds — keeps
    /// dispatching private work from the *same* pre-decoded block, paying
    /// one cache lookup for the whole visible-step-plus-run-ahead unit
    /// instead of two. Returns the step result and the instructions
    /// retired by the run-ahead (0 unless the step returned `Ok`).
    /// Equivalent to `(self.step_cached(io), self.run_ahead(..))` —
    /// pinned by the differential tests.
    pub fn step_then_run(
        &mut self,
        io: &mut dyn crate::cpu::StreamIo,
        max_retire: u64,
        cycle_limit: u64,
    ) -> (crate::cpu::StepResult, u64) {
        use crate::cpu::StepResult;
        let block = match self.icache.get(self.pc) {
            Some(b) => Arc::clone(b),
            None => {
                let b = decode_block(&self.mem, self.pc);
                if b.ops.is_empty() {
                    let result = self.step(io);
                    let ran = if result == StepResult::Ok {
                        self.run_ahead(max_retire, cycle_limit)
                    } else {
                        0
                    };
                    return (result, ran);
                }
                let b = Arc::new(b);
                self.icache.insert(Arc::clone(&b));
                b
            }
        };
        let epoch = self.icache.epoch;
        let result = self.exec_uop(block.ops[0], io);
        if result != StepResult::Ok {
            return (result, 0);
        }
        // Continue in the same block when control stayed inside it and no
        // store invalidated decoded bytes; otherwise fall back to a fresh
        // lookup (which re-validates against the cache).
        let entry = (self.icache.epoch == epoch && self.pc >= block.start && self.pc < block.end)
            .then_some(block);
        let ran = self.run_ahead_inner(entry, max_retire, cycle_limit);
        (result, ran)
    }

    /// Executes one visible micro-op (the `step_cached` body after block
    /// lookup), mirroring [`Cpu::step`] case for case.
    fn exec_uop(&mut self, op: UOp, io: &mut dyn crate::cpu::StreamIo) -> crate::cpu::StepResult {
        use crate::cpu::StepResult;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut cost = cycles::ALU;
        match op {
            UOp::Lui { rd, imm } => self.wr(rd, imm),
            UOp::Addi { rd, rs1, imm } => self.wr(rd, self.rr(rs1).wrapping_add(imm)),
            UOp::Andi { rd, rs1, imm } => self.wr(rd, self.rr(rs1) & imm),
            UOp::Ori { rd, rs1, imm } => self.wr(rd, self.rr(rs1) | imm),
            UOp::Xori { rd, rs1, imm } => self.wr(rd, self.rr(rs1) ^ imm),
            UOp::Slli { rd, rs1, shamt } => self.wr(rd, self.rr(rs1) << shamt),
            UOp::Srli { rd, rs1, shamt } => self.wr(rd, self.rr(rs1) >> shamt),
            UOp::Srai { rd, rs1, shamt } => self.wr(rd, ((self.rr(rs1) as i32) >> shamt) as u32),
            UOp::Add { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1).wrapping_add(self.rr(rs2))),
            UOp::Sub { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1).wrapping_sub(self.rr(rs2))),
            UOp::Sll { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1) << (self.rr(rs2) & 31)),
            UOp::Srl { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1) >> (self.rr(rs2) & 31)),
            UOp::Sra { rd, rs1, rs2 } => {
                self.wr(rd, ((self.rr(rs1) as i32) >> (self.rr(rs2) & 31)) as u32)
            }
            UOp::Slt { rd, rs1, rs2 } => {
                self.wr(rd, ((self.rr(rs1) as i32) < (self.rr(rs2) as i32)) as u32)
            }
            UOp::Sltu { rd, rs1, rs2 } => self.wr(rd, (self.rr(rs1) < self.rr(rs2)) as u32),
            UOp::And { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1) & self.rr(rs2)),
            UOp::Or { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1) | self.rr(rs2)),
            UOp::Xor { rd, rs1, rs2 } => self.wr(rd, self.rr(rs1) ^ self.rr(rs2)),
            UOp::Mul { rd, rs1, rs2 } => {
                cost = cycles::MUL;
                self.wr(rd, self.rr(rs1).wrapping_mul(self.rr(rs2)));
            }
            UOp::Div { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let a = self.rr(rs1) as i32;
                let b = self.rr(rs2) as i32;
                let q = if b == 0 { -1 } else { a.wrapping_div(b) };
                self.wr(rd, q as u32);
            }
            UOp::Divu { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let q = self.rr(rs1).checked_div(self.rr(rs2)).unwrap_or(u32::MAX);
                self.wr(rd, q);
            }
            UOp::Rem { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let a = self.rr(rs1) as i32;
                let b = self.rr(rs2) as i32;
                let v = if b == 0 { a } else { a.wrapping_rem(b) };
                self.wr(rd, v as u32);
            }
            UOp::Remu { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let b = self.rr(rs2);
                let v = if b == 0 {
                    self.rr(rs1)
                } else {
                    self.rr(rs1) % b
                };
                self.wr(rd, v);
            }
            UOp::Load { rd, rs1, imm, kind } => {
                cost = cycles::LOAD;
                let addr = self.rr(rs1).wrapping_add(imm);
                if (firmware::STREAM_READ_BASE..firmware::STREAM_WRITE_BASE).contains(&addr) {
                    let port = (addr - firmware::STREAM_READ_BASE) / firmware::PORT_STRIDE;
                    match io.read(port) {
                        Some(w) => self.wr(rd, w),
                        None => {
                            self.cycles += cycles::STALL;
                            return StepResult::Stall;
                        }
                    }
                } else {
                    if !self.mem_ok(addr, kind.len()) {
                        return StepResult::Trap { pc: self.pc };
                    }
                    let raw = self.load_n(addr, kind.len());
                    let v = match kind {
                        LoadKind::Word | LoadKind::HalfU | LoadKind::ByteU => raw,
                        LoadKind::Half => (raw as u16 as i16 as i32) as u32,
                        LoadKind::Byte => (raw as u8 as i8 as i32) as u32,
                    };
                    self.wr(rd, v);
                }
            }
            UOp::Store {
                rs1,
                rs2,
                imm,
                kind,
            } => {
                cost = cycles::STORE;
                let addr = self.rr(rs1).wrapping_add(imm);
                if addr >= firmware::STREAM_WRITE_BASE {
                    let port = (addr - firmware::STREAM_WRITE_BASE) / firmware::PORT_STRIDE;
                    if !io.write(port, self.rr(rs2)) {
                        self.cycles += cycles::STALL;
                        return StepResult::Stall;
                    }
                } else {
                    if !self.mem_ok(addr, kind.len()) {
                        return StepResult::Trap { pc: self.pc };
                    }
                    self.store_n(addr, kind.len(), self.rr(rs2));
                }
            }
            UOp::Branch {
                rs1,
                rs2,
                cond,
                target,
            } => {
                cost = cycles::BRANCH;
                let a = self.rr(rs1);
                let b = self.rr(rs2);
                let taken = match cond {
                    Cond::Eq => a == b,
                    Cond::Ne => a != b,
                    Cond::Lt => (a as i32) < (b as i32),
                    Cond::Ge => (a as i32) >= (b as i32),
                    Cond::Ltu => a < b,
                    Cond::Geu => a >= b,
                };
                if taken {
                    next_pc = target;
                }
            }
            UOp::Jal { rd, link, target } => {
                cost = cycles::BRANCH;
                self.wr(rd, link);
                next_pc = target;
            }
            UOp::Jalr { rd, rs1, imm, link } => {
                cost = cycles::BRANCH;
                self.wr(rd, link);
                next_pc = self.rr(rs1).wrapping_add(imm) & !1;
            }
            UOp::Ecall => {
                cost = cycles::INTRINSIC;
                if self.ecall().is_err() {
                    return StepResult::Trap { pc: self.pc };
                }
            }
        }
        self.pc = next_pc;
        self.cycles += cost;
        self.instructions += 1;
        StepResult::Ok
    }

    /// Block-cache counters (diagnostics / tests).
    pub fn icache_stats(&self) -> IcacheStats {
        self.icache.stats()
    }

    /// Sets the superblock tier's hot-trace promotion threshold: a block
    /// entered this many times gets trace-linked across its recorded
    /// control transfers into one linear dispatch. `0` disables the tier
    /// (the default — plain block-cached execution pays no profiling
    /// cost). Purely a performance knob: superblock execution is
    /// bit-identical to the block-cached and decode-per-step engines.
    pub fn set_superblock_threshold(&mut self, threshold: u32) {
        self.icache.promote_after = threshold;
    }

    /// Current superblock promotion threshold (`0` = tier disabled).
    pub fn superblock_threshold(&self) -> u32 {
        self.icache.promote_after
    }
}

/// Whether the word at `pc` starts another pre-decodable run (cheap probe
/// so falling off a capped block keeps running instead of bouncing to the
/// driver).
fn decodes_fast(mem: &[u8], pc: u32) -> bool {
    let a = pc as usize;
    match a.checked_add(4) {
        Some(end) if end <= mem.len() => {
            let word = u32::from_le_bytes(mem[a..end].try_into().unwrap());
            !matches!(Instr::decode(word), None | Some(Instr::Ebreak))
        }
        _ => false,
    }
}
