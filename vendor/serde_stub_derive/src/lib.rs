//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real `serde` cannot
//! be fetched. Nothing in this workspace actually serializes — the derives
//! are forward-looking annotations — so the stub accepts the attribute
//! grammar and expands to nothing. Swapping the real crates back in is a
//! two-line `Cargo.toml` change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with any `#[serde(...)]` attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
