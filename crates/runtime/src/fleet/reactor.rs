//! A hand-rolled single-threaded reactor for the fleet's async admission
//! front-end.
//!
//! The workspace carries no async runtime (vendored-deps discipline), and
//! does not need one: admission completion is driven by the fleet's own
//! scheduling passes, so the executor is a ready-queue of tasks woken by
//! [`std::task::Wake`] — poll what's ready, park what isn't, repeat. An
//! [`AdmissionTicket`] is the `Future` half of a submission: the fleet
//! resolves it (and wakes its task) when the app lands on a device or is
//! rejected.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::fleet::{Admission, FleetAppId, FleetError};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// Wakes a task by pushing its slot back onto the shared ready queue.
struct TaskWaker {
    slot: usize,
    ready: Arc<Mutex<VecDeque<usize>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.lock().unwrap().push_back(self.slot);
    }
}

/// A minimal single-threaded executor: spawn futures, then interleave
/// [`Executor::run_until_stalled`] with whatever external progress (fleet
/// scheduling passes) resolves their wakers.
#[derive(Default)]
pub struct Executor {
    tasks: Vec<Option<BoxFuture>>,
    ready: Arc<Mutex<VecDeque<usize>>>,
}

impl Executor {
    /// An executor with no tasks.
    pub fn new() -> Executor {
        Executor::default()
    }

    /// Spawns a future; it is immediately ready for its first poll.
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
        let slot = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.ready.lock().unwrap().push_back(slot);
    }

    /// Polls ready tasks until none are ready, returning how many tasks
    /// ran to completion during this pass. Tasks that return `Pending`
    /// stay parked until their waker fires.
    pub fn run_until_stalled(&mut self) -> usize {
        let mut completed = 0;
        loop {
            let slot = match self.ready.lock().unwrap().pop_front() {
                Some(slot) => slot,
                None => return completed,
            };
            // A task can be woken more than once before it is polled, or
            // woken after completing; both leave a stale queue entry.
            let Some(mut task) = self.tasks[slot].take() else {
                continue;
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                slot,
                ready: Arc::clone(&self.ready),
            }));
            match task.as_mut().poll(&mut Context::from_waker(&waker)) {
                Poll::Ready(()) => completed += 1,
                Poll::Pending => self.tasks[slot] = Some(task),
            }
        }
    }

    /// Tasks spawned but not yet run to completion.
    pub fn pending(&self) -> usize {
        self.tasks.iter().filter(|t| t.is_some()).count()
    }
}

/// Shared slot the fleet writes an admission result into.
#[derive(Default)]
pub(crate) struct TicketState {
    result: Option<Result<Admission, FleetError>>,
    waker: Option<Waker>,
}

/// Resolves a ticket and wakes the task awaiting it.
pub(crate) fn resolve(state: &Arc<Mutex<TicketState>>, result: Result<Admission, FleetError>) {
    let mut s = state.lock().unwrap();
    s.result = Some(result);
    if let Some(waker) = s.waker.take() {
        waker.wake();
    }
}

/// The awaitable half of an async submission: resolves to the admission
/// outcome (device, downtime) or the typed refusal. The result is moved
/// out on completion, so the ticket is a one-shot future.
pub struct AdmissionTicket {
    pub(crate) id: FleetAppId,
    pub(crate) state: Arc<Mutex<TicketState>>,
}

impl AdmissionTicket {
    /// The fleet-wide id assigned at submission (valid before resolution).
    pub fn app(&self) -> FleetAppId {
        self.id
    }
}

impl Future for AdmissionTicket {
    type Output = Result<Admission, FleetError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.lock().unwrap();
        match s.result.take() {
            Some(result) => Poll::Ready(result),
            None => {
                s.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_parks_and_wakes_tickets() {
        let state = Arc::new(Mutex::new(TicketState::default()));
        let ticket = AdmissionTicket {
            id: FleetAppId(7),
            state: Arc::clone(&state),
        };
        assert_eq!(ticket.app(), FleetAppId(7));

        let seen = Arc::new(Mutex::new(None));
        let seen2 = Arc::clone(&seen);
        let mut pool = Executor::new();
        pool.spawn(async move {
            let got = ticket.await;
            *seen2.lock().unwrap() = Some(got.ok().map(|a| a.device));
        });

        // First pass: the ticket is unresolved, the task parks.
        assert_eq!(pool.run_until_stalled(), 0);
        assert_eq!(pool.pending(), 1);
        assert!(seen.lock().unwrap().is_none());

        // Resolving wakes the task; the next pass completes it.
        resolve(
            &state,
            Ok(Admission {
                app: FleetAppId(7),
                device: crate::fleet::DeviceId(2),
                downtime_seconds: 0.0,
                pages: Vec::new(),
            }),
        );
        assert_eq!(pool.run_until_stalled(), 1);
        assert_eq!(pool.pending(), 0);
        assert_eq!(*seen.lock().unwrap(), Some(Some(crate::fleet::DeviceId(2))));
    }
}
