//! Snapshot codec for [`RuntimeStats`]: a self-contained binary format
//! plus hand-formatted JSON, in the same style as the artifact store's
//! on-disk encoding (`crates/core/src/store.rs`) — the workspace's
//! vendored `serde` is an offline no-op facade, so both forms are
//! hand-rolled. Benches and examples emit snapshots through here instead
//! of ad-hoc formatting.

use std::io;

use crate::stats::{AppLatency, LatencyHistogram, RuntimeStats};

const MAGIC: &[u8] = b"PLDSTATS";
const FORMAT_VERSION: u32 = 1;

/// Encodes a stats snapshot to the versioned binary form.
pub fn to_bytes(stats: &RuntimeStats) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u64(&mut out, stats.admitted);
    put_u64(&mut out, stats.rejected);
    put_u64(&mut out, stats.evicted);
    put_u64(&mut out, stats.swaps);
    put_u64(&mut out, stats.requests);
    put_f64(&mut out, stats.cumulative_downtime_seconds);
    put_u64(&mut out, stats.queue_depth as u64);
    put_u64(&mut out, stats.pages_total as u64);
    put_u64(&mut out, stats.pages_occupied as u64);
    put_u64(&mut out, stats.latencies.len() as u64);
    // BTreeMap iteration is already sorted by id: deterministic bytes.
    for (id, lat) in &stats.latencies {
        put_u64(&mut out, *id);
        put_str(&mut out, &lat.name);
        let (buckets, count, total_seconds, max_seconds) = lat.histogram.to_parts();
        for b in buckets {
            put_u64(&mut out, b);
        }
        put_u64(&mut out, count);
        put_f64(&mut out, total_seconds);
        put_f64(&mut out, max_seconds);
    }
    out
}

/// Decodes a snapshot produced by [`to_bytes`].
///
/// # Errors
///
/// `InvalidData` on bad magic, unsupported version, or truncation.
pub fn from_bytes(bytes: &[u8]) -> io::Result<RuntimeStats> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(MAGIC.len())? != MAGIC {
        return Err(corrupt("bad stats magic"));
    }
    if c.u32()? != FORMAT_VERSION {
        return Err(corrupt("unsupported stats format version"));
    }
    let mut stats = RuntimeStats {
        admitted: c.u64()?,
        rejected: c.u64()?,
        evicted: c.u64()?,
        swaps: c.u64()?,
        requests: c.u64()?,
        cumulative_downtime_seconds: c.f64()?,
        queue_depth: c.usize()?,
        pages_total: c.usize()?,
        pages_occupied: c.usize()?,
        ..RuntimeStats::default()
    };
    let n = c.usize()?;
    for _ in 0..n {
        let id = c.u64()?;
        let name = c.str()?;
        let mut buckets = [0u64; 32];
        for b in &mut buckets {
            *b = c.u64()?;
        }
        let count = c.u64()?;
        let total_seconds = c.f64()?;
        let max_seconds = c.f64()?;
        stats.latencies.insert(
            id,
            AppLatency {
                name,
                histogram: LatencyHistogram::from_parts(buckets, count, total_seconds, max_seconds),
            },
        );
    }
    if c.pos != bytes.len() {
        return Err(corrupt("trailing bytes after stats snapshot"));
    }
    Ok(stats)
}

/// Renders a snapshot as a JSON object (no trailing newline), 2-space
/// indented, every line prefixed by `indent` — so callers can splice it
/// into a larger hand-formatted report at any nesting depth.
pub fn to_json_indented(stats: &RuntimeStats, indent: &str) -> String {
    render_json(stats, indent, true)
}

/// [`to_json_indented`] without the per-app latency map — the compact
/// per-device block a fleet-level report embeds N of (a fleet serving
/// thousands of apps does not want every app's histogram in its KPI file).
pub fn summary_json_indented(stats: &RuntimeStats, indent: &str) -> String {
    render_json(stats, indent, false)
}

fn render_json(stats: &RuntimeStats, indent: &str, include_apps: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let field = |out: &mut String, key: &str, value: String, last: bool| {
        out.push_str(indent);
        out.push_str("  \"");
        out.push_str(key);
        out.push_str("\": ");
        out.push_str(&value);
        out.push_str(if last { "\n" } else { ",\n" });
    };
    field(&mut out, "admitted", stats.admitted.to_string(), false);
    field(&mut out, "rejected", stats.rejected.to_string(), false);
    field(&mut out, "evicted", stats.evicted.to_string(), false);
    field(&mut out, "swaps", stats.swaps.to_string(), false);
    field(&mut out, "requests", stats.requests.to_string(), false);
    field(
        &mut out,
        "cumulative_downtime_ms",
        format!("{:.4}", stats.cumulative_downtime_seconds * 1e3),
        false,
    );
    field(
        &mut out,
        "queue_depth",
        stats.queue_depth.to_string(),
        false,
    );
    field(
        &mut out,
        "pages_total",
        stats.pages_total.to_string(),
        false,
    );
    field(
        &mut out,
        "pages_occupied",
        stats.pages_occupied.to_string(),
        false,
    );
    field(
        &mut out,
        "occupancy",
        format!("{:.4}", stats.occupancy()),
        !include_apps,
    );
    if include_apps {
        out.push_str(indent);
        out.push_str("  \"apps\": {");
        let mut first = true;
        for (id, lat) in &stats.latencies {
            if !first {
                out.push(',');
            }
            first = false;
            let h = &lat.histogram;
            out.push('\n');
            out.push_str(indent);
            out.push_str(&format!(
                "    \"{}#{}\": {{ \"requests\": {}, \"mean_ms\": {:.4}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4} }}",
                escape(&lat.name),
                id,
                h.count(),
                h.mean_seconds() * 1e3,
                h.percentile(0.50) * 1e3,
                h.percentile(0.99) * 1e3,
                h.max_seconds() * 1e3,
            ));
        }
        if !first {
            out.push('\n');
            out.push_str(indent);
            out.push_str("  ");
        }
        out.push_str("}\n");
    }
    out.push_str(indent);
    out.push('}');
    out
}

/// [`to_json_indented`] at top level.
pub fn to_json(stats: &RuntimeStats) -> String {
    to_json_indented(stats, "")
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Encoding primitives — the store's little-endian fixed-width idiom.

fn corrupt(msg: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(corrupt("unexpected end of stats snapshot"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> io::Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt("length does not fit usize"))
    }

    fn str(&mut self) -> io::Result<String> {
        let n = self.usize()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuntimeStats {
        let mut stats = RuntimeStats {
            admitted: 7,
            rejected: 2,
            evicted: 3,
            swaps: 1,
            requests: 40,
            cumulative_downtime_seconds: 0.125,
            queue_depth: 4,
            pages_total: 22,
            pages_occupied: 21,
            ..RuntimeStats::default()
        };
        let mut h = LatencyHistogram::default();
        h.record(2e-6);
        h.record(3e-4);
        stats.latencies.insert(
            5,
            AppLatency {
                name: "alpha \"quoted\"".into(),
                histogram: h,
            },
        );
        stats
    }

    #[test]
    fn binary_roundtrip_is_identity() {
        let stats = sample();
        let bytes = to_bytes(&stats);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, stats);
        // Deterministic encoding: same snapshot, same bytes.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let mut bytes = to_bytes(&sample());
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
        assert!(from_bytes(b"PLDSTATS").is_err());
    }

    #[test]
    fn json_has_the_kpi_keys_and_escapes_names() {
        let json = to_json(&sample());
        for key in [
            "\"admitted\": 7",
            "\"cumulative_downtime_ms\": 125.0000",
            "\"occupancy\": 0.9545",
            "\"p99_ms\"",
            "\"alpha \\\"quoted\\\"#5\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Empty-apps snapshot still renders a closed object.
        let empty = to_json(&RuntimeStats::default());
        assert!(empty.contains("\"apps\": {}"));
    }
}
