//! Event-driven netlist emulation.
//!
//! This is the reproduction's stand-in for RTL emulation (the "Vitis Emu"
//! column of the paper's Tab. 3): every simulated cycle sweeps the whole
//! design, evaluating each cell from its input values. The *values* are a
//! deterministic mixing function — the macro cells don't carry gate-level
//! functions — but the *cost* is the real cost of software emulation:
//! proportional to `cells × cycles`, three-to-five orders of magnitude
//! slower than the hardware it models, exactly the gap Tab. 3 reports.

use crate::graph::Netlist;

/// Statistics from one emulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EmuStats {
    /// Simulated clock cycles.
    pub cycles: u64,
    /// Cell evaluation events executed.
    pub events: u64,
    /// Wall-clock seconds spent emulating.
    pub wall_seconds: f64,
    /// A digest of all cell states, making the sweep impossible to
    /// dead-code-eliminate and runs comparable for determinism tests.
    pub digest: u64,
}

impl EmuStats {
    /// Emulation throughput in events per wall-clock second.
    pub fn events_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Emulates `cycles` clock cycles of the design.
///
/// Each cycle evaluates every cell once from the current values on its input
/// nets (a full-sweep two-phase simulator: combinational values settle into
/// a shadow state that becomes visible at the cycle boundary, like a
/// synchronous RTL simulator with one delta cycle).
pub fn emulate(netlist: &Netlist, cycles: u64) -> EmuStats {
    let start = std::time::Instant::now();
    let n = netlist.cells.len();

    // Precompute per-cell input lists (net drivers feeding each cell).
    let mut inputs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for net in &netlist.nets {
        for s in &net.sinks {
            inputs[s.0].push(net.driver.0);
        }
    }

    let mut state: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut next: Vec<u64> = state.clone();
    let mut events = 0u64;

    for cycle in 0..cycles {
        for (i, ins) in inputs.iter().enumerate() {
            // splitmix-style mix of the cell's inputs and its own state.
            let mut acc = state[i] ^ cycle;
            for &d in ins {
                acc = acc
                    .wrapping_add(state[d])
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                acc ^= acc >> 27;
            }
            next[i] = acc.wrapping_mul(0x94d0_49bb_1331_11eb) ^ (acc >> 31);
            events += 1;
        }
        std::mem::swap(&mut state, &mut next);
    }

    let digest = state.iter().fold(0u64, |a, &v| a.rotate_left(7) ^ v);
    EmuStats {
        cycles,
        events,
        wall_seconds: start.elapsed().as_secs_f64(),
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn chain(len: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_cell("c0", CellKind::Register { width: 32 });
        for i in 1..len {
            let next = nl.add_cell(format!("c{i}"), CellKind::Adder { width: 32 });
            nl.add_net(prev, vec![next], 32);
            prev = next;
        }
        nl
    }

    #[test]
    fn event_count_is_cells_times_cycles() {
        let nl = chain(10);
        let stats = emulate(&nl, 100);
        assert_eq!(stats.events, 10 * 100);
        assert_eq!(stats.cycles, 100);
    }

    #[test]
    fn emulation_is_deterministic() {
        let nl = chain(50);
        let a = emulate(&nl, 200);
        let b = emulate(&nl, 200);
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.digest, emulate(&nl, 201).digest);
    }

    #[test]
    fn cost_scales_with_design_size() {
        let small = emulate(&chain(10), 2000);
        let large = emulate(&chain(1000), 2000);
        assert_eq!(large.events, small.events * 100);
    }

    #[test]
    fn throughput_is_finite_and_positive() {
        let stats = emulate(&chain(100), 1000);
        assert!(stats.events_per_second() > 0.0);
        assert!(stats.events_per_second().is_finite());
    }
}
