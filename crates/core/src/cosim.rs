//! Full-system `-O0` co-simulation: softcores on the linking network.
//!
//! The most literal execution model in the reproduction: every page's
//! PicoRV32-class core runs its *compiled binary* instruction by
//! instruction, its memory-mapped stream ports wired to the leaf interfaces
//! of a cycle-level BFT network, with the DMA engine feeding and draining
//! external streams — the complete Fig. 3/Fig. 4 system. Blocking loads
//! stall cores until flits arrive; backpressure stalls writers; the Kahn
//! property guarantees the outputs match the host interpreter bit for bit,
//! and the integration tests assert exactly that.
//!
//! (The `-O1` performance model in [`crate::execute`] uses fluid actors for
//! speed; this module trades speed for fidelity and doubles as the
//! reference the actor model is sanity-checked against.)

use noc::BftNoc;
use softcore::{Cpu, StepResult, StreamIo};
use std::collections::VecDeque;
use std::fmt;

use crate::artifact::XclbinKind;
use crate::execute::OVERLAY_MHZ;
use crate::flow::{CompiledApp, OptLevel};

/// Result of a completed co-simulation.
#[derive(Debug, Clone)]
pub struct CosimOutput {
    /// Output word streams per external output, in declaration order.
    pub outputs: Vec<Vec<u32>>,
    /// Overlay cycles simulated.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Seconds of card time at the 200 MHz overlay clock.
    pub seconds: f64,
}

/// Co-simulation failures.
#[derive(Debug)]
pub enum CosimError {
    /// The app must be compiled at `-O0` (every operator a softcore image).
    WrongLevel,
    /// A core trapped.
    #[allow(missing_docs)]
    Trap { op: String, pc: u32 },
    /// The system did not drain within the cycle budget (deadlock or
    /// insufficient input).
    #[allow(missing_docs)]
    CycleBudget { cycles: u64 },
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::WrongLevel => write!(f, "co-simulation requires an -O0 app"),
            CosimError::Trap { op, pc } => write!(f, "softcore `{op}` trapped at {pc:#x}"),
            CosimError::CycleBudget { cycles } => {
                write!(f, "system did not complete within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for CosimError {}

/// One cycle's worth of stream I/O for a core, adapted onto its NoC leaf.
struct LeafIo<'n> {
    net: &'n mut BftNoc,
    leaf: usize,
}

impl StreamIo for LeafIo<'_> {
    fn read(&mut self, port: u32) -> Option<u32> {
        self.net.try_recv(self.leaf, port as u8)
    }

    fn write(&mut self, port: u32, word: u32) -> bool {
        self.net.inject(self.leaf, port as usize, word).is_ok()
    }
}

/// Runs a compiled `-O0` application cycle-accurately: cores and network
/// advance in lockstep at the overlay clock.
///
/// # Errors
///
/// See [`CosimError`].
pub fn cosim_o0(
    app: &CompiledApp,
    inputs: &[Vec<u32>],
    expected_output_words: &[usize],
    max_cycles: u64,
) -> Result<CosimOutput, CosimError> {
    if app.level != OptLevel::O0 {
        return Err(CosimError::WrongLevel);
    }

    // Instantiate every page core from its packed image.
    let mut cores: Vec<(String, usize, Cpu, bool)> = Vec::new();
    for op in &app.operators {
        let binary = op.soft.as_ref().ok_or(CosimError::WrongLevel)?;
        let leaf = op.page.expect("paged flow").0 as usize;
        cores.push((op.name.clone(), leaf, binary.instantiate(), false));
    }

    // The network, linked by the generated driver.
    let n_pages = app.floorplan.pages.len();
    let mut net = BftNoc::new(n_pages + 2, 8, 64);
    for link in &app.driver.links {
        net.set_dest(link.src_leaf as usize, link.stream as usize, link.dest);
    }
    let dma_in = app.dma_in_leaf() as usize;
    let dma_out = app.dma_out_leaf() as usize;

    let mut dma_queues: Vec<VecDeque<u32>> =
        inputs.iter().map(|v| v.iter().copied().collect()).collect();
    let mut outputs: Vec<Vec<u32>> = expected_output_words.iter().map(|_| Vec::new()).collect();

    let mut cycles = 0u64;
    loop {
        // Completion: every core halted and all expected outputs collected.
        let all_halted = cores.iter().all(|(_, _, _, halted)| *halted);
        let drained = outputs
            .iter()
            .zip(expected_output_words)
            .all(|(got, want)| got.len() >= *want);
        if all_halted && drained {
            break;
        }
        if cycles >= max_cycles {
            return Err(CosimError::CycleBudget { cycles });
        }

        // DMA in: one word per cycle onto the input leaf's uplink.
        for (stream, q) in dma_queues.iter_mut().enumerate() {
            if let Some(&w) = q.front() {
                if net.inject(dma_in, stream, w).is_ok() {
                    q.pop_front();
                }
                break; // single uplink
            }
        }

        // Each core executes one step against its leaf.
        for (name, leaf, cpu, halted) in cores.iter_mut() {
            if *halted {
                continue;
            }
            let mut io = LeafIo {
                net: &mut net,
                leaf: *leaf,
            };
            match cpu.step(&mut io) {
                StepResult::Ok | StepResult::Stall => {}
                StepResult::Halt => *halted = true,
                StepResult::Trap { pc } => {
                    return Err(CosimError::Trap {
                        op: name.clone(),
                        pc,
                    })
                }
            }
        }

        net.step();
        cycles += 1;

        // DMA out: drain arrivals into the output buffers.
        for (port, out) in outputs.iter_mut().enumerate() {
            while let Some(w) = net.try_recv(dma_out, port as u8) {
                out.push(w);
            }
        }
    }

    let instructions = cores.iter().map(|(_, _, c, _)| c.instructions).sum();
    Ok(CosimOutput {
        outputs,
        cycles,
        instructions,
        seconds: cycles as f64 / (OVERLAY_MHZ * 1e6),
    })
}

/// Convenience: checks an artifact really is a softcore image (used by
/// loader-side assertions and tests).
pub fn is_softcore_artifact(kind: &XclbinKind) -> bool {
    matches!(kind, XclbinKind::Softcore { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{compile, CompileOptions};
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn stage(name: &str, mul: i64, n: i64) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..n,
                [
                    Stmt::read("x", "in"),
                    Stmt::write(
                        "out",
                        Expr::var("x").mul(Expr::cint(mul)).add(Expr::var("i")),
                    ),
                ],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn full_system_matches_golden() {
        const N: i64 = 24;
        let mut b = GraphBuilder::new("sys");
        let a = b.add("a", stage("a", 3, N), Target::hw_auto());
        let c = b.add("c", stage("c", 5, N), Target::hw_auto());
        b.ext_input("Input_1", a, "in");
        b.connect("l", a, "out", c, "in");
        b.ext_output("Output_1", c, "out");
        let g = b.build().unwrap();

        let app = compile(&g, &CompileOptions::new(OptLevel::O0)).unwrap();
        let input: Vec<u32> = (10..10 + N as u32).collect();

        let golden = {
            let vals: Vec<kir::types::Value> = input
                .iter()
                .map(|&w| kir::types::Value::Int(aplib::DynInt::from_raw(32, false, w as u128)))
                .collect();
            let (out, _) = dfg::run_graph(&g, &[("Input_1", vals)]).unwrap();
            kir::wire::stream_to_words(&out["Output_1"])
        };

        let result = cosim_o0(&app, &[input], &[golden.len()], 50_000_000).unwrap();
        assert_eq!(result.outputs[0], golden);
        assert!(result.instructions > 0);
        // The softcore system is slow: thousands of cycles for 24 tokens.
        assert!(result.cycles > N as u64 * 10);
    }

    #[test]
    fn wrong_level_rejected() {
        let mut b = GraphBuilder::new("sys");
        let a = b.add("a", stage("a", 1, 2), Target::hw_auto());
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        let g = b.build().unwrap();
        let app = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        assert!(matches!(
            cosim_o0(&app, &[vec![]], &[0], 100),
            Err(CosimError::WrongLevel)
        ));
    }

    #[test]
    fn starved_system_hits_cycle_budget() {
        let mut b = GraphBuilder::new("sys");
        let a = b.add("a", stage("a", 1, 8), Target::hw_auto());
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        let g = b.build().unwrap();
        let app = compile(&g, &CompileOptions::new(OptLevel::O0)).unwrap();
        // Only 2 of 8 inputs: the core blocks forever on its stream port.
        let err = cosim_o0(&app, &[vec![1, 2]], &[8], 20_000).unwrap_err();
        assert!(matches!(err, CosimError::CycleBudget { .. }));
    }
}
