//! Property-based random KPN application generator.
//!
//! Samples well-formed streaming applications — random topologies × token
//! rates × kernel bodies — for two consumers:
//!
//! * the differential proptests, which check that [`crate::opt::optimize`] is
//!   semantics-preserving on a population far wider than the hand-written
//!   example apps, and
//! * the benchmark harness, which measures optimizer wins (tokens/sec,
//!   stall-cycle reduction, page balance) as population statistics rather
//!   than single-app anecdotes.
//!
//! Generation is deterministic from a [`GenConfig`] seed (a hand-rolled
//! splitmix64 [`Rng`]; no external crates), and token accounting is exact by
//! construction: every kernel is built around concrete per-port token counts
//! forward-propagated from the external input, so generated apps never
//! deadlock and always drain.
//!
//! Families cover the optimizer's whole surface: transport-bound chains
//! (fusion bait), multi-phase kernels (fission bait), rate-mismatched
//! up/downsampling chains (channel-sizing bait), plus diamonds and fan-outs
//! that stress graph rewiring around fused/split operators.

use aplib::DynInt;
use kir::{Expr, Kernel, KernelBuilder, Scalar, Stmt, Value};

use crate::graph::{Graph, GraphBuilder};
use crate::target::Target;

/// Deterministic splitmix64 generator — tiny, seedable, dependency-free.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (any value, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo) + 1)
    }
}

/// Knobs for one generated application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Seed: same config ⇒ same app, bit for bit.
    pub seed: u64,
    /// Stream length at the external input (scaled internally by resampling
    /// stages; kept exact throughout).
    pub tokens: u64,
    /// Upper bound on pipeline stages per chain.
    pub max_stages: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 1,
            tokens: 256,
            max_stages: 6,
        }
    }
}

/// A generated application: graph plus matching input streams.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// Topology family this app was drawn from.
    pub family: &'static str,
    /// The application graph (already validated by [`GraphBuilder::build`]).
    pub graph: Graph,
    /// External input streams, sized to drain the graph exactly.
    pub inputs: Vec<(String, Vec<Value>)>,
}

impl GeneratedApp {
    /// Inputs in the borrowed form the run APIs take.
    pub fn input_refs(&self) -> Vec<(&str, Vec<Value>)> {
        self.inputs
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect()
    }
}

/// Every topology family [`generate`] samples from.
pub const FAMILIES: &[&str] = &[
    "tiny-chain",
    "rate-chain",
    "diamond",
    "fan-out",
    "two-phase",
    "mixed-chain",
];

const U32: Scalar = Scalar::uint(32);

/// Generates one application; the family is drawn from the seed.
pub fn generate(cfg: &GenConfig) -> GeneratedApp {
    let mut rng = Rng::new(cfg.seed);
    let family = FAMILIES[rng.below(FAMILIES.len() as u64) as usize];
    generate_family(cfg, family).expect("built-in family")
}

/// Generates one application from a named family (see [`FAMILIES`]).
pub fn generate_family(cfg: &GenConfig, family: &str) -> Option<GeneratedApp> {
    // Offset the stream so different families from one seed differ too.
    let mut rng = Rng::new(cfg.seed ^ fnv(family));
    let tokens = cfg.tokens.max(1);
    let app = match family {
        "tiny-chain" => tiny_chain(&mut rng, tokens, cfg.max_stages),
        "rate-chain" => rate_chain(&mut rng, tokens, cfg.max_stages),
        "diamond" => diamond(&mut rng, tokens),
        "fan-out" => fan_out(&mut rng, tokens),
        "two-phase" => two_phase(&mut rng, tokens),
        "mixed-chain" => mixed_chain(&mut rng, tokens, cfg.max_stages),
        _ => return None,
    };
    Some(app)
}

/// Generates a whole population: one app per (family × replicate).
pub fn population(base: &GenConfig, replicates: u64) -> Vec<GeneratedApp> {
    let mut out = Vec::new();
    for r in 0..replicates {
        for family in FAMILIES {
            let cfg = GenConfig {
                seed: base.seed.wrapping_add(r.wrapping_mul(0x9e37)),
                ..base.clone()
            };
            out.extend(generate_family(&cfg, family));
        }
    }
    out
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn stream(rng: &mut Rng, n: u64) -> Vec<Value> {
    (0..n)
        .map(|_| {
            Value::Int(DynInt::from_raw(
                32,
                false,
                u128::from(rng.next_u64() & 0xffff_ffff),
            ))
        })
        .collect()
}

/// A random cheap per-token transform of `x`.
fn cheap_transform(rng: &mut Rng) -> Expr {
    let c = rng.range(1, 250) as i64;
    match rng.below(4) {
        0 => Expr::var("x").add(Expr::cint(c)),
        1 => Expr::var("x").xor(Expr::cint(c)),
        2 => Expr::var("x").mul(Expr::cint((c | 1) & 0xff)),
        _ => Expr::var("x").sub(Expr::cint(c)),
    }
}

/// `n` tokens in, `n` tokens out, one cheap op per token: fusion bait.
fn map_kernel(rng: &mut Rng, name: &str, n: u64) -> Kernel {
    let f = cheap_transform(rng);
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out", U32)
        .local("x", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [Stmt::read("x", "in"), Stmt::write("out", f)],
        )])
        .build()
        .expect("generated map kernel")
}

/// `n` in, `n` out, `inner` compute ops per token: a real compute stage.
fn heavy_kernel(rng: &mut Rng, name: &str, n: u64, inner: u64) -> Kernel {
    let c = rng.range(1, 31) as i64;
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out", U32)
        .local("x", U32)
        .local("acc", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [
                Stmt::read("x", "in"),
                Stmt::assign("acc", Expr::var("x")),
                Stmt::for_loop(
                    "j",
                    0..inner as i64,
                    [Stmt::assign(
                        "acc",
                        Expr::var("acc")
                            .mul(Expr::cint(3))
                            .add(Expr::var("j").xor(Expr::cint(c))),
                    )],
                ),
                Stmt::write("out", Expr::var("acc")),
            ],
        )])
        .build()
        .expect("generated heavy kernel")
}

/// `n` in, `n * k` out.
fn upsample_kernel(name: &str, n: u64, k: u64) -> Kernel {
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out", U32)
        .local("x", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [
                Stmt::read("x", "in"),
                Stmt::for_loop(
                    "j",
                    0..k as i64,
                    [Stmt::write("out", Expr::var("x").add(Expr::var("j")))],
                ),
            ],
        )])
        .build()
        .expect("generated upsample kernel")
}

/// `n * k` in, `n` out (running sum over each window).
fn downsample_kernel(name: &str, n: u64, k: u64) -> Kernel {
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out", U32)
        .local("x", U32)
        .local("acc", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [
                Stmt::assign("acc", Expr::cint(0)),
                Stmt::for_loop(
                    "j",
                    0..k as i64,
                    [
                        Stmt::read("x", "in"),
                        Stmt::assign("acc", Expr::var("acc").add(Expr::var("x"))),
                    ],
                ),
                Stmt::write("out", Expr::var("acc")),
            ],
        )])
        .build()
        .expect("generated downsample kernel")
}

/// `n` in, `n` out on each of two branches.
fn split_kernel2(name: &str, n: u64) -> Kernel {
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out0", U32)
        .output("out1", U32)
        .local("x", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [
                Stmt::read("x", "in"),
                Stmt::write("out0", Expr::var("x").add(Expr::cint(1))),
                Stmt::write("out1", Expr::var("x").xor(Expr::cint(0x55))),
            ],
        )])
        .build()
        .expect("generated split kernel")
}

/// Two `n`-token branches in, `n` tokens out.
fn join_kernel2(name: &str, n: u64) -> Kernel {
    KernelBuilder::new(name)
        .input("in0", U32)
        .input("in1", U32)
        .output("out", U32)
        .local("a", U32)
        .local("b", U32)
        .body([Stmt::for_loop(
            "i",
            0..n as i64,
            [
                Stmt::read("a", "in0"),
                Stmt::read("b", "in1"),
                Stmt::write("out", Expr::var("a").add(Expr::var("b"))),
            ],
        )])
        .build()
        .expect("generated join kernel")
}

/// Two sequential phases over an internal buffer array: fission bait.
fn two_phase_kernel(rng: &mut Rng, name: &str, n: u64, inner: u64) -> Kernel {
    let c = rng.range(1, 100) as i64;
    KernelBuilder::new(name)
        .input("in", U32)
        .output("out", U32)
        .local("x", U32)
        .array("buf", U32, n.max(1))
        .body([
            Stmt::for_loop(
                "i",
                0..n as i64,
                [
                    Stmt::read("x", "in"),
                    Stmt::for_loop(
                        "j",
                        0..inner as i64,
                        [Stmt::assign("x", Expr::var("x").add(Expr::cint(c)))],
                    ),
                    Stmt::store("buf", Expr::var("i"), Expr::var("x")),
                ],
            ),
            Stmt::for_loop(
                "i",
                0..n as i64,
                [
                    Stmt::assign("x", Expr::index("buf", Expr::var("i"))),
                    Stmt::for_loop(
                        "j",
                        0..inner as i64,
                        [Stmt::assign("x", Expr::var("x").xor(Expr::var("j")))],
                    ),
                    Stmt::write("out", Expr::var("x")),
                ],
            ),
        ])
        .build()
        .expect("generated two-phase kernel")
}

/// Chain of cheap maps: every adjacent pair is a fusion candidate.
fn tiny_chain(rng: &mut Rng, tokens: u64, max_stages: usize) -> GeneratedApp {
    let stages = rng.range(3, max_stages.max(3) as u64) as usize;
    let mut b = GraphBuilder::new("gen_tiny_chain");
    let ids: Vec<_> = (0..stages)
        .map(|i| {
            let k = map_kernel(rng, &format!("s{i}"), tokens);
            b.add(format!("s{i}"), k, Target::hw_auto())
        })
        .collect();
    b.ext_input("in0", ids[0], "in");
    for (i, w) in ids.windows(2).enumerate() {
        b.connect(format!("e{i}"), w[0], "out", w[1], "in");
    }
    b.ext_output("out0", ids[stages - 1], "out");
    finish(rng, "tiny-chain", b, &[("in0", tokens)])
}

/// Up/downsampling chain with matched rates: channel-sizing bait.
fn rate_chain(rng: &mut Rng, tokens: u64, max_stages: usize) -> GeneratedApp {
    let k = rng.range(2, 4); // resample factor
    let n = tokens.max(k);
    let stages = rng.range(3, max_stages.max(3) as u64) as usize;
    let mut b = GraphBuilder::new("gen_rate_chain");
    // up(k) → maps at k× rate → down(k): interior runs k× hotter than ends.
    let up = b.add("up", upsample_kernel("up", n, k), Target::hw_auto());
    let mut prev = up;
    let mut mids = Vec::new();
    for i in 0..stages.saturating_sub(2).max(1) {
        let m = b.add(
            format!("m{i}"),
            map_kernel(rng, &format!("m{i}"), n * k),
            Target::hw_auto(),
        );
        b.connect(format!("e{i}"), prev, "out", m, "in");
        prev = m;
        mids.push(m);
    }
    let down = b.add("down", downsample_kernel("down", n, k), Target::hw_auto());
    b.connect("e_down", prev, "out", down, "in");
    b.ext_input("in0", up, "in");
    b.ext_output("out0", down, "out");
    finish(rng, "rate-chain", b, &[("in0", n)])
}

/// Split → two unequal branches → join: rewiring stress around fusion. Each
/// branch is a short chain of maps (the light one also ends in a heavy
/// stage's shadow), so fusion has to rewire edges *inside* an arm while the
/// split/join boundary ops stay untouched.
fn diamond(rng: &mut Rng, tokens: u64) -> GeneratedApp {
    let mut b = GraphBuilder::new("gen_diamond");
    let sp = b.add("sp", split_kernel2("sp", tokens), Target::hw_auto());
    let light = rng.range(1, 3) as usize;
    let mut l_prev = sp;
    let mut l_port = "out0";
    for i in 0..light {
        let m = b.add(
            format!("l0_{i}"),
            map_kernel(rng, &format!("l0_{i}"), tokens),
            Target::hw_auto(),
        );
        b.connect(format!("el{i}"), l_prev, l_port, m, "in");
        l_prev = m;
        l_port = "out";
    }
    let inner = rng.range(4, 12);
    let l1 = b.add(
        "l1",
        heavy_kernel(rng, "l1", tokens, inner),
        Target::hw_auto(),
    );
    // The heavy arm also gets a trailing map so both arms exercise fusion.
    let l1b = b.add("l1b", map_kernel(rng, "l1b", tokens), Target::hw_auto());
    let jn = b.add("jn", join_kernel2("jn", tokens), Target::hw_auto());
    b.ext_input("in0", sp, "in");
    b.connect("e1", sp, "out1", l1, "in");
    b.connect("e1b", l1, "out", l1b, "in");
    b.connect("e2", l_prev, l_port, jn, "in0");
    b.connect("e3", l1b, "out", jn, "in1");
    b.ext_output("out0", jn, "out");
    finish(rng, "diamond", b, &[("in0", tokens)])
}

/// One source splitting into independent branches with own outputs; each
/// branch is a short chain of maps, so branches fuse internally without
/// disturbing the shared source.
fn fan_out(rng: &mut Rng, tokens: u64) -> GeneratedApp {
    let mut b = GraphBuilder::new("gen_fan_out");
    let sp = b.add("sp", split_kernel2("sp", tokens), Target::hw_auto());
    b.ext_input("in0", sp, "in");
    for (branch, src_port) in [("c0", "out0"), ("c1", "out1")] {
        let stages = rng.range(2, 4) as usize;
        let mut prev = sp;
        let mut port = src_port;
        for i in 0..stages {
            let name = format!("{branch}_{i}");
            let m = b.add(
                name.clone(),
                map_kernel(rng, &name, tokens),
                Target::hw_auto(),
            );
            b.connect(format!("e_{branch}_{i}"), prev, port, m, "in");
            prev = m;
            port = "out";
        }
        let ext = if branch == "c0" { "out0" } else { "out1" };
        b.ext_output(ext, prev, port);
    }
    finish(rng, "fan-out", b, &[("in0", tokens)])
}

/// A light pre-stage feeding one heavy two-phase bottleneck: fission bait.
fn two_phase(rng: &mut Rng, tokens: u64) -> GeneratedApp {
    let inner = rng.range(8, 24);
    let mut b = GraphBuilder::new("gen_two_phase");
    let pre = b.add("pre", map_kernel(rng, "pre", tokens), Target::hw_auto());
    let tp = b.add(
        "tp",
        two_phase_kernel(rng, "tp", tokens, inner),
        Target::hw_auto(),
    );
    b.ext_input("in0", pre, "in");
    b.connect("e0", pre, "out", tp, "in");
    // A short post-processing chain: the merge pass can absorb it into the
    // two-phase kernel's emit loop (and the pre-stage into its fill loop).
    let post = rng.range(1, 2) as usize;
    let mut prev = tp;
    for i in 0..post {
        let name = format!("post{i}");
        let m = b.add(
            name.clone(),
            map_kernel(rng, &name, tokens),
            Target::hw_auto(),
        );
        b.connect(format!("ep{i}"), prev, "out", m, "in");
        prev = m;
    }
    b.ext_output("out0", prev, "out");
    finish(rng, "two-phase", b, &[("in0", tokens)])
}

/// Random mix of cheap and heavy stages in one chain.
fn mixed_chain(rng: &mut Rng, tokens: u64, max_stages: usize) -> GeneratedApp {
    let stages = rng.range(3, max_stages.max(3) as u64) as usize;
    let mut b = GraphBuilder::new("gen_mixed_chain");
    let ids: Vec<_> = (0..stages)
        .map(|i| {
            let name = format!("s{i}");
            let k = if rng.below(3) == 0 {
                // Moderate per-token compute: these model streaming operators,
                // which are communication-bound by design (paper Sec. 2) —
                // huge inner loops would turn every app into an interpreter
                // compute benchmark instead.
                let inner = rng.range(4, 16);
                heavy_kernel(rng, &name, tokens, inner)
            } else {
                map_kernel(rng, &name, tokens)
            };
            b.add(name, k, Target::hw_auto())
        })
        .collect();
    b.ext_input("in0", ids[0], "in");
    for (i, w) in ids.windows(2).enumerate() {
        b.connect(format!("e{i}"), w[0], "out", w[1], "in");
    }
    b.ext_output("out0", ids[stages - 1], "out");
    finish(rng, "mixed-chain", b, &[("in0", tokens)])
}

fn finish(
    rng: &mut Rng,
    family: &'static str,
    builder: GraphBuilder,
    input_tokens: &[(&str, u64)],
) -> GeneratedApp {
    let graph = builder.build().expect("generated graph validates");
    let inputs = input_tokens
        .iter()
        .map(|(name, n)| ((*name).to_string(), stream(rng, *n)))
        .collect();
    GeneratedApp {
        family,
        graph,
        inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_graph;
    use crate::threaded::run_graph_threaded;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.family, b.family);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.inputs, b.inputs);
    }

    #[test]
    fn every_family_generates_runs_and_drains() {
        for family in FAMILIES {
            for seed in 0..4u64 {
                let cfg = GenConfig {
                    seed,
                    tokens: 48,
                    max_stages: 5,
                };
                let app = generate_family(&cfg, family).unwrap();
                let inputs = app.input_refs();
                let (exec_out, _) = run_graph(&app.graph, &inputs)
                    .unwrap_or_else(|e| panic!("{family} seed {seed}: {e:?}"));
                let thr_out = run_graph_threaded(&app.graph, &inputs)
                    .unwrap_or_else(|e| panic!("{family} seed {seed}: {e:?}"));
                assert_eq!(exec_out, thr_out, "{family} seed {seed}");
                // Every declared output produced something.
                for p in &app.graph.ext_outputs {
                    assert!(!exec_out[&p.name].is_empty(), "{family}:{}", p.name);
                }
            }
        }
    }

    #[test]
    fn population_covers_all_families() {
        let pop = population(&GenConfig::default(), 2);
        assert_eq!(pop.len(), FAMILIES.len() * 2);
        for family in FAMILIES {
            assert!(pop.iter().any(|a| a.family == *family));
        }
    }
}
