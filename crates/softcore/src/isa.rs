//! RV32IM instruction encoding and decoding.
//!
//! Only the subset the operator compiler emits is implemented; encode/decode
//! are exact inverses and round-trip property-tested.

/// Register names used by the compiler's ABI.
pub mod reg {
    /// Hard-wired zero.
    pub const ZERO: u32 = 0;
    /// Return address.
    pub const RA: u32 = 1;
    /// Stack pointer.
    pub const SP: u32 = 2;
    /// Scratch registers.
    pub const T0: u32 = 5;
    /// Register `t1`.
    pub const T1: u32 = 6;
    /// Register `t2`.
    pub const T2: u32 = 7;
    /// Argument registers (intrinsic-call ABI).
    pub const A0: u32 = 10;
    /// Register `a1`.
    pub const A1: u32 = 11;
    /// Register `a2`.
    pub const A2: u32 = 12;
    /// Register `a3`.
    pub const A3: u32 = 13;
    /// Intrinsic selector.
    pub const A7: u32 = 17;
}

/// A decoded RV32IM instruction (the emitted subset).
///
/// Variants are the standard RISC-V mnemonics with their usual operands
/// (`rd`/`rs1`/`rs2` register indices, sign-extended immediates, shift
/// amounts); see the RISC-V ISA manual for semantics.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    Lui { rd: u32, imm: i32 },
    Addi { rd: u32, rs1: u32, imm: i32 },
    Andi { rd: u32, rs1: u32, imm: i32 },
    Ori { rd: u32, rs1: u32, imm: i32 },
    Xori { rd: u32, rs1: u32, imm: i32 },
    Slli { rd: u32, rs1: u32, shamt: u32 },
    Srli { rd: u32, rs1: u32, shamt: u32 },
    Srai { rd: u32, rs1: u32, shamt: u32 },
    Add { rd: u32, rs1: u32, rs2: u32 },
    Sub { rd: u32, rs1: u32, rs2: u32 },
    Sll { rd: u32, rs1: u32, rs2: u32 },
    Srl { rd: u32, rs1: u32, rs2: u32 },
    Sra { rd: u32, rs1: u32, rs2: u32 },
    Slt { rd: u32, rs1: u32, rs2: u32 },
    Sltu { rd: u32, rs1: u32, rs2: u32 },
    And { rd: u32, rs1: u32, rs2: u32 },
    Or { rd: u32, rs1: u32, rs2: u32 },
    Xor { rd: u32, rs1: u32, rs2: u32 },
    Mul { rd: u32, rs1: u32, rs2: u32 },
    Div { rd: u32, rs1: u32, rs2: u32 },
    Divu { rd: u32, rs1: u32, rs2: u32 },
    Rem { rd: u32, rs1: u32, rs2: u32 },
    Remu { rd: u32, rs1: u32, rs2: u32 },
    Lw { rd: u32, rs1: u32, imm: i32 },
    Lh { rd: u32, rs1: u32, imm: i32 },
    Lhu { rd: u32, rs1: u32, imm: i32 },
    Lb { rd: u32, rs1: u32, imm: i32 },
    Lbu { rd: u32, rs1: u32, imm: i32 },
    Sw { rs1: u32, rs2: u32, imm: i32 },
    Sh { rs1: u32, rs2: u32, imm: i32 },
    Sb { rs1: u32, rs2: u32, imm: i32 },
    Beq { rs1: u32, rs2: u32, imm: i32 },
    Bne { rs1: u32, rs2: u32, imm: i32 },
    Blt { rs1: u32, rs2: u32, imm: i32 },
    Bge { rs1: u32, rs2: u32, imm: i32 },
    Bltu { rs1: u32, rs2: u32, imm: i32 },
    Bgeu { rs1: u32, rs2: u32, imm: i32 },
    Jal { rd: u32, imm: i32 },
    Jalr { rd: u32, rs1: u32, imm: i32 },
    Ecall,
    Ebreak,
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(imm: i32, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | 0x63
}

fn j_type(imm: i32, rd: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | 0x6f
}

impl Instr {
    /// Encodes the instruction to its 32-bit word.
    pub fn encode(self) -> u32 {
        use Instr::*;
        match self {
            Lui { rd, imm } => ((imm as u32) & 0xffff_f000) | (rd << 7) | 0x37,
            Addi { rd, rs1, imm } => i_type(imm, rs1, 0b000, rd, 0x13),
            Andi { rd, rs1, imm } => i_type(imm, rs1, 0b111, rd, 0x13),
            Ori { rd, rs1, imm } => i_type(imm, rs1, 0b110, rd, 0x13),
            Xori { rd, rs1, imm } => i_type(imm, rs1, 0b100, rd, 0x13),
            Slli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 0b001, rd, 0x13),
            Srli { rd, rs1, shamt } => i_type(shamt as i32, rs1, 0b101, rd, 0x13),
            Srai { rd, rs1, shamt } => i_type(shamt as i32 | 0x400, rs1, 0b101, rd, 0x13),
            Add { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b000, rd, 0x33),
            Sub { rd, rs1, rs2 } => r_type(0x20, rs2, rs1, 0b000, rd, 0x33),
            Sll { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b001, rd, 0x33),
            Srl { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b101, rd, 0x33),
            Sra { rd, rs1, rs2 } => r_type(0x20, rs2, rs1, 0b101, rd, 0x33),
            Slt { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b010, rd, 0x33),
            Sltu { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b011, rd, 0x33),
            And { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b111, rd, 0x33),
            Or { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b110, rd, 0x33),
            Xor { rd, rs1, rs2 } => r_type(0, rs2, rs1, 0b100, rd, 0x33),
            Mul { rd, rs1, rs2 } => r_type(1, rs2, rs1, 0b000, rd, 0x33),
            Div { rd, rs1, rs2 } => r_type(1, rs2, rs1, 0b100, rd, 0x33),
            Divu { rd, rs1, rs2 } => r_type(1, rs2, rs1, 0b101, rd, 0x33),
            Rem { rd, rs1, rs2 } => r_type(1, rs2, rs1, 0b110, rd, 0x33),
            Remu { rd, rs1, rs2 } => r_type(1, rs2, rs1, 0b111, rd, 0x33),
            Lw { rd, rs1, imm } => i_type(imm, rs1, 0b010, rd, 0x03),
            Lh { rd, rs1, imm } => i_type(imm, rs1, 0b001, rd, 0x03),
            Lhu { rd, rs1, imm } => i_type(imm, rs1, 0b101, rd, 0x03),
            Lb { rd, rs1, imm } => i_type(imm, rs1, 0b000, rd, 0x03),
            Lbu { rd, rs1, imm } => i_type(imm, rs1, 0b100, rd, 0x03),
            Sw { rs1, rs2, imm } => s_type(imm, rs2, rs1, 0b010, 0x23),
            Sh { rs1, rs2, imm } => s_type(imm, rs2, rs1, 0b001, 0x23),
            Sb { rs1, rs2, imm } => s_type(imm, rs2, rs1, 0b000, 0x23),
            Beq { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b000),
            Bne { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b001),
            Blt { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b100),
            Bge { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b101),
            Bltu { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b110),
            Bgeu { rs1, rs2, imm } => b_type(imm, rs2, rs1, 0b111),
            Jal { rd, imm } => j_type(imm, rd),
            Jalr { rd, rs1, imm } => i_type(imm, rs1, 0b000, rd, 0x67),
            Ecall => 0x0000_0073,
            Ebreak => 0x0010_0073,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// Returns `None` for encodings outside the emitted subset.
    pub fn decode(word: u32) -> Option<Instr> {
        use Instr::*;
        let opcode = word & 0x7f;
        let rd = (word >> 7) & 0x1f;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = (word >> 15) & 0x1f;
        let rs2 = (word >> 20) & 0x1f;
        let funct7 = word >> 25;
        let i_imm = (word as i32) >> 20;
        Some(match opcode {
            0x37 => Lui {
                rd,
                imm: (word & 0xffff_f000) as i32,
            },
            0x13 => match funct3 {
                0b000 => Addi {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b111 => Andi {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b110 => Ori {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b100 => Xori {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b001 => Slli {
                    rd,
                    rs1,
                    shamt: rs2,
                },
                0b101 => {
                    if funct7 == 0x20 {
                        Srai {
                            rd,
                            rs1,
                            shamt: rs2,
                        }
                    } else {
                        Srli {
                            rd,
                            rs1,
                            shamt: rs2,
                        }
                    }
                }
                _ => return None,
            },
            0x33 => match (funct7, funct3) {
                (0, 0b000) => Add { rd, rs1, rs2 },
                (0x20, 0b000) => Sub { rd, rs1, rs2 },
                (0, 0b001) => Sll { rd, rs1, rs2 },
                (0, 0b101) => Srl { rd, rs1, rs2 },
                (0x20, 0b101) => Sra { rd, rs1, rs2 },
                (0, 0b010) => Slt { rd, rs1, rs2 },
                (0, 0b011) => Sltu { rd, rs1, rs2 },
                (0, 0b111) => And { rd, rs1, rs2 },
                (0, 0b110) => Or { rd, rs1, rs2 },
                (0, 0b100) => Xor { rd, rs1, rs2 },
                (1, 0b000) => Mul { rd, rs1, rs2 },
                (1, 0b100) => Div { rd, rs1, rs2 },
                (1, 0b101) => Divu { rd, rs1, rs2 },
                (1, 0b110) => Rem { rd, rs1, rs2 },
                (1, 0b111) => Remu { rd, rs1, rs2 },
                _ => return None,
            },
            0x03 => match funct3 {
                0b010 => Lw {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b001 => Lh {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b101 => Lhu {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b000 => Lb {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                0b100 => Lbu {
                    rd,
                    rs1,
                    imm: i_imm,
                },
                _ => return None,
            },
            0x23 => {
                let imm = (((word >> 25) << 5) | ((word >> 7) & 0x1f)) as i32;
                let imm = (imm << 20) >> 20; // sign-extend 12 bits
                match funct3 {
                    0b010 => Sw { rs1, rs2, imm },
                    0b001 => Sh { rs1, rs2, imm },
                    0b000 => Sb { rs1, rs2, imm },
                    _ => return None,
                }
            }
            0x63 => {
                let imm = (((word >> 31) & 1) << 12)
                    | (((word >> 7) & 1) << 11)
                    | (((word >> 25) & 0x3f) << 5)
                    | (((word >> 8) & 0xf) << 1);
                let imm = ((imm as i32) << 19) >> 19; // sign-extend 13 bits
                match funct3 {
                    0b000 => Beq { rs1, rs2, imm },
                    0b001 => Bne { rs1, rs2, imm },
                    0b100 => Blt { rs1, rs2, imm },
                    0b101 => Bge { rs1, rs2, imm },
                    0b110 => Bltu { rs1, rs2, imm },
                    0b111 => Bgeu { rs1, rs2, imm },
                    _ => return None,
                }
            }
            0x6f => {
                let imm = (((word >> 31) & 1) << 20)
                    | (((word >> 12) & 0xff) << 12)
                    | (((word >> 20) & 1) << 11)
                    | (((word >> 21) & 0x3ff) << 1);
                let imm = ((imm as i32) << 11) >> 11; // sign-extend 21 bits
                Jal { rd, imm }
            }
            0x67 if funct3 == 0 => Jalr {
                rd,
                rs1,
                imm: i_imm,
            },
            0x73 => match word {
                0x0000_0073 => Ecall,
                0x0010_0073 => Ebreak,
                _ => return None,
            },
            _ => return None,
        })
    }
}

/// Emits a `li rd, value` sequence (1–2 instructions).
pub fn load_imm(rd: u32, value: i32) -> Vec<Instr> {
    if (-2048..=2047).contains(&value) {
        vec![Instr::Addi {
            rd,
            rs1: reg::ZERO,
            imm: value,
        }]
    } else {
        // lui + addi with carry adjustment for the sign of the low part.
        let lo = (value << 20) >> 20;
        let hi = value.wrapping_sub(lo) as u32 & 0xffff_f000;
        vec![
            Instr::Lui { rd, imm: hi as i32 },
            Instr::Addi {
                rd,
                rs1: rd,
                imm: lo,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_instructions() {
        use Instr::*;
        let cases = vec![
            Lui {
                rd: 5,
                imm: 0x12345 << 12,
            },
            Addi {
                rd: 5,
                rs1: 6,
                imm: -1,
            },
            Andi {
                rd: 1,
                rs1: 2,
                imm: 255,
            },
            Slli {
                rd: 5,
                rs1: 5,
                shamt: 31,
            },
            Srai {
                rd: 5,
                rs1: 5,
                shamt: 7,
            },
            Srli {
                rd: 5,
                rs1: 5,
                shamt: 7,
            },
            Add {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Sub {
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Mul {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Div {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Remu {
                rd: 10,
                rs1: 11,
                rs2: 12,
            },
            Lw {
                rd: 5,
                rs1: 2,
                imm: -4,
            },
            Lbu {
                rd: 5,
                rs1: 2,
                imm: 100,
            },
            Sw {
                rs1: 2,
                rs2: 5,
                imm: -8,
            },
            Sb {
                rs1: 2,
                rs2: 5,
                imm: 2047,
            },
            Beq {
                rs1: 1,
                rs2: 2,
                imm: -16,
            },
            Bge {
                rs1: 1,
                rs2: 2,
                imm: 4094,
            },
            Bltu {
                rs1: 1,
                rs2: 2,
                imm: -4096,
            },
            Jal { rd: 1, imm: 2048 },
            Jal { rd: 0, imm: -8 },
            Jalr {
                rd: 0,
                rs1: 1,
                imm: 0,
            },
            Ecall,
            Ebreak,
        ];
        for ins in cases {
            let enc = ins.encode();
            assert_eq!(
                Instr::decode(enc),
                Some(ins),
                "{ins:?} encodes to {enc:08x}"
            );
        }
    }

    #[test]
    fn load_imm_small_and_large() {
        assert_eq!(load_imm(5, 42).len(), 1);
        assert_eq!(load_imm(5, -42).len(), 1);
        assert_eq!(load_imm(5, 0x12345678).len(), 2);
        // The sequence must compute the right value (emulated by hand).
        for v in [
            0i32,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x7fff_ffff,
            i32::MIN,
            0x1000,
            0xfff,
        ] {
            let seq = load_imm(5, v);
            let mut reg = 0i64;
            for ins in seq {
                match ins {
                    Instr::Lui { imm, .. } => reg = imm as i64,
                    Instr::Addi { imm, rs1, .. } => {
                        reg = if rs1 == 0 {
                            imm as i64
                        } else {
                            (reg as i32).wrapping_add(imm) as i64
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(reg as i32, v, "li {v}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Instr::decode(0xffff_ffff), None);
        assert_eq!(Instr::decode(0), None);
    }
}
