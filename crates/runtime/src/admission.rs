//! Bounded admission queue with backpressure.
//!
//! Submissions beyond the bound are refused immediately — the runtime
//! pushes back rather than buffering unboundedly, and the caller gets the
//! compiled app back to retry after draining.

use pld::CompiledApp;
use std::collections::VecDeque;
use std::fmt;

use crate::AppId;

/// One queued admission request.
#[derive(Debug)]
pub struct PendingRequest {
    /// Identity assigned at submission.
    pub id: AppId,
    /// Display name.
    pub name: String,
    /// The compiled application awaiting pages.
    pub app: Box<CompiledApp>,
}

/// Refusal at the queue bound; carries the app back to the caller.
pub struct QueueFull {
    /// The refused application — resubmit it after the queue drains.
    pub app: Box<CompiledApp>,
}

impl fmt::Debug for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueueFull({})", self.app.graph.name)
    }
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission queue full; app `{}` refused",
            self.app.graph.name
        )
    }
}

/// FIFO admission queue bounded at `bound` pending requests.
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<PendingRequest>,
    bound: usize,
}

impl AdmissionQueue {
    /// Creates a queue admitting at most `bound` waiting requests.
    pub fn new(bound: usize) -> AdmissionQueue {
        AdmissionQueue {
            pending: VecDeque::new(),
            bound: bound.max(1),
        }
    }

    /// Requests waiting.
    pub fn depth(&self) -> usize {
        self.pending.len()
    }

    /// The configured bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Enqueues a request, or refuses it at the bound.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] (with the app inside) when `depth == bound`.
    pub fn push(&mut self, request: PendingRequest) -> Result<(), QueueFull> {
        if self.pending.len() >= self.bound {
            return Err(QueueFull { app: request.app });
        }
        self.pending.push_back(request);
        Ok(())
    }

    /// Dequeues the oldest request.
    pub fn pop(&mut self) -> Option<PendingRequest> {
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};
    use pld::{compile, CompileOptions, OptLevel};

    fn tiny_app() -> Box<CompiledApp> {
        let k = KernelBuilder::new("k")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..8,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap();
        let mut b = GraphBuilder::new("tiny");
        let a = b.add("a", k, Target::riscv_auto());
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        Box::new(compile(&b.build().unwrap(), &CompileOptions::new(OptLevel::O0)).unwrap())
    }

    #[test]
    fn refuses_past_the_bound_and_returns_the_app() {
        let mut q = AdmissionQueue::new(2);
        for i in 0..2 {
            q.push(PendingRequest {
                id: AppId(i),
                name: format!("a{i}"),
                app: tiny_app(),
            })
            .unwrap();
        }
        let refused = q
            .push(PendingRequest {
                id: AppId(9),
                name: "late".into(),
                app: tiny_app(),
            })
            .unwrap_err();
        assert_eq!(refused.app.graph.name, "tiny");
        assert_eq!(q.depth(), 2);
        // FIFO order.
        assert_eq!(q.pop().unwrap().id, AppId(0));
        assert_eq!(q.pop().unwrap().id, AppId(1));
        assert!(q.pop().is_none());
    }
}
