#![warn(missing_docs)]
//! Macro-cell netlists: the RTL-level artifact between HLS and place & route.
//!
//! In the paper's tool flow, Vitis_HLS compiles each operator's C to Verilog
//! (`a.v`, `b.v` in Figs. 5–7), which Vivado then synthesizes, places and
//! routes. This crate is that intermediate level. A [`Netlist`] is a DAG of
//! [`Cell`]s — datapath macros (adders, multipliers, register banks, BRAM
//! ports, stream interfaces...) rather than individual gates — connected by
//! [`Net`]s. Working at macro granularity keeps whole-application netlists in
//! the thousands of cells, big enough for realistic place-and-route behaviour
//! (the paper's compile times are dominated by P&R, Tab. 2) while keeping the
//! full Table-2 sweep tractable.
//!
//! Each cell kind carries a calibrated resource weight ([`Resources`]: LUTs,
//! FFs, BRAM18s, DSPs — the four columns of the paper's Tab. 1/Tab. 4) and an
//! intrinsic delay used by static timing analysis in `pnr`.
//!
//! [`sim`] provides an event-driven netlist emulation whose cost scales with
//! `cells × cycles` — the mechanism behind the paper's slow "Vitis Emu"
//! column in Tab. 3.

pub mod cell;
pub mod graph;
pub mod sim;

pub use cell::{CellKind, Resources};
pub use graph::{Cell, CellId, Net, NetId, Netlist, NetlistError};
pub use sim::{emulate, EmuStats};
