//! Serving multiple apps on one fabric with `pld-runtime`.
//!
//! The paper's flow compiles and loads one application at a time; this
//! example runs the multi-tenant serving layer on top of it. One 22-page
//! XCU50 fabric hosts several Rosetta benchmarks at once:
//!
//! 1. four apps are compiled at `-O0` and admitted through the bounded
//!    queue (a fifth submission bounces off the bound — backpressure);
//! 2. requests are served against each resident app;
//! 3. two more apps arrive; the fabric is out of pages, so the
//!    least-recently-used tenants are evicted to make room;
//! 4. one operator of a resident app is "edited" (its pragma re-pinned)
//!    and hot-swapped: one page reloads, a handful of config packets
//!    re-send, everything else keeps running — and the measured downtime
//!    is compared against a full-app reload.
//!
//! Run with: `cargo run --release --example serving`

use dfg::Target;
use fabric::Floorplan;
use pld::{BuildCache, CompileOptions, OptLevel};
use pld_runtime::{Runtime, RuntimeEvent};
use rosetta::{suite, Scale};

fn main() {
    let opts = CompileOptions::new(OptLevel::O0);
    let mut cache = BuildCache::new();

    // The six Rosetta benchmarks, compiled for softcore pages (-O0).
    let benches = suite(Scale::Tiny);
    println!("compiling {} apps at -O0:", benches.len());
    let apps: Vec<_> = benches
        .iter()
        .map(|b| {
            let app = cache
                .compile(&b.graph, &opts)
                .expect("rosetta compiles at -O0");
            println!(
                "  {:<18} {} operators -> {} pages",
                b.name,
                b.graph.operators.len(),
                app.operators.len()
            );
            app
        })
        .collect();

    // One card, 22 pages, queue bound 4.
    let mut rt = Runtime::with_queue_bound(Floorplan::u50(), 4);
    println!(
        "\nfabric up: {} pages, queue bound {}",
        Floorplan::u50().pages.len(),
        4
    );

    // --- Admission with backpressure -------------------------------------
    let mut overflow = Vec::new();
    for (bench, app) in benches.iter().zip(&apps) {
        if let Err(refused) = rt.submit(bench.name, app.clone()) {
            println!("queue full: `{}` refused (resubmit later)", bench.name);
            overflow.push(*refused.app);
        }
    }
    report(&rt.poll());

    // The refused apps get in once the queue drains.
    for app in overflow {
        let name = benches
            .iter()
            .find(|b| b.graph.name == app.graph.name)
            .map(|b| b.name)
            .expect("known bench");
        if rt.submit(name, app).is_err() {
            println!("`{name}` refused again");
        }
    }
    report(&rt.poll());
    println!("\n{}", rt.stats());

    // --- Serve requests ---------------------------------------------------
    // Run each resident tenant's workload (evicted tenants would need
    // re-admission first).
    let mut served = 0;
    for id in rt.resident_ids() {
        let name = rt.name_of(id).expect("resident").to_string();
        let bench = benches
            .iter()
            .find(|b| b.name == name)
            .expect("known bench");
        let inputs = bench.input_refs();
        if rt.run(id, &inputs).is_ok() {
            served += 1;
        }
    }
    println!("served {served} requests across resident tenants");

    // --- Hot swap ----------------------------------------------------------
    // "Edit" the most recently admitted resident app: re-pin its last
    // operator to a spare page — the pragma flip of the paper's
    // incremental-development loop — and hot-swap it in place.
    let id = *rt.resident_ids().last().expect("something is resident");
    let name = rt.name_of(id).expect("resident").to_string();
    let bench = benches
        .iter()
        .find(|b| b.name == name)
        .expect("known bench");
    let mut edited = bench.graph.clone();
    let app = cache.compile(&edited, &opts).expect("recompile");
    let homes: Vec<u32> = app
        .operators
        .iter()
        .filter_map(|o| o.page.map(|p| p.0))
        .collect();
    let spare = (0..22u32)
        .rev()
        .find(|p| !homes.contains(p))
        .expect("a spare page");
    let last = edited.operators.len() - 1;
    edited.operators[last].target = Target::riscv(spare);

    match rt.hot_swap(id, &edited, &mut cache, &opts) {
        Ok(report) => {
            println!(
                "\nhot swap of `{}`: recompiled {:?}, reloaded {} page(s), {} config packets",
                bench.name,
                report.recompiled,
                report.swapped_pages.len(),
                report.link_packets
            );
            println!(
                "  downtime {:>9.3} ms   (full reload would be {:>9.3} ms, {:.1}x more)",
                report.downtime_seconds * 1e3,
                report.full_reload_seconds * 1e3,
                report.full_reload_seconds / report.downtime_seconds.max(1e-12)
            );
        }
        Err(e) => println!("hot swap skipped: {e}"),
    }

    println!("\nfinal statistics:\n{}", rt.stats());
}

fn report(events: &[RuntimeEvent]) {
    for e in events {
        match e {
            RuntimeEvent::Admitted {
                name,
                downtime_seconds,
                pages,
                ..
            } => println!(
                "admitted `{name}` on {} pages ({:.3} ms downtime)",
                pages.len(),
                downtime_seconds * 1e3
            ),
            RuntimeEvent::Rejected { name, reason, .. } => {
                println!("rejected `{name}`: {reason}")
            }
            RuntimeEvent::Evicted { name, .. } => println!("evicted `{name}` (LRU)"),
        }
    }
}
