//! PathFinder-style negotiated-congestion routing.

use fabric::{Device, Rect};
use netlist::Netlist;
use std::collections::BinaryHeap;

use crate::place::Placement;
use crate::{PnrError, PnrOptions};

/// Routing-channel capacity: wires available per tile-boundary edge.
pub const CHANNEL_CAPACITY: u32 = 48;

/// Maximum negotiation iterations before declaring the design unroutable.
pub const MAX_ITERATIONS: u32 = 12;

/// A routed design: one tile path per net (driver tile → each sink tile).
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// Per net, per sink: the tile path walked, including both endpoints.
    pub routes: Vec<Vec<Vec<(u32, u32)>>>,
    /// Edges still overused at exit (zero for a successful route).
    pub overused_edges: u32,
    /// Negotiation iterations used.
    pub iterations: u32,
    /// Total edge relaxations performed (a compile-effort measure).
    pub edges_relaxed: u64,
    /// Total routed wire length in tile edges.
    pub wirelength: u64,
}

struct EdgeGraph {
    region: Rect,
    /// Occupancy per directed edge; edges are (tile, direction 0..4).
    occupancy: Vec<u32>,
    history: Vec<f32>,
}

const DIRS: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];

impl EdgeGraph {
    fn new(region: Rect) -> EdgeGraph {
        let n = (region.w * region.h) as usize * 4;
        EdgeGraph {
            region,
            occupancy: vec![0; n],
            history: vec![0.0; n],
        }
    }

    fn tile_index(&self, x: u32, y: u32) -> usize {
        ((x - self.region.x0) * self.region.h + (y - self.region.y0)) as usize
    }

    fn edge_index(&self, x: u32, y: u32, dir: usize) -> usize {
        self.tile_index(x, y) * 4 + dir
    }

    fn in_region(&self, x: i64, y: i64) -> bool {
        x >= self.region.x0 as i64
            && x < (self.region.x0 + self.region.w) as i64
            && y >= self.region.y0 as i64
            && y < (self.region.y0 + self.region.h) as i64
    }

    fn edge_cost(&self, idx: usize) -> f64 {
        let occ = self.occupancy[idx];
        let present = if occ >= CHANNEL_CAPACITY {
            1.0 + (occ - CHANNEL_CAPACITY + 1) as f64 * 2.0
        } else {
            1.0 + occ as f64 / CHANNEL_CAPACITY as f64 * 0.25
        };
        present + self.history[idx] as f64
    }
}

#[derive(PartialEq)]
struct QueueEntry {
    cost: f64,
    tile: (u32, u32),
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost; ties broken on coordinates for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.tile.cmp(&self.tile))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `from` to `to` over the edge graph; returns the tile path
/// and counts relaxations.
fn shortest_path(
    graph: &EdgeGraph,
    from: (u32, u32),
    to: (u32, u32),
    relaxed: &mut u64,
) -> Vec<(u32, u32)> {
    if from == to {
        return vec![from];
    }
    let n = (graph.region.w * graph.region.h) as usize;
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let start = graph.tile_index(from.0, from.1);
    dist[start] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(QueueEntry {
        cost: 0.0,
        tile: from,
    });

    while let Some(QueueEntry { cost, tile }) = heap.pop() {
        let ti = graph.tile_index(tile.0, tile.1);
        if cost > dist[ti] {
            continue;
        }
        if tile == to {
            break;
        }
        for (d, (dx, dy)) in DIRS.iter().enumerate() {
            let nx = tile.0 as i64 + dx;
            let ny = tile.1 as i64 + dy;
            if !graph.in_region(nx, ny) {
                continue;
            }
            *relaxed += 1;
            let edge = graph.edge_index(tile.0, tile.1, d);
            let next_cost = cost + graph.edge_cost(edge);
            let ni = graph.tile_index(nx as u32, ny as u32);
            if next_cost < dist[ni] {
                dist[ni] = next_cost;
                prev[ni] = (ti * 4 + d) as u32;
                heap.push(QueueEntry {
                    cost: next_cost,
                    tile: (nx as u32, ny as u32),
                });
            }
        }
    }

    // Reconstruct.
    let mut path = vec![to];
    let mut cur = graph.tile_index(to.0, to.1);
    while cur != start {
        let code = prev[cur];
        if code == u32::MAX {
            return Vec::new(); // unreachable within region (shouldn't happen)
        }
        let from_tile = (code / 4) as usize;
        let x = graph.region.x0 + (from_tile as u32) / graph.region.h;
        let y = graph.region.y0 + (from_tile as u32) % graph.region.h;
        path.push((x, y));
        cur = from_tile;
    }
    path.reverse();
    path
}

/// Routes all nets of a placed design inside `region` (or the whole device
/// when the abstract shell is off, modelling full-context routing).
///
/// # Errors
///
/// Returns [`PnrError::Unroutable`] if congestion cannot be resolved in
/// [`MAX_ITERATIONS`].
pub fn route(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    placement: &Placement,
    options: &PnrOptions,
) -> Result<RoutedDesign, PnrError> {
    let route_region = if options.abstract_shell {
        region
    } else {
        Rect::new(0, 0, device.width, device.height)
    };
    let mut graph = EdgeGraph::new(route_region);
    let mut edges_relaxed = 0u64;
    let mut routes: Vec<Vec<Vec<(u32, u32)>>> = vec![Vec::new(); netlist.nets.len()];

    let mut iterations = 0;
    let mut overused = 0;
    for iter in 0..MAX_ITERATIONS {
        iterations = iter + 1;
        graph.occupancy.iter_mut().for_each(|o| *o = 0);
        // Every pass sweeps the whole loaded routing context (occupancy
        // reset above plus the overuse scan below); charge that to the
        // effort measure — it is the cost an abstract shell avoids.
        edges_relaxed += graph.occupancy.len() as u64;

        for (ni, net) in netlist.nets.iter().enumerate() {
            let from = placement.assignment[net.driver.0];
            let mut sink_paths = Vec::with_capacity(net.sinks.len());
            for s in &net.sinks {
                let to = placement.assignment[s.0];
                let path = shortest_path(&graph, from, to, &mut edges_relaxed);
                // Occupy the edges walked.
                for w in path.windows(2) {
                    let (x0, y0) = w[0];
                    let (x1, y1) = w[1];
                    let dir = DIRS
                        .iter()
                        .position(|&(dx, dy)| {
                            (x0 as i64 + dx, y0 as i64 + dy) == (x1 as i64, y1 as i64)
                        })
                        .expect("path steps are unit moves");
                    let e = graph.edge_index(x0, y0, dir);
                    graph.occupancy[e] += net.width.div_ceil(8).max(1);
                }
                sink_paths.push(path);
            }
            routes[ni] = sink_paths;
        }

        overused = graph
            .occupancy
            .iter()
            .filter(|&&o| o > CHANNEL_CAPACITY)
            .count() as u32;
        if overused == 0 {
            break;
        }
        // Negotiation: overuse becomes history cost for the next iteration.
        for (i, &o) in graph.occupancy.iter().enumerate() {
            if o > CHANNEL_CAPACITY {
                graph.history[i] += (o - CHANNEL_CAPACITY) as f32 * 0.5;
            }
        }
    }

    if overused > 0 {
        return Err(PnrError::Unroutable {
            overused_edges: overused,
        });
    }

    let wirelength = routes
        .iter()
        .flat_map(|sink_paths| sink_paths.iter())
        .map(|p| p.len().saturating_sub(1) as u64)
        .sum();

    Ok(RoutedDesign {
        routes,
        overused_edges: 0,
        iterations,
        edges_relaxed,
        wirelength,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use netlist::CellKind;

    fn placed_chain(len: usize) -> (Netlist, Device, Rect, Placement) {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_cell("c0", CellKind::Adder { width: 32 });
        for i in 1..len {
            let c = nl.add_cell(format!("c{i}"), CellKind::Adder { width: 32 });
            nl.add_net(prev, vec![c], 32);
            prev = c;
        }
        let fp = fabric::Floorplan::u50();
        let region = fp.pages[0].rect;
        let placement = place(&nl, &fp.device, region, &PnrOptions::default()).unwrap();
        (nl, fp.device, region, placement)
    }

    #[test]
    fn routes_connect_placed_endpoints() {
        let (nl, device, region, placement) = placed_chain(30);
        let routed = route(&nl, &device, region, &placement, &PnrOptions::default()).unwrap();
        for (ni, net) in nl.nets.iter().enumerate() {
            for (si, sink) in net.sinks.iter().enumerate() {
                let path = &routed.routes[ni][si];
                assert_eq!(
                    path.first().copied().unwrap(),
                    placement.assignment[net.driver.0]
                );
                assert_eq!(path.last().copied().unwrap(), placement.assignment[sink.0]);
                // Unit steps only.
                for w in path.windows(2) {
                    let d = (w[1].0 as i64 - w[0].0 as i64).abs()
                        + (w[1].1 as i64 - w[0].1 as i64).abs();
                    assert_eq!(d, 1);
                }
            }
        }
        assert_eq!(routed.overused_edges, 0);
        assert!(routed.wirelength > 0);
    }

    #[test]
    fn full_context_routing_relaxes_more_edges() {
        let (nl, device, region, placement) = placed_chain(20);
        let fast = route(&nl, &device, region, &placement, &PnrOptions::default()).unwrap();
        let slow = route(
            &nl,
            &device,
            region,
            &placement,
            &PnrOptions {
                abstract_shell: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            slow.edges_relaxed > fast.edges_relaxed,
            "full-context {} vs scoped {}",
            slow.edges_relaxed,
            fast.edges_relaxed
        );
    }

    #[test]
    fn trivial_self_route_is_empty_walk() {
        let (nl, device, region, mut placement) = placed_chain(2);
        // Force both cells onto the same tile.
        placement.assignment[1] = placement.assignment[0];
        let routed = route(&nl, &device, region, &placement, &PnrOptions::default()).unwrap();
        assert_eq!(routed.routes[0][0].len(), 1);
        assert_eq!(routed.wirelength, 0);
    }
}
