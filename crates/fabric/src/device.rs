//! The FPGA device grid: SLRs, resource columns, tiles.

use netlist::Resources;
use serde::{Deserialize, Serialize};

/// Kind of a resource column in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// Configurable logic (LUTs + FFs).
    Clb,
    /// Block RAM column.
    Bram,
    /// DSP48 column.
    Dsp,
}

impl ColumnKind {
    /// Resources of one tile in a column of this kind.
    ///
    /// A tile is the model's unit of fabric area (roughly half a clock
    /// region's worth of one column). The capacities are chosen so the whole
    /// grid sums to XCU50-class totals (Sec. 7.1: 751,793 LUTs, ~2,300
    /// BRAM18s with developer-visible carving, 5,936 DSPs).
    pub fn tile_resources(self) -> Resources {
        match self {
            ColumnKind::Clb => Resources {
                luts: 240,
                ffs: 480,
                bram18: 0,
                dsp: 0,
            },
            ColumnKind::Bram => Resources {
                luts: 0,
                ffs: 0,
                bram18: 6,
                dsp: 0,
            },
            ColumnKind::Dsp => Resources {
                luts: 0,
                ffs: 0,
                bram18: 0,
                dsp: 15,
            },
        }
    }
}

/// A rectangular region of tiles, half-open in neither axis: covers columns
/// `x0..x0+w` and rows `y0..y0+h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Leftmost column.
    pub x0: u32,
    /// Bottom row.
    pub y0: u32,
    /// Width in columns.
    pub w: u32,
    /// Height in rows.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(x0: u32, y0: u32, w: u32, h: u32) -> Rect {
        Rect { x0, y0, w, h }
    }

    /// Whether `self` and `other` share any tile.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x0 + other.w
            && other.x0 < self.x0 + self.w
            && self.y0 < other.y0 + other.h
            && other.y0 < self.y0 + self.h
    }

    /// Whether the tile `(x, y)` lies inside.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// Number of tiles covered.
    pub fn area(&self) -> u32 {
        self.w * self.h
    }

    /// Centre of the rectangle in tile coordinates.
    pub fn center(&self) -> (f64, f64) {
        (
            self.x0 as f64 + self.w as f64 / 2.0,
            self.y0 as f64 + self.h as f64 / 2.0,
        )
    }
}

/// A modelled FPGA device: a `width × height` grid of tiles in vertically
/// stacked SLRs, with designated shell and linking-network column strips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Device name.
    pub name: String,
    /// Grid width in columns.
    pub width: u32,
    /// Grid height in rows (all SLRs).
    pub height: u32,
    /// Rows per SLR; `height` is a multiple of this.
    pub slr_height: u32,
    /// Per-column resource kinds, `width` entries.
    pub columns: Vec<ColumnKind>,
    /// Columns reserved for the vendor static shell (PCIe etc., Sec. 2.5).
    pub shell_cols: Vec<u32>,
    /// Columns reserved for the linking network strip (L1 DFX, Fig. 3).
    pub noc_cols: Vec<u32>,
}

impl Device {
    /// The Alveo U50's XCU50 model used throughout the paper's evaluation.
    ///
    /// 50 columns × 80 rows in two SLRs. BRAM columns at irregular offsets
    /// {6, 9, 18, 31, 43} and DSP columns at {12, 21, 33, 46}; columns 0–1 hold
    /// the static shell and columns 24–25 the linking-network strip.
    pub fn xcu50() -> Device {
        let bram_cols = [6u32, 9, 18, 31, 43];
        let dsp_cols = [12u32, 21, 33, 46];
        let columns = (0..50)
            .map(|c| {
                if bram_cols.contains(&c) {
                    ColumnKind::Bram
                } else if dsp_cols.contains(&c) {
                    ColumnKind::Dsp
                } else {
                    ColumnKind::Clb
                }
            })
            .collect();
        Device {
            name: "xcu50".into(),
            width: 50,
            height: 80,
            slr_height: 40,
            columns,
            shell_cols: vec![0, 1],
            noc_cols: vec![24, 25],
        }
    }

    /// Number of SLRs.
    pub fn slr_count(&self) -> u32 {
        self.height / self.slr_height
    }

    /// The SLR index of row `y`.
    pub fn slr_of_row(&self, y: u32) -> u32 {
        y / self.slr_height
    }

    /// Whether a rectangle crosses an SLR boundary (costs extra delay,
    /// Sec. 2.5).
    pub fn crosses_slr(&self, rect: &Rect) -> bool {
        self.slr_of_row(rect.y0) != self.slr_of_row(rect.y0 + rect.h - 1)
    }

    /// Whether column `x` is reserved (shell or NoC strip).
    pub fn is_reserved_col(&self, x: u32) -> bool {
        self.shell_cols.contains(&x) || self.noc_cols.contains(&x)
    }

    /// Resources of the tile at `(x, y)`; reserved columns yield zero.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is outside the grid.
    pub fn tile_resources(&self, x: u32, y: u32) -> Resources {
        assert!(
            x < self.width && y < self.height,
            "tile ({x},{y}) outside {}x{}",
            self.width,
            self.height
        );
        if self.is_reserved_col(x) {
            Resources::default()
        } else {
            self.columns[x as usize].tile_resources()
        }
    }

    /// Total resources within a rectangle (reserved columns contribute zero).
    pub fn region_resources(&self, rect: &Rect) -> Resources {
        let mut total = Resources::default();
        for x in rect.x0..rect.x0 + rect.w {
            for _y in rect.y0..rect.y0 + rect.h {
                total += self.tile_resources(x, rect.y0);
            }
        }
        total
    }

    /// Total user-visible resources (everything outside reserved columns).
    pub fn user_resources(&self) -> Resources {
        self.region_resources(&Rect::new(0, 0, self.width, self.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcu50_totals_are_in_class() {
        let d = Device::xcu50();
        let r = d.user_resources();
        // Paper Sec. 7.1: 751,793 LUTs, ~2,300 BRAM18, 5,936 DSPs available.
        assert!(r.luts > 650_000 && r.luts < 850_000, "LUTs {}", r.luts);
        assert!(r.bram18 > 2_000 && r.bram18 < 3_000, "BRAM {}", r.bram18);
        assert!(r.dsp > 4_000 && r.dsp < 7_000, "DSP {}", r.dsp);
        assert_eq!(d.slr_count(), 2);
    }

    #[test]
    fn reserved_columns_hold_no_user_resources() {
        let d = Device::xcu50();
        assert_eq!(d.tile_resources(0, 0), Resources::default());
        assert_eq!(d.tile_resources(24, 10), Resources::default());
        assert!(d.tile_resources(3, 0).luts > 0);
    }

    #[test]
    fn rect_overlap_cases() {
        let a = Rect::new(0, 0, 10, 10);
        assert!(a.overlaps(&Rect::new(5, 5, 10, 10)));
        assert!(!a.overlaps(&Rect::new(10, 0, 5, 5))); // edge-adjacent
        assert!(!a.overlaps(&Rect::new(0, 10, 5, 5)));
        assert!(a.overlaps(&a));
        assert!(a.contains(9, 9));
        assert!(!a.contains(10, 9));
        assert_eq!(a.area(), 100);
    }

    #[test]
    fn slr_crossing_detection() {
        let d = Device::xcu50();
        assert!(!d.crosses_slr(&Rect::new(2, 0, 5, 40)));
        assert!(d.crosses_slr(&Rect::new(2, 35, 5, 10)));
        assert_eq!(d.slr_of_row(39), 0);
        assert_eq!(d.slr_of_row(40), 1);
    }

    #[test]
    fn heterogeneous_columns_change_region_mix() {
        let d = Device::xcu50();
        let with_bram = d.region_resources(&Rect::new(4, 0, 4, 10)); // cols 4-7 incl. BRAM col 6
        let without = d.region_resources(&Rect::new(13, 0, 4, 10)); // cols 13-16, all CLB
        assert!(with_bram.bram18 > 0);
        assert_eq!(without.bram18, 0);
        assert!(without.luts > with_bram.luts);
    }
}
