//! Bounded ring shared between the two endpoints of a threaded stream link.
//!
//! One mutex-protected `VecDeque` plus a pair of condvars implements both
//! the per-token and the chunked transport: a batch moves as many tokens as
//! fit under a single lock acquisition, which is where the host KPN engine
//! gets its throughput — one lock round-trip and one wakeup per chunk
//! instead of per token. The per-token operations are the degenerate
//! chunk-of-one case, so both paths share the same ordering and
//! close-detection logic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::{ReadError, WriteError};

/// Shared state of one stream link. Endpoints hold this behind an `Arc` and
/// register themselves in the `writers`/`readers` counts so that hangup on
/// either side is observable from the other.
pub(crate) struct Ring<T> {
    state: Mutex<State<T>>,
    /// Signalled when tokens are pushed or the last writer leaves.
    not_empty: Condvar,
    /// Signalled when tokens are popped or the last reader leaves.
    not_full: Condvar,
    /// Backpressure episodes: a write call found the FIFO full and parked.
    write_blocks: AtomicU64,
    /// Starvation episodes: a read call found the FIFO empty and parked.
    read_blocks: AtomicU64,
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    writers: usize,
    readers: usize,
}

impl<T> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Ring<T> {
        Ring {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                writers: 1,
                readers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            write_blocks: AtomicU64::new(0),
            read_blocks: AtomicU64::new(0),
        }
    }

    /// Cumulative (backpressure, starvation) episode counts. An episode is
    /// one call that had to park, however many wakeups it took to proceed —
    /// counting wakeups would conflate stalling with condvar spurious-wake
    /// behaviour.
    pub(crate) fn stalls(&self) -> (u64, u64) {
        (
            self.write_blocks.load(Ordering::Relaxed),
            self.read_blocks.load(Ordering::Relaxed),
        )
    }

    pub(crate) fn add_writer(&self) {
        self.state.lock().unwrap().writers += 1;
    }

    pub(crate) fn remove_writer(&self) {
        let mut st = self.state.lock().unwrap();
        st.writers -= 1;
        if st.writers == 0 {
            drop(st);
            // Readers blocked on an empty queue must observe end-of-stream.
            self.not_empty.notify_all();
        }
    }

    pub(crate) fn add_reader(&self) {
        self.state.lock().unwrap().readers += 1;
    }

    pub(crate) fn remove_reader(&self) {
        let mut st = self.state.lock().unwrap();
        st.readers -= 1;
        if st.readers == 0 {
            drop(st);
            // Writers blocked on a full queue must observe the hangup.
            self.not_full.notify_all();
        }
    }

    pub(crate) fn write(&self, token: T) -> Result<(), WriteError> {
        let mut st = self.state.lock().unwrap();
        let mut parked = false;
        loop {
            if st.readers == 0 {
                return Err(WriteError);
            }
            if st.queue.len() < st.capacity {
                st.queue.push_back(token);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            if !parked {
                parked = true;
                self.write_blocks.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    pub(crate) fn try_write(&self, token: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        if st.readers == 0 || st.queue.len() >= st.capacity {
            return Err(token);
        }
        st.queue.push_back(token);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Moves every token out of `buf` into the ring, blocking for space as
    /// needed. Each wakeup transfers the whole prefix that fits.
    pub(crate) fn write_batch(&self, buf: &mut Vec<T>) -> Result<(), WriteError> {
        let mut pending = buf.drain(..);
        let mut st = self.state.lock().unwrap();
        let mut parked = false;
        loop {
            if st.readers == 0 {
                // The remaining tokens can never be delivered; `pending`
                // drops them on the way out.
                return Err(WriteError);
            }
            let space = st.capacity - st.queue.len();
            if space > 0 {
                let mut moved = 0;
                while moved < space {
                    match pending.next() {
                        Some(token) => {
                            st.queue.push_back(token);
                            moved += 1;
                        }
                        None => break,
                    }
                }
                if moved > 0 {
                    self.not_empty.notify_all();
                }
                if pending.len() == 0 {
                    return Ok(());
                }
            }
            if !parked {
                parked = true;
                self.write_blocks.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Moves the prefix of `buf` that fits right now; never blocks.
    pub(crate) fn try_write_batch(&self, buf: &mut Vec<T>) -> Result<usize, WriteError> {
        let mut st = self.state.lock().unwrap();
        if st.readers == 0 {
            return Err(WriteError);
        }
        let space = st.capacity - st.queue.len();
        let n = space.min(buf.len());
        if n > 0 {
            st.queue.extend(buf.drain(..n));
            drop(st);
            self.not_empty.notify_all();
        }
        Ok(n)
    }

    pub(crate) fn read(&self) -> Result<T, ReadError> {
        let mut st = self.state.lock().unwrap();
        let mut parked = false;
        loop {
            if let Some(token) = st.queue.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Ok(token);
            }
            if st.writers == 0 {
                return Err(ReadError);
            }
            if !parked {
                parked = true;
                self.read_blocks.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    pub(crate) fn try_read(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        let token = st.queue.pop_front()?;
        drop(st);
        self.not_full.notify_one();
        Some(token)
    }

    /// Appends up to `max` queued tokens to `out`, blocking until at least
    /// one is available or the stream closes. Returns how many were moved.
    pub(crate) fn read_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, ReadError> {
        if max == 0 {
            return Ok(0);
        }
        let mut st = self.state.lock().unwrap();
        let mut parked = false;
        loop {
            if !st.queue.is_empty() {
                let n = st.queue.len().min(max);
                out.extend(st.queue.drain(..n));
                drop(st);
                self.not_full.notify_all();
                return Ok(n);
            }
            if st.writers == 0 {
                return Err(ReadError);
            }
            if !parked {
                parked = true;
                self.read_blocks.fetch_add(1, Ordering::Relaxed);
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking variant of [`Ring::read_batch`]: returns `Ok(0)` when the
    /// queue is merely empty, `Err` only once the stream is closed *and*
    /// drained.
    pub(crate) fn try_read_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, ReadError> {
        let mut st = self.state.lock().unwrap();
        if st.queue.is_empty() {
            return if st.writers == 0 {
                Err(ReadError)
            } else {
                Ok(0)
            };
        }
        let n = st.queue.len().min(max);
        out.extend(st.queue.drain(..n));
        drop(st);
        self.not_full.notify_all();
        Ok(n)
    }
}
