//! Regenerates Tab. 3: Rosetta performance across execution modes.
//!
//! `cargo run --release -p pld-bench --bin table3 [tiny|small|medium]`

use pld::execute;
use pld_bench::{compile_suite, latency, scale_from_args};

fn main() {
    let scale = scale_from_args();
    let entries = compile_suite(scale);

    println!("Table 3: Rosetta Benchmark Performance ({scale:?} scale)\n");
    println!(
        "{:18} | {:>6} {:>10} | {:>6} {:>10} | {:>6} {:>10} | {:>6} {:>10} | {:>10} | {:>10}",
        "benchmark",
        "Fmax",
        "Vitis",
        "Fmax",
        "-O3",
        "Fmax",
        "-O1",
        "Fmax",
        "-O0",
        "X86",
        "VitisEmu"
    );
    for e in &entries {
        let inputs = e.bench.input_refs();
        let items = e.bench.items as f64;
        let per = |s: f64| latency(s / items);

        let vitis = execute::perf_vitis(&e.o3).expect("vitis model");
        let o3 = execute::perf_o3(&e.o3).expect("o3 model");
        let o1 = execute::perf_o1(&e.o1, &inputs).expect("o1 cosim");
        let o0 = execute::perf_o0(&e.o0, &inputs).expect("o0 softcores");
        let x86 = execute::perf_x86(&e.bench.graph, &inputs).expect("x86 run");
        let emu = execute::perf_emu(&e.o3).expect("emulation model");

        println!(
            "{:18} | {:>4.0}MHz {:>10} | {:>4.0}MHz {:>10} | {:>4.0}MHz {:>10} | {:>4.0}MHz {:>10} | {:>10} | {:>10}",
            e.bench.name,
            vitis.fmax_mhz,
            per(vitis.seconds_per_input),
            o3.fmax_mhz,
            per(o3.seconds_per_input),
            o1.fmax_mhz,
            per(o1.seconds_per_input),
            o0.fmax_mhz,
            per(o0.seconds_per_input),
            per(x86.seconds_per_input),
            per(emu.seconds_per_input),
        );
    }

    println!("\nslowdown ratios vs -O3 (paper shape: -O1 1.5-10x; -O0 10^3-10^5x):");
    println!("{:18} {:>10} {:>12}", "benchmark", "O1/O3", "O0/O3");
    for e in &entries {
        let inputs = e.bench.input_refs();
        let o3 = execute::perf_o3(&e.o3).expect("o3 model").seconds_per_input;
        let o1 = execute::perf_o1(&e.o1, &inputs)
            .expect("o1 cosim")
            .seconds_per_input;
        let o0 = execute::perf_o0(&e.o0, &inputs)
            .expect("o0 softcores")
            .seconds_per_input;
        println!("{:18} {:>9.1}x {:>11.0}x", e.bench.name, o1 / o3, o0 / o3);
    }
}
