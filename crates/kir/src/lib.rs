#![warn(missing_docs)]
//! Kernel IR: the single-source operator description at the centre of PLD.
//!
//! The paper's pivotal abstraction (Sec. 3) is that one C source file per
//! operator compiles to *three* targets: a processor (`-O0`, seconds), an
//! FPGA page (`-O1`, minutes) and a slice of a monolithic design (`-O3`,
//! hours). In this reproduction the role of that C source is played by
//! [`Kernel`] — a typed, loop-structured IR over `ap_int`/`ap_fixed` scalars
//! and blocking stream ports. Three backends consume it unchanged:
//!
//! * [`interp`] (this crate) — direct host execution; the golden model and
//!   the paper's "X86 g++" baseline,
//! * `hlsim` — high-level synthesis to a macro-cell netlist (`-O1`/`-O3`),
//! * `softcore::cc` — compilation to RV32IM code for the page softcores
//!   (`-O0`).
//!
//! The *operator discipline* of Sec. 3.4 (streams for all I/O, no allocation,
//! no recursion, standard arbitrary-precision datatypes) is enforced by
//! [`check::validate`], and is what makes the three-way compilation possible.
//!
//! # Examples
//!
//! A doubling operator, the "hello world" of streaming dataflow:
//!
//! ```
//! use kir::{Expr, KernelBuilder, Scalar, Stmt};
//!
//! let k = KernelBuilder::new("doubler")
//!     .input("in", Scalar::uint(32))
//!     .output("out", Scalar::uint(32))
//!     .local("x", Scalar::uint(32))
//!     .body([Stmt::for_loop(
//!         "i",
//!         0..16,
//!         [
//!             Stmt::read("x", "in"),
//!             Stmt::write("out", Expr::var("x").add(Expr::var("x"))),
//!         ],
//!     )])
//!     .build()
//!     .unwrap();
//!
//! let out = kir::interp::run_words(&k, &[("in", (0..16).collect())]).unwrap();
//! assert_eq!(out["out"], (0..16u32).map(|v| v * 2).collect::<Vec<_>>());
//! ```

#![allow(clippy::should_implement_trait)] // Expr builder methods mirror C operators

pub mod check;
pub mod expr;
pub mod interp;
pub mod kernel;
pub mod ops;
pub mod stmt;
pub mod types;
pub mod wire;

pub use check::{validate, CheckError};
pub use expr::{BinOp, Expr, UnOp};
pub use kernel::{ArrayDecl, Kernel, KernelBuilder, PortDecl, VarDecl};
pub use stmt::Stmt;
pub use types::{Scalar, Value};
