//! Cross-process warm-rebuild acceptance, driven by CI.
//!
//! CI runs this test **twice as separate processes** against one shared
//! cache directory:
//!
//! ```sh
//! PLD_CACHE_DIR=/tmp/shared cargo test --test build_graph_persistent
//! PLD_CACHE_DIR=/tmp/shared PLD_CACHE_EXPECT=warm \
//!     cargo test --test build_graph_persistent
//! ```
//!
//! The first (cold) process compiles the Rosetta spam filter from scratch
//! and persists the store; the second process must rebuild it with **zero**
//! stage executions — every HLS, P&R and pack product served from the
//! segment files the first process wrote. Without `PLD_CACHE_DIR` the test
//! exercises the same protocol in a private temp directory, so it is still
//! meaningful in a plain `cargo test` run.

use pld::{BuildCache, CompileOptions, OptLevel};
use rosetta::Scale;

fn private_dir() -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("pld-cold-warm-{}-{nanos}", std::process::id()))
}

#[test]
fn shared_cache_dir_serves_a_second_process_entirely_warm() {
    let (dir, private) = match std::env::var("PLD_CACHE_DIR") {
        Ok(d) => (std::path::PathBuf::from(d), false),
        Err(_) => (private_dir(), true),
    };
    std::fs::create_dir_all(&dir).unwrap();
    let expect_warm = std::env::var("PLD_CACHE_EXPECT").as_deref() == Ok("warm");
    let opts = CompileOptions::new(OptLevel::O1);
    let bench = rosetta::spam::bench(Scale::Tiny);

    let run_once = |dir: &std::path::Path| {
        let mut cache = BuildCache::open_dir(dir).unwrap();
        cache.compile(&bench.graph, &opts).unwrap();
        let executions = cache.last_report().unwrap().total_executions();
        cache.persist().unwrap();
        executions
    };

    let executions = run_once(&dir);
    if expect_warm {
        assert_eq!(
            executions, 0,
            "second process re-executed stages a shared cache should hold"
        );
    } else if executions == 0 {
        // A cold run against a genuinely empty directory must execute; a
        // reused PLD_CACHE_DIR is allowed to start warm.
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_some(),
            "cold build executed nothing against an empty cache"
        );
    }

    if private {
        // No driver process: play the second process ourselves.
        assert_eq!(run_once(&dir), 0, "warm reopen re-executed stages");
        std::fs::remove_dir_all(&dir).ok();
    }
}
