//! Binding/lowering: kernel IR → macro-cell netlist.
//!
//! One datapath cell is instantiated per *static* operation (hardware is
//! shared across loop iterations; unrolled loops replicate their body
//! datapath). Expression trees become cell DAGs with one net per operand
//! edge; variables live in register banks, arrays in BRAM ports, stream
//! ports in leaf-interface stream cells, and every loop gets a control FSM
//! with its counter/compare logic.

use kir::check::TypeEnv;
use kir::expr::{BinOp, Expr, UnOp};
use kir::stmt::Stmt;
use kir::Kernel;
use netlist::{CellId, CellKind, Netlist};
use std::collections::HashMap;

struct Lowerer<'k> {
    kernel: &'k Kernel,
    env: TypeEnv<'k>,
    nl: Netlist,
    /// Register cell per scalar local.
    var_cells: HashMap<String, CellId>,
    /// BRAM cell per array.
    array_cells: HashMap<String, CellId>,
    /// Stream interface cell per port.
    port_cells: HashMap<String, CellId>,
    /// Loop-counter cell per in-scope loop variable.
    loop_cells: Vec<(String, CellId)>,
    /// Unique-name counter.
    fresh: usize,
}

/// Lowers a validated kernel to a netlist.
pub fn lower(kernel: &Kernel) -> Netlist {
    let mut lw = Lowerer {
        kernel,
        env: TypeEnv::new(kernel),
        nl: Netlist::new(kernel.name.clone()),
        var_cells: HashMap::new(),
        array_cells: HashMap::new(),
        port_cells: HashMap::new(),
        loop_cells: Vec::new(),
        fresh: 0,
    };

    for p in &kernel.inputs {
        let id = lw.nl.add_cell(
            format!("in_{}", p.name),
            CellKind::StreamIn {
                width: p.elem.width(),
            },
        );
        lw.port_cells.insert(p.name.clone(), id);
    }
    for p in &kernel.outputs {
        let id = lw.nl.add_cell(
            format!("out_{}", p.name),
            CellKind::StreamOut {
                width: p.elem.width(),
            },
        );
        lw.port_cells.insert(p.name.clone(), id);
    }
    for v in &kernel.locals {
        let id = lw.nl.add_cell(
            format!("reg_{}", v.name),
            CellKind::Register {
                width: v.ty.width(),
            },
        );
        lw.var_cells.insert(v.name.clone(), id);
    }
    for a in &kernel.arrays {
        let bits = a.len * u64::from(a.elem.width());
        let id = lw
            .nl
            .add_cell(format!("bram_{}", a.name), CellKind::BramPort { bits });
        lw.array_cells.insert(a.name.clone(), id);
    }

    let body: Vec<&Stmt> = kernel.body.iter().collect();
    lw.block(&body, 1);
    lw.nl
}

impl<'k> Lowerer<'k> {
    fn fresh_name(&mut self, tag: &str) -> String {
        self.fresh += 1;
        format!("{tag}_{}", self.fresh)
    }

    fn width_of(&self, e: &Expr) -> u32 {
        self.env.infer(e).map(|t| t.width()).unwrap_or(32)
    }

    /// Maximum combinational operators chained between registers.
    ///
    /// HLS schedulers chain a few cheap operations into one cycle and
    /// register the result; without this bound a large expression tree
    /// would synthesize into one arbitrarily slow combinational cloud.
    const CHAIN_LIMIT: u32 = 1;

    /// Lowers an expression; returns the cell driving its value.
    fn expr(&mut self, e: &Expr, copies: u32) -> CellId {
        self.expr_d(e, copies).0
    }

    /// Registers `id` if the accumulated combinational depth hit the
    /// chaining limit, returning the (possibly re-driven) cell and depth.
    fn chain(&mut self, id: CellId, depth: u32, width: u32) -> (CellId, u32) {
        if depth < Self::CHAIN_LIMIT {
            return (id, depth);
        }
        let name = self.fresh_name("pipe");
        let reg = self.nl.add_cell(name, CellKind::Register { width });
        self.nl.add_net(id, vec![reg], width);
        (reg, 0)
    }

    /// Lowers an expression; returns the driving cell and its combinational
    /// depth since the last register (constants get `Const` cells so nets
    /// always have drivers).
    fn expr_d(&mut self, e: &Expr, copies: u32) -> (CellId, u32) {
        match e {
            Expr::Const { ty, .. } => {
                let name = self.fresh_name("const");
                (
                    self.nl
                        .add_cell(name, CellKind::Const { width: ty.width() }),
                    0,
                )
            }
            Expr::Var(name) => {
                if let Some((_, id)) = self.loop_cells.iter().rev().find(|(n, _)| n == name) {
                    (*id, 0)
                } else {
                    (self.var_cells[name], 0)
                }
            }
            Expr::ArrayGet { array, index } => {
                let (idx, _) = self.expr_d(index, copies);
                let bram = self.array_cells[array];
                self.nl.add_net(idx, vec![bram], self.width_of(index));
                (bram, 0) // BRAM reads are registered
            }
            Expr::Un { op, arg } => {
                let w = self.width_of(arg);
                let (a, ad) = self.expr_d(arg, copies);
                let kind = match op {
                    UnOp::Neg => CellKind::Adder { width: w },
                    UnOp::Not => CellKind::Logic { width: w },
                    UnOp::LNot => CellKind::Comparator { width: w },
                    UnOp::Abs => CellKind::Mux { width: w },
                };
                let name = self.fresh_name("un");
                let id = self.add_scaled(name, kind, copies);
                self.nl.add_net(a, vec![id], w);
                self.chain(id, ad + 1, w)
            }
            Expr::Bin { op, lhs, rhs } => {
                let lw = self.width_of(lhs);
                let rw = self.width_of(rhs);
                let w = lw.max(rw);
                let (l, ld) = self.expr_d(lhs, copies);
                let (r, rd) = self.expr_d(rhs, copies);
                let kind = match op {
                    BinOp::Add | BinOp::Sub => CellKind::Adder { width: w },
                    BinOp::Mul => CellKind::Mult { width: w },
                    BinOp::Div | BinOp::Rem => CellKind::Divider { width: w },
                    BinOp::And | BinOp::Or | BinOp::Xor => CellKind::Logic { width: w },
                    BinOp::Shl | BinOp::Shr => CellKind::Shifter { width: w },
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        CellKind::Comparator { width: w }
                    }
                    BinOp::LAnd | BinOp::LOr => CellKind::Logic { width: 1 },
                    BinOp::Min | BinOp::Max => CellKind::Comparator { width: w },
                };
                let name = self.fresh_name("bin");
                let id = self.add_scaled(name, kind, copies);
                self.nl.add_net(l, vec![id], lw);
                self.nl.add_net(r, vec![id], rw);
                let depth = ld.max(rd) + 1;
                if matches!(op, BinOp::Min | BinOp::Max) {
                    // Compare + select pair.
                    let name = self.fresh_name("minmax_mux");
                    let mux = self.add_scaled(name, CellKind::Mux { width: w }, copies);
                    self.nl.add_net(id, vec![mux], 1);
                    return self.chain(mux, depth + 1, w);
                }
                self.chain(id, depth, w)
            }
            Expr::Cast { arg, .. } | Expr::BitRange { arg, .. } => {
                // Pure wiring: resize/slice costs nothing after synthesis.
                self.expr_d(arg, copies)
            }
            Expr::Select {
                cond,
                then_val,
                else_val,
            } => {
                let w = self.width_of(then_val).max(self.width_of(else_val));
                let (c, cd) = self.expr_d(cond, copies);
                let (t, td) = self.expr_d(then_val, copies);
                let (e, ed) = self.expr_d(else_val, copies);
                let name = self.fresh_name("mux");
                let id = self.add_scaled(name, CellKind::Mux { width: w }, copies);
                self.nl.add_net(c, vec![id], 1);
                self.nl.add_net(t, vec![id], w);
                self.nl.add_net(e, vec![id], w);
                self.chain(id, cd.max(td).max(ed) + 1, w)
            }
        }
    }

    /// Adds a cell, replicating its resources for unroll copies by scaling
    /// the width (macro-level approximation of duplicated datapath).
    fn add_scaled(&mut self, name: String, kind: CellKind, copies: u32) -> CellId {
        if copies <= 1 {
            return self.nl.add_cell(name, kind);
        }
        // Represent `copies` parallel instances as one cell of scaled width;
        // resources scale linearly, which is what unrolling costs.
        let scaled = match kind {
            CellKind::Adder { width } => CellKind::Adder {
                width: width * copies,
            },
            CellKind::Mult { width } => CellKind::Mult {
                width: width * copies,
            },
            CellKind::Divider { width } => CellKind::Divider {
                width: width * copies,
            },
            CellKind::Logic { width } => CellKind::Logic {
                width: width * copies,
            },
            CellKind::Shifter { width } => CellKind::Shifter {
                width: width * copies,
            },
            CellKind::Comparator { width } => CellKind::Comparator {
                width: width * copies,
            },
            CellKind::Mux { width } => CellKind::Mux {
                width: width * copies,
            },
            other => other,
        };
        self.nl.add_cell(name, scaled)
    }

    fn block(&mut self, body: &[&Stmt], copies: u32) {
        for s in body {
            self.stmt(s, copies);
        }
    }

    fn stmt(&mut self, s: &Stmt, copies: u32) {
        match s {
            Stmt::Assign { var, value } => {
                let src = self.expr(value, copies);
                let dst = self.var_cells[var];
                self.nl.add_net(src, vec![dst], self.width_of(value));
            }
            Stmt::ArraySet {
                array,
                index,
                value,
            } => {
                let idx = self.expr(index, copies);
                let val = self.expr(value, copies);
                let bram = self.array_cells[array];
                self.nl.add_net(idx, vec![bram], self.width_of(index));
                self.nl.add_net(val, vec![bram], self.width_of(value));
            }
            Stmt::Read { var, port } => {
                let src = self.port_cells[port];
                let dst = self.var_cells[var];
                let w = self.kernel.local(var).map(|v| v.ty.width()).unwrap_or(32);
                self.nl.add_net(src, vec![dst], w);
            }
            Stmt::Write { port, value } => {
                let src = self.expr(value, copies);
                let dst = self.port_cells[port];
                self.nl.add_net(src, vec![dst], self.width_of(value));
            }
            Stmt::For {
                var, body, unroll, ..
            } => {
                // Control: FSM + counter register + increment + bound compare.
                let fsm_name = self.fresh_name(&format!("fsm_{var}"));
                let fsm = self.nl.add_cell(
                    fsm_name,
                    CellKind::Fsm {
                        states: body.len() as u32 + 2,
                    },
                );
                let ctr_name = self.fresh_name(&format!("ctr_{var}"));
                let ctr = self.nl.add_cell(ctr_name, CellKind::Register { width: 32 });
                let inc_name = self.fresh_name(&format!("inc_{var}"));
                let inc = self.nl.add_cell(inc_name, CellKind::Adder { width: 32 });
                let cmp_name = self.fresh_name(&format!("cmp_{var}"));
                let cmp = self
                    .nl
                    .add_cell(cmp_name, CellKind::Comparator { width: 32 });
                self.nl.add_net(ctr, vec![inc, cmp], 32);
                self.nl.add_net(inc, vec![ctr], 32);
                self.nl.add_net(cmp, vec![fsm], 1);

                self.loop_cells.push((var.clone(), ctr));
                let inner: Vec<&Stmt> = body.iter().collect();
                self.block(&inner, copies * *unroll);
                self.loop_cells.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond, copies);
                // Branch select feeds the enclosing control region; model as
                // a mux gating a 1-bit control signal.
                let name = self.fresh_name("brmux");
                let mux = self.nl.add_cell(name, CellKind::Mux { width: 1 });
                self.nl.add_net(c, vec![mux], 1);
                let t: Vec<&Stmt> = then_body.iter().collect();
                let e: Vec<&Stmt> = else_body.iter().collect();
                self.block(&t, copies);
                self.block(&e, copies);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kir::{KernelBuilder, Scalar};

    fn streaming_kernel() -> Kernel {
        KernelBuilder::new("s")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .local("acc", Scalar::fixed(32, 17))
            .array("lut", Scalar::uint(8), 256)
            .body([Stmt::for_pipelined(
                "i",
                0..64,
                [
                    Stmt::read("x", "in"),
                    Stmt::assign(
                        "acc",
                        Expr::var("acc").add(
                            Expr::var("x")
                                .cast(Scalar::fixed(32, 17))
                                .mul(Expr::cfixed(0.5, Scalar::fixed(32, 17))),
                        ),
                    ),
                    Stmt::write("out", Expr::index("lut", Expr::var("x").bits(7, 0))),
                ],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn netlist_is_wellformed() {
        let nl = lower(&streaming_kernel());
        nl.check().unwrap();
    }

    #[test]
    fn interfaces_registers_and_brams_present() {
        let nl = lower(&streaming_kernel());
        assert_eq!(
            nl.cells_where(|k| matches!(k, CellKind::StreamIn { .. }))
                .count(),
            1
        );
        assert_eq!(
            nl.cells_where(|k| matches!(k, CellKind::StreamOut { .. }))
                .count(),
            1
        );
        assert_eq!(
            nl.cells_where(|k| matches!(k, CellKind::BramPort { .. }))
                .count(),
            1
        );
        assert!(
            nl.cells_where(|k| matches!(k, CellKind::Register { .. }))
                .count()
                >= 3
        );
        assert_eq!(
            nl.cells_where(|k| matches!(k, CellKind::Fsm { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn datapath_cells_follow_operations() {
        let nl = lower(&streaming_kernel());
        // acc + (x * 0.5): one adder (plus loop counter's), one multiplier.
        assert!(
            nl.cells_where(|k| matches!(k, CellKind::Mult { .. }))
                .count()
                >= 1
        );
        assert!(
            nl.cells_where(|k| matches!(k, CellKind::Adder { .. }))
                .count()
                >= 2
        );
    }

    #[test]
    fn unrolling_scales_resources() {
        let mut k = streaming_kernel();
        let base = lower(&k).resources();
        if let Stmt::For { unroll, .. } = &mut k.body[0] {
            *unroll = 4;
        }
        let unrolled = lower(&k).resources();
        // Fixed overhead (interfaces, BRAM, FSM) is unchanged; the datapath
        // (here, the DSP multiplier) must scale with the unroll factor.
        assert!(
            unrolled.luts > base.luts,
            "unrolled {} vs base {}",
            unrolled.luts,
            base.luts
        );
        assert!(
            unrolled.dsp >= base.dsp * 4,
            "unrolled dsp {} vs base {}",
            unrolled.dsp,
            base.dsp
        );
    }

    #[test]
    fn bigger_kernels_make_bigger_netlists() {
        let small = lower(&streaming_kernel());
        let big_kernel = {
            let mut b = KernelBuilder::new("big")
                .input("in", Scalar::uint(32))
                .output("out", Scalar::uint(32))
                .local("x", Scalar::uint(32));
            for i in 0..20 {
                b = b.local(format!("t{i}"), Scalar::uint(32));
            }
            let mut stmts = vec![Stmt::read("x", "in")];
            for i in 0..20 {
                stmts.push(Stmt::assign(
                    format!("t{i}"),
                    Expr::var("x").mul(Expr::cint(i)).add(Expr::cint(1)),
                ));
            }
            stmts.push(Stmt::write("out", Expr::var("t19")));
            b.body([Stmt::for_pipelined("i", 0..16, stmts)])
                .build()
                .unwrap()
        };
        let big = lower(&big_kernel);
        assert!(big.cell_count() > small.cell_count() * 2);
    }
}
