#![warn(missing_docs)]
//! The PLD linking network: a deflection-routed butterfly fat tree.
//!
//! "PLD uses a Hoplite, lightweight, deflection-routed, single-flit packet,
//! packet-switched network using a Butterfly Fat Tree (BFT) topology"
//! (paper Sec. 4.3). The network is what *links* separately compiled pages:
//! leaf-interface control registers add destination headers to outgoing
//! stream data, and those registers are themselves set by in-band
//! configuration packets — so re-linking an application is a handful of
//! packets, not a recompile.
//!
//! This crate is a cycle-level simulator of that network:
//!
//! * [`BftNoc`] — the tree of 3-port deflection switches plus one
//!   [`LeafInterface`] per client (22 pages + DMA ports in the paper's
//!   deployment), stepped one cycle at a time;
//! * single-flit packets with 32-bit payloads; one flit per link per cycle,
//!   which makes each leaf's ~200 MHz × 32 b uplink the bandwidth bottleneck
//!   behind the paper's `-O1` slowdowns (Tab. 3);
//! * deflection routing: switches never buffer — a flit that loses
//!   arbitration is mis-routed and finds its way back, with oldest-first
//!   priority preventing livelock;
//! * in-band configuration: [`BftNoc::send_config`] updates a leaf's
//!   destination table exactly the way the paper re-links operators.
//!
//! # Examples
//!
//! ```
//! use noc::{BftNoc, PortAddr};
//!
//! let mut net = BftNoc::new(4, 2, 16);
//! // Leaf 0, stream 0 sends to leaf 3, input port 1.
//! net.set_dest(0, 0, PortAddr { leaf: 3, port: 1 });
//! net.inject(0, 0, 0xdead_beef).unwrap();
//! for _ in 0..32 {
//!     net.step();
//! }
//! assert_eq!(net.try_recv(3, 1), Some(0xdead_beef));
//! ```

mod leaf;
mod network;
mod switch;

pub use leaf::{LeafInterface, PortAddr};
pub use network::{BftNoc, InjectError, NocStats};
pub use switch::{Flit, FlitKind};
