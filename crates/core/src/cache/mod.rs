//! The tiered artifact cache: one [`CacheBackend`] trait, many stores.
//!
//! PR 3's [`ArtifactStore`] made every compile flow a driver over one
//! in-memory content-addressed map; this module promotes that map to the
//! **L1** of a tiered cache and adds a persistent on-disk **L2**
//! ([`DiskCache`]) so warm rebuilds survive across processes — the paper's
//! "incremental refinement" loop extended from one editor session to a
//! whole team (and a whole serving fleet) sharing one store directory.
//!
//! * [`CacheBackend`] — the trait every build driver ([`crate::build()`],
//!   [`crate::build_batch`], [`crate::BuildCache`], the runtime's hot swap)
//!   is generic over. [`ArtifactStore`] implements it (memory-only, the
//!   previous behavior, still the default), and so does [`TieredCache`].
//! * [`TieredCache`] — L1 in-memory store over an optional L2
//!   [`DiskCache`]; fetches promote L2 products into L1, puts write
//!   through. Opening the same directory from many processes (or many
//!   [`Fleet`](crate) devices) shares one cache: readers are lock-free,
//!   only compaction takes an advisory lock ([`DiskCache::compact`]).
//! * [`evict`] — cost-weighted LRU under a byte budget: the victim is the
//!   lowest *saved-vtime-per-byte* entry, so a cheap-to-recompute softcore
//!   binary is evicted long before a P&R race winner of the same size.
//! * [`speculate`] — after an edit, a predictor proposes likely-next stage
//!   keys (remaining race seeds, siblings of the edited operator, the
//!   other compile tier) and files them as cancellable background jobs on
//!   idle farm workers; completed products merge back into the store.

pub mod disk;
pub mod evict;
pub mod speculate;

pub use disk::DiskCache;
pub use evict::{eviction_order, saved_vtime_seconds, EvictCandidate};
pub use speculate::{SpeculationConfig, SpeculationStats, Speculator};

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::store::{
    ArtifactStore, HlsProduct, PnrProduct, SoftProduct, StageKey, StageKind, StageProduct,
};
use crate::vtime::VtimeModel;

/// What every compile driver needs from an artifact cache.
///
/// The build graph probes with [`CacheBackend::contains`] while planning,
/// pulls products with the fetch methods while materializing (a fetch may
/// promote across tiers, hence `&mut self`), and files new products with
/// [`CacheBackend::put`]. Batch compiles clone a [`CacheBackend::snapshot`]
/// per farm job and [`CacheBackend::absorb`] the results back.
pub trait CacheBackend {
    /// Whether a product is filed under `key` in any tier.
    fn contains(&self, key: StageKey) -> bool;

    /// Fetches a product, promoting it into the fastest tier on the way.
    fn fetch(&mut self, key: StageKey) -> Option<StageProduct>;

    /// Files a product under its key (keep-first on collision, like
    /// [`ArtifactStore::insert`]).
    fn put(&mut self, key: StageKey, product: StageProduct);

    /// Files a product computed *speculatively* (ahead of demand). The
    /// default forwards to [`CacheBackend::put`]; backends that track
    /// speculation mark the entry so the first demand fetch counts as a
    /// speculative hit.
    fn put_speculative(&mut self, key: StageKey, product: StageProduct) {
        self.put(key, product);
    }

    /// Demand fetches served by a speculative compile so far (0 for
    /// backends that do not track speculation).
    fn speculative_hits(&self) -> u64 {
        0
    }

    /// Number of products visible across all tiers.
    fn len(&self) -> usize;

    /// Whether the cache holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of visible products of one stage kind.
    fn count_kind(&self, kind: StageKind) -> usize;

    /// A self-contained in-memory view of every visible product — what a
    /// farm job builds against so it never touches the shared cache.
    fn snapshot(&self) -> ArtifactStore;

    /// Absorbs a job's store: every entry not already present is filed
    /// (write-through on tiered backends). Entries already present are
    /// left alone — the keep-first collision policy.
    fn absorb(&mut self, delta: ArtifactStore) {
        for (key, product) in delta.into_entries() {
            if !self.contains(key) {
                self.put(key, product);
            }
        }
    }

    /// Typed fetch of an HLS product.
    fn fetch_hls(&mut self, hash: u64) -> Option<HlsProduct> {
        match self.fetch(StageKey {
            kind: StageKind::HlsLower,
            hash,
        }) {
            Some(StageProduct::Hls(p)) => Some(p),
            _ => None,
        }
    }

    /// Typed fetch of a P&R product.
    fn fetch_pnr(&mut self, hash: u64) -> Option<PnrProduct> {
        match self.fetch(StageKey {
            kind: StageKind::PlaceRoute,
            hash,
        }) {
            Some(StageProduct::Pnr(p)) => Some(p),
            _ => None,
        }
    }

    /// Typed fetch of a softcore product.
    fn fetch_soft(&mut self, hash: u64) -> Option<SoftProduct> {
        match self.fetch(StageKey {
            kind: StageKind::SoftcoreCc,
            hash,
        }) {
            Some(StageProduct::Soft(p)) => Some(p),
            _ => None,
        }
    }

    /// Typed fetch of a packed artifact.
    fn fetch_pack(&mut self, hash: u64) -> Option<crate::artifact::Xclbin> {
        match self.fetch(StageKey {
            kind: StageKind::BitstreamPack,
            hash,
        }) {
            Some(StageProduct::Pack(x)) => Some(x),
            _ => None,
        }
    }

    /// Typed fetch of a generated driver.
    fn fetch_driver(&mut self, hash: u64) -> Option<crate::artifact::Driver> {
        match self.fetch(StageKey {
            kind: StageKind::LinkDriver,
            hash,
        }) {
            Some(StageProduct::Driver(d)) => Some(d),
            _ => None,
        }
    }

    /// Typed fetch of an optimized-graph product.
    fn fetch_opt(&mut self, hash: u64) -> Option<crate::store::OptProduct> {
        match self.fetch(StageKey {
            kind: StageKind::KpnOptimize,
            hash,
        }) {
            Some(StageProduct::Opt(p)) => Some(p),
            _ => None,
        }
    }

    /// Typed fetch of warm-start P&R hints.
    fn fetch_hints(&mut self, hash: u64) -> Option<crate::store::HintsProduct> {
        match self.fetch(StageKey {
            kind: StageKind::PnrHints,
            hash,
        }) {
            Some(StageProduct::Hints(h)) => Some(h),
            _ => None,
        }
    }
}

/// The in-memory store is the memory-only backend (and the L1 of
/// [`TieredCache`]): exactly the pre-refactor behavior.
impl CacheBackend for ArtifactStore {
    fn contains(&self, key: StageKey) -> bool {
        self.get(key).is_some()
    }

    fn fetch(&mut self, key: StageKey) -> Option<StageProduct> {
        self.get(key).cloned()
    }

    fn put(&mut self, key: StageKey, product: StageProduct) {
        self.insert(key, product);
    }

    fn len(&self) -> usize {
        ArtifactStore::len(self)
    }

    fn count_kind(&self, kind: StageKind) -> usize {
        ArtifactStore::count_kind(self, kind)
    }

    fn snapshot(&self) -> ArtifactStore {
        self.clone()
    }

    fn absorb(&mut self, delta: ArtifactStore) {
        self.merge(delta);
    }
}

/// Name of the legacy single-file store a cache directory may carry
/// (written by [`ArtifactStore::save`] before the tiered cache existed);
/// imported as a warm L1 on open.
const LEGACY_STORE_FILE: &str = "cache.pldstore";

/// An L1 in-memory [`ArtifactStore`] over an optional persistent L2
/// [`DiskCache`], with speculative-hit accounting on top.
///
/// `TieredCache::new()` is memory-only and behaves exactly like a bare
/// [`ArtifactStore`]; [`TieredCache::open`] attaches a shared store
/// directory. Products fetched out of L2 are promoted into L1; products
/// filed while building are written through to L2 immediately (append-only
/// segments), so a crash loses nothing that was filed. LRU stamps and the
/// eviction metadata live in the L2 index, published atomically by
/// [`TieredCache::persist`].
#[derive(Default)]
pub struct TieredCache {
    l1: ArtifactStore,
    l2: Option<DiskCache>,
    /// Byte budget enforced on L2 at [`TieredCache::persist`] time.
    budget: Option<u64>,
    /// Prices the recompute cost of a product for eviction weighting.
    vt: VtimeModel,
    /// Keys filed speculatively and not yet demanded.
    spec_marks: HashSet<StageKey>,
    spec_hits: u64,
}

impl TieredCache {
    /// Creates a memory-only cache (no L2).
    pub fn new() -> TieredCache {
        TieredCache::default()
    }

    /// Wraps an existing in-memory store as a memory-only cache.
    pub fn from_store(store: ArtifactStore) -> TieredCache {
        TieredCache {
            l1: store,
            l2: None,
            budget: None,
            vt: VtimeModel::default(),
            spec_marks: HashSet::new(),
            spec_hits: 0,
        }
    }

    /// Opens (or creates) a shared persistent cache directory as the L2.
    ///
    /// Lock-free: the directory is scanned (index first, then any segment
    /// records the index misses), and this instance gets its own fresh
    /// append segment, so any number of builder processes can hold the
    /// same directory open. A legacy `cache.pldstore` file in the
    /// directory (v2 or v3) is imported as warm L1 contents. Corrupt
    /// index/segment bytes degrade to a cold start, never an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation); corrupt cache
    /// *contents* are skipped, not reported.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<TieredCache> {
        TieredCache::open_with(dir, None)
    }

    /// [`TieredCache::open`] with a byte budget for the on-disk tier:
    /// [`TieredCache::persist`] evicts the lowest saved-vtime-per-byte
    /// entries until the live bytes fit.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation).
    pub fn open_with(dir: impl AsRef<Path>, budget: Option<u64>) -> io::Result<TieredCache> {
        let dir = dir.as_ref();
        let l2 = DiskCache::open(dir)?;
        let mut l1 = ArtifactStore::new();
        if let Ok(legacy) = ArtifactStore::load(dir.join(LEGACY_STORE_FILE)) {
            l1.merge(legacy);
        }
        Ok(TieredCache {
            l1,
            l2: Some(l2),
            budget,
            vt: VtimeModel::default(),
            spec_marks: HashSet::new(),
            spec_hits: 0,
        })
    }

    /// The L1 in-memory store.
    pub fn l1(&self) -> &ArtifactStore {
        &self.l1
    }

    /// Mutable access to the L1 store. Writes land in memory only; use
    /// [`CacheBackend::put`] for write-through.
    pub fn l1_mut(&mut self) -> &mut ArtifactStore {
        &mut self.l1
    }

    /// The store directory, when an L2 is attached.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.l2.as_ref().map(DiskCache::dir)
    }

    /// Number of products in the persistent tier (0 when memory-only).
    pub fn disk_len(&self) -> usize {
        self.l2.as_ref().map_or(0, DiskCache::len)
    }

    /// Live payload bytes in the persistent tier.
    pub fn disk_bytes(&self) -> u64 {
        self.l2.as_ref().map_or(0, DiskCache::live_bytes)
    }

    /// Enforces the byte budget (if any) and publishes the L2 index
    /// atomically. Keys evicted to fit the budget are returned. A no-op
    /// for a memory-only cache.
    ///
    /// When entries were evicted, a compaction is attempted so the freed
    /// bytes are actually reclaimed (and the evictees cannot resurrect on
    /// a rescan); if another process holds the compaction lock the dead
    /// bytes simply wait for the next persist.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the index publish.
    pub fn persist(&mut self) -> io::Result<Vec<StageKey>> {
        let Some(l2) = &mut self.l2 else {
            return Ok(Vec::new());
        };
        let evicted = match self.budget {
            Some(budget) => l2.enforce_budget(budget),
            None => Vec::new(),
        };
        l2.publish()?;
        if !evicted.is_empty() {
            l2.compact()?;
        }
        Ok(evicted)
    }

    /// Compacts the persistent tier: rewrites live entries into one fresh
    /// segment and deletes the rest, under the advisory compaction lock.
    /// Returns `false` (without touching anything) when another process
    /// holds the lock. A no-op `Ok(false)` for a memory-only cache.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the rewrite.
    pub fn compact(&mut self) -> io::Result<bool> {
        match &mut self.l2 {
            Some(l2) => l2.compact(),
            None => Ok(false),
        }
    }
}

impl CacheBackend for TieredCache {
    fn contains(&self, key: StageKey) -> bool {
        self.l1.get(key).is_some() || self.l2.as_ref().is_some_and(|l2| l2.contains(key))
    }

    fn fetch(&mut self, key: StageKey) -> Option<StageProduct> {
        let product = match self.l1.get(key) {
            Some(p) => {
                let p = p.clone();
                if let Some(l2) = &mut self.l2 {
                    l2.touch(key);
                }
                p
            }
            None => {
                let p = self.l2.as_mut().and_then(|l2| l2.read(key))?;
                self.l1.insert(key, p.clone());
                p
            }
        };
        if self.spec_marks.remove(&key) {
            self.spec_hits += 1;
        }
        Some(product)
    }

    fn put(&mut self, key: StageKey, product: StageProduct) {
        if let Some(l2) = &mut self.l2 {
            if !l2.contains(key) {
                let cost = saved_vtime_seconds(&self.vt, &product);
                l2.append(key, &product, cost);
            }
        }
        self.l1.insert(key, product);
    }

    fn put_speculative(&mut self, key: StageKey, product: StageProduct) {
        if !self.contains(key) {
            self.spec_marks.insert(key);
        }
        self.put(key, product);
    }

    fn speculative_hits(&self) -> u64 {
        self.spec_hits
    }

    fn len(&self) -> usize {
        // L2 may hold products evicted from nowhere (l1 misses); count the
        // union without materializing it.
        match &self.l2 {
            None => self.l1.len(),
            Some(l2) => {
                let extra = l2.keys().filter(|k| self.l1.get(*k).is_none()).count();
                self.l1.len() + extra
            }
        }
    }

    fn count_kind(&self, kind: StageKind) -> usize {
        match &self.l2 {
            None => self.l1.count_kind(kind),
            Some(l2) => {
                let extra = l2
                    .keys()
                    .filter(|k| k.kind == kind && self.l1.get(*k).is_none())
                    .count();
                self.l1.count_kind(kind) + extra
            }
        }
    }

    fn snapshot(&self) -> ArtifactStore {
        let mut view = self.l1.clone();
        if let Some(l2) = &self.l2 {
            for key in l2.keys().collect::<Vec<_>>() {
                if view.get(key).is_none() {
                    if let Some(product) = l2.read_unstamped(key) {
                        view.insert(key, product);
                    }
                }
            }
        }
        view
    }
}

impl Drop for TieredCache {
    /// Best-effort index publish so a cache that was never explicitly
    /// persisted still leaves its metadata behind (the segments themselves
    /// were written through at `put` time and survive regardless).
    fn drop(&mut self) {
        if let Some(l2) = &mut self.l2 {
            let _ = l2.publish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Driver;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "pld-cache-test-{tag}-{}-{nanos}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn driver_product(n: usize) -> StageProduct {
        StageProduct::Driver(Driver {
            loads: vec![crate::artifact::LoadOp::Overlay; n],
            links: Vec::new(),
        })
    }

    fn key(hash: u64) -> StageKey {
        StageKey {
            kind: StageKind::LinkDriver,
            hash,
        }
    }

    #[test]
    fn memory_only_tiered_cache_matches_artifact_store() {
        let mut tiered = TieredCache::new();
        let mut plain = ArtifactStore::new();
        for h in 0..4 {
            tiered.put(key(h), driver_product(h as usize));
            CacheBackend::put(&mut plain, key(h), driver_product(h as usize));
        }
        assert_eq!(CacheBackend::len(&tiered), CacheBackend::len(&plain));
        for h in 0..4 {
            assert_eq!(tiered.fetch(key(h)), plain.fetch(key(h)));
        }
        assert_eq!(tiered.snapshot().to_bytes(), plain.snapshot().to_bytes());
    }

    #[test]
    fn products_survive_reopen_and_promote_into_l1() {
        let dir = tmp_dir("reopen");
        {
            let mut cache = TieredCache::open(&dir).unwrap();
            cache.put(key(7), driver_product(3));
            cache.persist().unwrap();
        }
        let mut cache = TieredCache::open(&dir).unwrap();
        assert!(cache.contains(key(7)));
        assert!(cache.l1().get(key(7)).is_none(), "not in L1 before fetch");
        assert_eq!(cache.fetch(key(7)), Some(driver_product(3)));
        assert!(cache.l1().get(key(7)).is_some(), "promoted on fetch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unpersisted_products_recover_from_the_segment_scan() {
        let dir = tmp_dir("scan");
        {
            let mut cache = TieredCache::open(&dir).unwrap();
            cache.put(key(9), driver_product(1));
            // No persist: simulate a crash before the index publish. The
            // Drop publish is also skipped by removing the index after.
        }
        std::fs::remove_file(dir.join("index.pldidx")).ok();
        let mut cache = TieredCache::open(&dir).unwrap();
        assert_eq!(cache.fetch(key(9)), Some(driver_product(1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn speculative_puts_count_hits_once() {
        let mut cache = TieredCache::new();
        cache.put_speculative(key(1), driver_product(1));
        cache.put(key(2), driver_product(2));
        assert_eq!(cache.speculative_hits(), 0);
        cache.fetch(key(1));
        cache.fetch(key(1));
        cache.fetch(key(2));
        assert_eq!(cache.speculative_hits(), 1);
    }

    #[test]
    fn speculative_put_over_existing_key_is_not_a_mark() {
        let mut cache = TieredCache::new();
        cache.put(key(1), driver_product(1));
        cache.put_speculative(key(1), driver_product(1));
        cache.fetch(key(1));
        assert_eq!(cache.speculative_hits(), 0);
    }

    #[test]
    fn legacy_single_file_store_is_imported() {
        let dir = tmp_dir("legacy");
        let mut legacy = ArtifactStore::new();
        legacy.insert(key(5), driver_product(2));
        legacy.save(dir.join(LEGACY_STORE_FILE)).unwrap();
        let mut cache = TieredCache::open(&dir).unwrap();
        assert_eq!(cache.fetch(key(5)), Some(driver_product(2)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_products_and_collapses_segments() {
        let dir = tmp_dir("compact");
        {
            let mut a = TieredCache::open(&dir).unwrap();
            let mut b = TieredCache::open(&dir).unwrap();
            a.put(key(1), driver_product(1));
            b.put(key(2), driver_product(2));
            a.persist().unwrap();
            b.persist().unwrap();
        }
        let mut cache = TieredCache::open(&dir).unwrap();
        assert!(cache.compact().unwrap());
        let segs = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                let name = e.as_ref().unwrap().file_name();
                let name = name.to_string_lossy().into_owned();
                name.starts_with("seg-") && name.ends_with(".pldseg")
            })
            .count();
        assert_eq!(segs, 1, "one surviving segment after compaction");
        assert_eq!(cache.fetch(key(1)), Some(driver_product(1)));
        assert_eq!(cache.fetch(key(2)), Some(driver_product(2)));
        // A second opener still reads everything post-compaction.
        let mut other = TieredCache::open(&dir).unwrap();
        assert_eq!(other.fetch(key(1)), Some(driver_product(1)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_lock_is_advisory() {
        let dir = tmp_dir("lock");
        let mut cache = TieredCache::open(&dir).unwrap();
        cache.put(key(1), driver_product(1));
        std::fs::write(dir.join("compact.lock"), b"").unwrap();
        assert!(!cache.compact().unwrap(), "held lock skips compaction");
        std::fs::remove_file(dir.join("compact.lock")).unwrap();
        assert!(cache.compact().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
