//! Functional execution of a whole dataflow graph on the host.
//!
//! Runs every operator through the `kir` interpreter in topological order,
//! routing tokens along the stream links. By the Kahn-network property
//! (paper Sec. 3.2) the values produced are identical to those of any
//! hardware mapping, so this is both the "X86 g++" baseline of Tab. 3 and
//! the golden reference the `-O0`/`-O1`/`-O3` simulations are checked
//! against.

use kir::interp::{InterpError, InterpStats, Resolved};
use kir::types::Value;
use std::collections::HashMap;
use std::fmt;

use crate::graph::{Graph, OpId};

/// Aggregate statistics of one graph execution.
#[derive(Debug, Clone, Default)]
pub struct GraphRunStats {
    /// Per-operator interpreter statistics, in operator index order.
    pub per_op: Vec<InterpStats>,
    /// Tokens carried by each internal edge, in edge index order.
    pub edge_tokens: Vec<u64>,
}

impl GraphRunStats {
    /// Total dynamic operations across all operators (the sequential-host
    /// work estimate).
    pub fn total_ops(&self) -> u64 {
        self.per_op.iter().map(|s| s.ops).sum()
    }

    /// The largest per-operator operation count (the pipeline bottleneck).
    pub fn bottleneck_ops(&self) -> u64 {
        self.per_op.iter().map(|s| s.ops).max().unwrap_or(0)
    }
}

/// Failure of a graph execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphRunError {
    /// An operator failed; carries the instance name and the kernel error.
    #[allow(missing_docs)]
    Operator { op: String, error: InterpError },
    /// The caller supplied a stream for an unknown external input.
    NoSuchInput(String),
    /// The caller omitted a required external input.
    MissingInput(String),
}

impl fmt::Display for GraphRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphRunError::Operator { op, error } => write!(f, "operator `{op}` failed: {error}"),
            GraphRunError::NoSuchInput(n) => write!(f, "graph has no external input `{n}`"),
            GraphRunError::MissingInput(n) => write!(f, "external input `{n}` not supplied"),
        }
    }
}

impl std::error::Error for GraphRunError {}

/// A capture of every operator's input streams from one execution — what a
/// timing simulator needs to know exactly how many tokens crossed each link.
#[derive(Debug, Clone, Default)]
pub struct GraphTrace {
    /// Per operator (by index), per input port (by declaration order), the
    /// full token stream it consumed.
    pub op_inputs: Vec<Vec<Vec<Value>>>,
}

/// External output streams keyed by port name.
pub type GraphOutputs = HashMap<String, Vec<Value>>;

/// Runs the graph and additionally captures each operator's input streams.
///
/// # Errors
///
/// See [`run_graph`].
pub fn run_graph_trace(
    graph: &Graph,
    inputs: &[(&str, Vec<Value>)],
) -> Result<(GraphOutputs, GraphRunStats, GraphTrace), GraphRunError> {
    run_graph_inner(graph, inputs, true)
}

/// Runs the graph on external input streams, returning the external output
/// streams and execution statistics.
///
/// # Errors
///
/// Returns [`GraphRunError`] if inputs are missing/unknown or any operator
/// hits a runtime error (stream underflow, bounds violation, budget).
pub fn run_graph(
    graph: &Graph,
    inputs: &[(&str, Vec<Value>)],
) -> Result<(GraphOutputs, GraphRunStats), GraphRunError> {
    run_graph_inner(graph, inputs, false).map(|(out, stats, _)| (out, stats))
}

fn run_graph_inner(
    graph: &Graph,
    inputs: &[(&str, Vec<Value>)],
    capture: bool,
) -> Result<(GraphOutputs, GraphRunStats, GraphTrace), GraphRunError> {
    for (name, _) in inputs {
        if !graph.ext_inputs.iter().any(|p| p.name == *name) {
            return Err(GraphRunError::NoSuchInput(name.to_string()));
        }
    }

    // Streams buffered per (operator, input port).
    let mut pending: HashMap<(OpId, String), Vec<Value>> = HashMap::new();
    for p in &graph.ext_inputs {
        let stream = inputs
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| GraphRunError::MissingInput(p.name.clone()))?;
        pending.insert((p.op, p.port.clone()), stream);
    }

    let mut per_op = vec![InterpStats::default(); graph.operators.len()];
    let mut edge_tokens = vec![0u64; graph.edges.len()];
    let mut op_outputs: HashMap<(OpId, String), Vec<Value>> = HashMap::new();
    let mut trace = GraphTrace {
        op_inputs: graph
            .operators
            .iter()
            .map(|o| vec![Vec::new(); o.kernel.inputs.len()])
            .collect(),
    };

    for op_id in graph.topo_order() {
        let inst = &graph.operators[op_id.0];
        let resolved = Resolved::new(&inst.kernel);
        let op_inputs: Vec<(&str, Vec<Value>)> = inst
            .kernel
            .inputs
            .iter()
            .map(|p| {
                let stream = pending.remove(&(op_id, p.name.clone())).unwrap_or_default();
                (p.name.as_str(), stream)
            })
            .collect();
        if capture {
            for (pi, (_, stream)) in op_inputs.iter().enumerate() {
                trace.op_inputs[op_id.0][pi] = stream.clone();
            }
        }
        let (outputs, stats) = resolved
            .run(&op_inputs, kir::interp::DEFAULT_OP_BUDGET)
            .map_err(|error| GraphRunError::Operator {
                op: inst.name.clone(),
                error,
            })?;
        per_op[op_id.0] = stats;
        for (port, stream) in outputs {
            op_outputs.insert((op_id, port), stream);
        }
        // Route along outgoing edges.
        for (edge_id, edge) in graph.out_edges(op_id) {
            if let Some(stream) = op_outputs.remove(&(op_id, edge.from.1.clone())) {
                edge_tokens[edge_id.0] = stream.len() as u64;
                pending.insert((edge.to.0, edge.to.1.clone()), stream);
            }
        }
    }

    let mut ext = HashMap::new();
    for p in &graph.ext_outputs {
        let stream = op_outputs
            .remove(&(p.op, p.port.clone()))
            .unwrap_or_default();
        ext.insert(p.name.clone(), stream);
    }
    Ok((
        ext,
        GraphRunStats {
            per_op,
            edge_tokens,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::target::Target;
    use aplib::DynInt;
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn stage(name: &str, n: i64, addend: i64) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..n,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    }

    fn word_values(words: impl IntoIterator<Item = u32>) -> Vec<Value> {
        words
            .into_iter()
            .map(|w| Value::Int(DynInt::from_raw(32, false, w as u128)))
            .collect()
    }

    #[test]
    fn pipeline_adds_in_sequence() {
        let mut b = GraphBuilder::new("p");
        let a = b.add("a", stage("a", 8, 1), Target::hw(0));
        let c = b.add("c", stage("c", 8, 10), Target::hw(1));
        b.ext_input("Input_1", a, "in");
        b.connect("mid", a, "out", c, "in");
        b.ext_output("Output_1", c, "out");
        let g = b.build().unwrap();

        let (out, stats) = run_graph(&g, &[("Input_1", word_values(0..8))]).unwrap();
        let got: Vec<u64> = out["Output_1"].iter().map(|v| v.raw() as u64).collect();
        assert_eq!(got, (11..19).collect::<Vec<_>>());
        assert_eq!(stats.edge_tokens, vec![8]);
        assert_eq!(stats.per_op.len(), 2);
        assert!(stats.total_ops() >= stats.bottleneck_ops());
    }

    #[test]
    fn missing_input_is_reported() {
        let mut b = GraphBuilder::new("p");
        let a = b.add("a", stage("a", 1, 0), Target::hw(0));
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        let g = b.build().unwrap();
        let err = run_graph(&g, &[]).unwrap_err();
        assert_eq!(err, GraphRunError::MissingInput("Input_1".into()));
    }

    #[test]
    fn unknown_input_is_reported() {
        let mut b = GraphBuilder::new("p");
        let a = b.add("a", stage("a", 1, 0), Target::hw(0));
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        let g = b.build().unwrap();
        let err = run_graph(&g, &[("zzz", vec![])]).unwrap_err();
        assert_eq!(err, GraphRunError::NoSuchInput("zzz".into()));
    }

    #[test]
    fn operator_underflow_carries_instance_name() {
        let mut b = GraphBuilder::new("p");
        let a = b.add("first", stage("a", 8, 0), Target::hw(0));
        b.ext_input("Input_1", a, "in");
        b.ext_output("Output_1", a, "out");
        let g = b.build().unwrap();
        let err = run_graph(&g, &[("Input_1", word_values(0..3))]).unwrap_err();
        match err {
            GraphRunError::Operator { op, .. } => assert_eq!(op, "first"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
