//! Kahn-determinism properties for the chunked threaded engine.
//!
//! A Kahn process network's history is independent of scheduling, so the
//! threaded engine must produce byte-identical output streams to the
//! sequential reference interpreter for *every* combination of graph
//! shape, token count, channel depth and write-chunk size — including the
//! degenerate corners (zero tokens, depth 1, chunk 1, chunk larger than
//! the whole stream).

use dfg::{run_graph, run_graph_threaded_with, Graph, GraphBuilder, Target, ThreadedConfig};
use kir::types::Value;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use proptest::prelude::*;

fn word_values(n: u32) -> Vec<Value> {
    (0..n)
        .map(|w| Value::Int(aplib::DynInt::from_raw(32, false, w as u128)))
        .collect()
}

fn stage(name: &str, addend: i64, tokens: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_loop(
            "i",
            0..tokens,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

/// A linear pipeline of `n_stages` add-stages over `tokens` tokens.
fn pipeline(n_stages: usize, tokens: i64) -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let ids: Vec<_> = (0..n_stages)
        .map(|i| {
            b.add(
                format!("s{i}"),
                stage(&format!("s{i}"), i as i64 + 1, tokens),
                Target::hw_auto(),
            )
        })
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n_stages - 1], "out");
    b.build().unwrap()
}

/// A diamond: fork duplicates each token onto two arms with different
/// addends; join re-merges them by addition. Exercises one producer
/// feeding two channels and one consumer draining two — the shape where
/// per-port write buffering (rather than this engine's program-order
/// write log) would deadlock.
fn diamond(tokens: i64) -> Graph {
    let fork = KernelBuilder::new("fork")
        .input("in", Scalar::uint(32))
        .output("a", Scalar::uint(32))
        .output("b", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_loop(
            "i",
            0..tokens,
            [
                Stmt::read("x", "in"),
                Stmt::write("a", Expr::var("x")),
                Stmt::write("b", Expr::var("x")),
            ],
        )])
        .build()
        .unwrap();
    let join = KernelBuilder::new("join")
        .input("a", Scalar::uint(32))
        .input("b", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .local("y", Scalar::uint(32))
        .body([Stmt::for_loop(
            "i",
            0..tokens,
            [
                Stmt::read("x", "a"),
                Stmt::read("y", "b"),
                Stmt::write("out", Expr::var("x").add(Expr::var("y"))),
            ],
        )])
        .build()
        .unwrap();

    let mut b = GraphBuilder::new("diamond");
    let f = b.add("fork", fork, Target::hw_auto());
    let up = b.add("up", stage("up", 10, tokens), Target::hw_auto());
    let down = b.add("down", stage("down", 100, tokens), Target::hw_auto());
    let j = b.add("join", join, Target::hw_auto());
    b.ext_input("Input_1", f, "in");
    b.connect("fa", f, "a", up, "in");
    b.connect("fb", f, "b", down, "in");
    b.connect("aj", up, "out", j, "a");
    b.connect("bj", down, "out", j, "b");
    b.ext_output("Output_1", j, "out");
    b.build().unwrap()
}

fn assert_matches_reference(g: &Graph, tokens: u32, depth: usize, chunk: usize) {
    let inputs = vec![("Input_1", word_values(tokens))];
    let (reference, _) = run_graph(g, &inputs).unwrap();
    let cfg = ThreadedConfig {
        channel_depth: depth,
        chunk,
        ..ThreadedConfig::default()
    };
    let threaded = run_graph_threaded_with(g, &inputs, cfg).unwrap();
    assert_eq!(reference, threaded, "depth={depth} chunk={chunk}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pipelines of every shape agree with the sequential reference for
    /// any (depth, chunk) transport tuning.
    #[test]
    fn pipeline_agrees_with_reference(
        n_stages in 1usize..6,
        tokens in 0u32..600,
        depth in 1usize..300,
        chunk in 1usize..130,
    ) {
        let g = pipeline(n_stages, tokens as i64);
        assert_matches_reference(&g, tokens, depth, chunk);
    }

    /// Diamonds (fork/join with interleaved multi-port writes) agree with
    /// the reference; the program-order write log keeps chunked flushes
    /// deadlock-free even when chunk > depth.
    #[test]
    fn diamond_agrees_with_reference(
        tokens in 0u32..400,
        depth in 1usize..64,
        chunk in 1usize..130,
    ) {
        let g = diamond(tokens as i64);
        assert_matches_reference(&g, tokens, depth, chunk);
    }
}
