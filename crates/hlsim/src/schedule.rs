//! Scheduling: latencies, initiation intervals, invocation cycle counts.

use kir::check::TypeEnv;
use kir::expr::{BinOp, Expr};
use kir::stmt::Stmt;
use kir::Kernel;
use std::collections::HashSet;

/// Schedule of one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSchedule {
    /// Loop variable name (loops are identified by nesting path in reports).
    pub var: String,
    /// Trip count.
    pub trips: u64,
    /// Pipeline depth (cycles for one iteration to traverse the datapath).
    pub depth: u64,
    /// Initiation interval: cycles between successive iteration launches.
    /// Only meaningful for pipelined loops; non-pipelined loops relaunch
    /// after `depth` cycles (`ii == depth`).
    pub ii: u64,
    /// Whether the loop was pipelined.
    pub pipelined: bool,
    /// Total cycles for the loop.
    pub cycles: u64,
}

/// Whole-kernel schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Per-loop schedules in source order (outer before inner).
    pub loops: Vec<LoopSchedule>,
    /// Cycles for one complete kernel invocation with *direct* stream FIFOs
    /// (the monolithic `-O3`/Vitis implementation): each stream port allows
    /// one access per cycle, and distinct ports operate in parallel.
    pub total_cycles: u64,
    /// Cycles for one invocation behind the overlay's leaf interface
    /// (`-O1`/`-O0` mappings): all of the operator's streams share a single
    /// 32-bit network port in each direction (Sec. 4.3's bandwidth
    /// bottleneck), so per-iteration words serialize.
    pub overlay_cycles: u64,
}

impl Schedule {
    /// The II of the outermost hot loop (the kernel's steady-state launch
    /// rate); 1 if the kernel has no loops.
    pub fn top_ii(&self) -> u64 {
        self.loops.first().map(|l| l.ii).unwrap_or(1)
    }
}

/// Computes the schedule of a validated kernel.
pub fn schedule(kernel: &Kernel) -> Schedule {
    let env = TypeEnv::new(kernel);
    let mut loops = Vec::new();
    let total = block_latency(kernel, &env, &kernel.body, &mut loops, false);
    let mut overlay_loops = Vec::new();
    let overlay = block_latency(kernel, &env, &kernel.body, &mut overlay_loops, true);
    Schedule {
        loops,
        total_cycles: total.max(1),
        overlay_cycles: overlay.max(1),
    }
}

/// Extra cycles a statement needs beyond its slot, from multi-cycle ops.
fn expr_extra_cycles(e: &Expr) -> u64 {
    let mut extra = 0u64;
    e.visit(&mut |node| {
        if let Expr::Bin { op, .. } = node {
            let lat = match op {
                BinOp::Div | BinOp::Rem => 32u64, // iterative divider
                BinOp::Mul => 2,                  // wide multiplier pipeline
                _ => 0,
            };
            extra += lat.saturating_sub(1);
        }
    });
    extra
}

/// Latency in cycles of a straight-line statement (its schedule slot plus
/// multi-cycle operator stages).
fn stmt_latency(
    kernel: &Kernel,
    env: &TypeEnv<'_>,
    s: &Stmt,
    loops: &mut Vec<LoopSchedule>,
    overlay: bool,
) -> u64 {
    match s {
        Stmt::Assign { value, .. } | Stmt::Write { value, .. } => 1 + expr_extra_cycles(value),
        Stmt::ArraySet { index, value, .. } => {
            1 + expr_extra_cycles(index) + expr_extra_cycles(value)
        }
        Stmt::Read { var, .. } => {
            // A W-bit token needs ceil(W/32) words through the 32-bit link.
            let words = kernel.local(var).map(|v| v.ty.words()).unwrap_or(1) as u64;
            words
        }
        Stmt::For { .. } => loop_latency(kernel, env, s, loops, overlay),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let t = block_latency(kernel, env, then_body, loops, overlay);
            let e = block_latency(kernel, env, else_body, loops, overlay);
            1 + expr_extra_cycles(cond) + t.max(e)
        }
    }
}

fn block_latency(
    kernel: &Kernel,
    env: &TypeEnv<'_>,
    body: &[Stmt],
    loops: &mut Vec<LoopSchedule>,
    overlay: bool,
) -> u64 {
    body.iter()
        .map(|s| stmt_latency(kernel, env, s, loops, overlay))
        .sum()
}

/// Per-iteration stream-port pressure: a lower bound on II.
///
/// With direct FIFOs (`overlay == false`, the monolithic implementation)
/// each *individual* port sustains one word per cycle, so the bound is the
/// busiest single port. Behind the overlay's leaf interface
/// (`overlay == true`) every stream shares one 32-bit uplink and one
/// downlink, so reads and writes each serialize across ports.
fn port_words_per_iteration(kernel: &Kernel, body: &[Stmt], overlay: bool) -> u64 {
    use std::collections::HashMap;
    fn walk<'k>(
        kernel: &'k Kernel,
        body: &'k [Stmt],
        reads: &mut HashMap<&'k str, u64>,
        writes: &mut HashMap<&'k str, u64>,
    ) {
        for s in body {
            match s {
                Stmt::Read { var, port } => {
                    let w = kernel.local(var).map(|v| v.ty.words()).unwrap_or(1) as u64;
                    *reads.entry(port.as_str()).or_default() += w;
                }
                Stmt::Write { port, .. } => {
                    let w = kernel.output(port).map(|p| p.elem.words()).unwrap_or(1) as u64;
                    *writes.entry(port.as_str()).or_default() += w;
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(kernel, then_body, reads, writes);
                    walk(kernel, else_body, reads, writes);
                }
                _ => {}
            }
        }
    }
    let mut reads: HashMap<&str, u64> = HashMap::new();
    let mut writes: HashMap<&str, u64> = HashMap::new();
    walk(kernel, body, &mut reads, &mut writes);
    if overlay {
        let in_total: u64 = reads.values().sum();
        let out_total: u64 = writes.values().sum();
        in_total.max(out_total)
    } else {
        // The -O3 kernel generator sizes each hardware FIFO "according to
        // the datawidth for each link" (Fig. 7): a port moves its whole
        // per-iteration payload in one cycle, so streams never bound II.
        if reads.is_empty() && writes.is_empty() {
            0
        } else {
            1
        }
    }
}

/// Variables carried across iterations: assigned from an expression that
/// reads the variable itself (e.g. `sum = sum + x`).
fn recurrence_ii(body: &[Stmt]) -> u64 {
    let mut ii = 1u64;
    for s in body {
        match s {
            Stmt::Assign { var, value } => {
                let mut self_dep = false;
                value.visit(&mut |e| {
                    if let Expr::Var(name) = e {
                        if name == var {
                            self_dep = true;
                        }
                    }
                });
                if self_dep {
                    // The recurrence can't relaunch faster than its own
                    // multi-cycle operators complete.
                    ii = ii.max(1 + expr_extra_cycles(value));
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                ii = ii
                    .max(recurrence_ii(then_body))
                    .max(recurrence_ii(else_body));
            }
            _ => {}
        }
    }
    ii
}

/// Arrays both written and read inside the body: a load-after-store memory
/// dependency that bounds II at 2 on a single BRAM port pair.
fn memory_ii(body: &[Stmt]) -> u64 {
    let mut written: HashSet<String> = HashSet::new();
    let mut read: HashSet<String> = HashSet::new();
    for s in body {
        s.visit(&mut |s| {
            if let Stmt::ArraySet { array, .. } = s {
                written.insert(array.clone());
            }
        });
        s.visit_exprs(&mut |e| {
            if let Expr::ArrayGet { array, .. } = e {
                read.insert(array.clone());
            }
        });
    }
    if written.intersection(&read).next().is_some() {
        2
    } else {
        1
    }
}

fn loop_latency(
    kernel: &Kernel,
    env: &TypeEnv<'_>,
    s: &Stmt,
    loops: &mut Vec<LoopSchedule>,
    overlay: bool,
) -> u64 {
    let Stmt::For {
        var,
        body,
        pipeline,
        unroll,
        ..
    } = s
    else {
        unreachable!()
    };
    let trips = s.trip_count().unwrap_or(0);
    let slot = loops.len();
    // Reserve the slot so outer loops precede inner ones in the report.
    loops.push(LoopSchedule {
        var: var.clone(),
        trips,
        depth: 0,
        ii: 1,
        pipelined: *pipeline,
        cycles: 0,
    });
    let mut inner = Vec::new();
    let depth = block_latency(kernel, env, body, &mut inner, overlay).max(1);

    let has_inner_loop = body.iter().any(|s| matches!(s, Stmt::For { .. }));
    let effective_trips = trips
        .div_ceil(*unroll as u64)
        .max(if trips == 0 { 0 } else { 1 });

    let (ii, cycles) = if *pipeline && !has_inner_loop {
        let ii = recurrence_ii(body)
            .max(memory_ii(body))
            .max(port_words_per_iteration(kernel, body, overlay));
        let cycles = if effective_trips == 0 {
            0
        } else {
            depth + (effective_trips - 1) * ii
        };
        (ii, cycles)
    } else {
        // Non-pipelined (or containing inner loops): iterations serialize.
        (depth, effective_trips * depth + 2)
    };

    loops[slot].depth = depth;
    loops[slot].ii = ii;
    loops[slot].cycles = cycles;
    loops.extend(inner);
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use kir::{Expr, KernelBuilder, Scalar};

    fn k_pipelined(n: i64) -> Kernel {
        KernelBuilder::new("k")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..n,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(1))),
                ],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn pipelined_streaming_loop_achieves_ii_1() {
        let s = schedule(&k_pipelined(1000));
        assert_eq!(s.loops.len(), 1);
        assert_eq!(s.loops[0].ii, 1);
        assert!(s.loops[0].pipelined);
        // depth + (trips-1)*II ≈ trips for II=1.
        assert!(
            s.total_cycles >= 1000 && s.total_cycles < 1100,
            "{}",
            s.total_cycles
        );
    }

    #[test]
    fn recurrence_bounds_ii() {
        let k = KernelBuilder::new("acc")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .local("sum", Scalar::uint(32))
            .body([
                Stmt::for_pipelined(
                    "i",
                    0..100,
                    [
                        Stmt::read("x", "in"),
                        Stmt::assign("sum", Expr::var("sum").mul(Expr::var("x"))),
                    ],
                ),
                Stmt::write("out", Expr::var("sum")),
            ])
            .build()
            .unwrap();
        let s = schedule(&k);
        // sum = sum * x: the 2-cycle multiplier is in the recurrence.
        assert_eq!(s.loops[0].ii, 2);
    }

    #[test]
    fn divider_dominates_latency() {
        let k = KernelBuilder::new("div")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").div(Expr::cint(3))),
            ])
            .build()
            .unwrap();
        let s = schedule(&k);
        assert!(s.total_cycles >= 32);
    }

    #[test]
    fn wide_ports_raise_overlay_ii_only() {
        let k = KernelBuilder::new("wide")
            .input("in", Scalar::uint(64))
            .output("out", Scalar::uint(64))
            .local("x", Scalar::uint(64))
            .body([Stmt::for_pipelined(
                "i",
                0..100,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap();
        let s = schedule(&k);
        // Direct FIFOs carry the whole 64-bit token each cycle...
        assert_eq!(s.loops[0].ii, 1);
        // ...but the 32-bit overlay link serializes the two words.
        assert!(s.overlay_cycles >= 200, "overlay {}", s.overlay_cycles);
        assert!(s.overlay_cycles >= s.total_cycles);
    }

    #[test]
    fn memory_dependency_raises_ii() {
        let k = KernelBuilder::new("mem")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .array("buf", Scalar::uint(32), 16)
            .body([Stmt::for_pipelined(
                "i",
                0..100,
                [
                    Stmt::read("x", "in"),
                    Stmt::store("buf", Expr::var("i").and(Expr::cint(15)), Expr::var("x")),
                    Stmt::write(
                        "out",
                        Expr::index("buf", Expr::var("x").and(Expr::cint(15))),
                    ),
                ],
            )])
            .build()
            .unwrap();
        let s = schedule(&k);
        assert!(s.loops[0].ii >= 2);
    }

    #[test]
    fn nested_loops_serialize() {
        let k = KernelBuilder::new("nest")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "r",
                0..10,
                [Stmt::for_pipelined(
                    "c",
                    0..20,
                    [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
                )],
            )])
            .build()
            .unwrap();
        let s = schedule(&k);
        assert_eq!(s.loops.len(), 2);
        assert_eq!(s.loops[0].var, "r");
        // Outer runs inner to completion each trip: >= 10 * 20 cycles.
        assert!(s.total_cycles >= 200, "{}", s.total_cycles);
    }

    #[test]
    fn unrolling_divides_trip_count() {
        let mut k = k_pipelined(1000);
        if let Stmt::For { unroll, .. } = &mut k.body[0] {
            *unroll = 4;
        }
        let s = schedule(&k);
        assert!(s.total_cycles < 400, "{}", s.total_cycles);
    }

    #[test]
    fn loopless_kernel_has_min_one_cycle() {
        let k = KernelBuilder::new("tiny")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))])
            .build()
            .unwrap();
        let s = schedule(&k);
        assert!(s.total_cycles >= 1);
        assert_eq!(s.top_ii(), 1);
    }
}
