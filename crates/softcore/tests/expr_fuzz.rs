//! Expression-tree fuzzing across backends: random well-typed expression
//! DAGs over two stream variables must evaluate identically through the
//! `kir` interpreter and the compiled softcore — a much wider net than the
//! structured kernels in `equivalence.rs`.

use kir::{Expr, KernelBuilder, Scalar, Stmt};
use proptest::prelude::*;

/// Gene-driven expression construction: a compact byte program that always
/// yields a valid integer expression over variables `x` and `y`.
fn expr_from_genes(genes: &[u8], width: u32) -> Expr {
    let ty = Scalar::Int {
        width,
        signed: genes.first().copied().unwrap_or(0) % 2 == 1,
    };
    let mut stack: Vec<Expr> = vec![Expr::var("x"), Expr::var("y")];
    for chunk in genes.chunks(2) {
        let op = chunk[0];
        let aux = *chunk.get(1).unwrap_or(&1);
        let a = stack.pop().unwrap_or_else(|| Expr::var("x"));
        let b = stack.pop().unwrap_or_else(|| Expr::var("y"));
        let node = match op % 16 {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            3 => a.div(b),
            4 => a.rem(b),
            5 => a.and(b),
            6 => a.or(b),
            7 => a.xor(b),
            8 => a.shl(Expr::cint((aux as u32 % width) as i64)),
            9 => a.shr(Expr::cint((aux as u32 % width) as i64)),
            10 => a.min(b),
            11 => a.max(b),
            12 => a.clone().lt(b.clone()).select(a, b),
            13 => a.eq(b).cast(ty),
            14 => a.neg(),
            _ => a.abs(),
        };
        // Re-narrow so widths stay bounded through the tree.
        stack.push(node.cast(ty));
        // Keep a live operand pool.
        stack.push(Expr::cint_ty((aux as i128) % (1 << width.min(16)), ty));
    }
    stack.pop().unwrap_or_else(|| Expr::var("x")).cast(ty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_expression_trees_match_across_backends(
        width in 4u32..=32,
        genes in proptest::collection::vec(any::<u8>(), 2..24),
        words in proptest::collection::vec(any::<u32>(), 2..8),
    ) {
        let n = (words.len() / 2) as i64;
        let ty = Scalar::Int { width, signed: genes[0] % 2 == 1 };
        let e = expr_from_genes(&genes, width);
        let kernel = KernelBuilder::new("fuzz")
            .input("in", ty)
            .output("out", ty)
            .local("x", ty)
            .local("y", ty)
            .body([Stmt::for_loop(
                "i",
                0..n,
                [
                    Stmt::read("x", "in"),
                    Stmt::read("y", "in"),
                    Stmt::write("out", e.clone()),
                ],
            )])
            .build()
            .expect("gene expressions are always well-typed");

        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        let input: Vec<u32> = words.iter().map(|w| w & mask).collect();
        let golden = kir::interp::run_words(&kernel, &[("in", input.clone())]).expect("interp");
        let binary = softcore::compile_kernel(&kernel).expect("compiles");
        let out = softcore::execute(&binary, &[input], 2_000_000_000).expect("softcore");
        prop_assert_eq!(&out.outputs[0], &golden["out"], "expr {:?}", e);
    }
}
