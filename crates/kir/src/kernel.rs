//! Kernel definitions and the builder used to construct them.

use serde::{Deserialize, Serialize};

use crate::check::{validate, CheckError};
use crate::stmt::Stmt;
use crate::types::Scalar;

/// A stream port declaration: one `hls::stream<T>&` argument of the operator
/// function (paper Fig. 2(a)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortDecl {
    /// Port name, e.g. `Input_1`.
    pub name: String,
    /// Element type carried by the stream.
    pub elem: Scalar,
}

/// A scalar local variable declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type; assignments coerce to it.
    pub ty: Scalar,
}

/// A statically sized local array, synthesized to BRAM on the FPGA and to
/// data memory on the softcore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Element type.
    pub elem: Scalar,
    /// Number of elements (compile-time constant; no allocation, Sec. 3.4).
    pub len: u64,
    /// Optional initializer (e.g. weight ROMs); raw bit patterns per element.
    pub init: Option<Vec<u128>>,
}

/// A dataflow operator body: the IR stand-in for one C operator source file.
///
/// Construct with [`KernelBuilder`], which validates the operator discipline
/// on `build`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Operator name (the C function name).
    pub name: String,
    /// Input stream ports, in argument order.
    pub inputs: Vec<PortDecl>,
    /// Output stream ports, in argument order.
    pub outputs: Vec<PortDecl>,
    /// Scalar locals.
    pub locals: Vec<VarDecl>,
    /// Local arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Statement list executed once per kernel invocation.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Looks up an input port by name.
    pub fn input(&self, name: &str) -> Option<&PortDecl> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output(&self, name: &str) -> Option<&PortDecl> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Looks up a local variable by name.
    pub fn local(&self, name: &str) -> Option<&VarDecl> {
        self.locals.iter().find(|v| v.name == name)
    }

    /// Looks up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Total bits of array storage (the BRAM demand of the operator).
    pub fn array_bits(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.len * u64::from(a.elem.width()))
            .sum()
    }

    /// Total number of operation nodes in the body, weighted by trip counts —
    /// a static estimate of dynamic work used by the cost models.
    pub fn dynamic_ops(&self) -> u64 {
        fn stmt_ops(s: &Stmt) -> u64 {
            match s {
                Stmt::Assign { value, .. } | Stmt::Write { value, .. } => {
                    1 + value.op_count() as u64
                }
                Stmt::ArraySet { index, value, .. } => {
                    2 + index.op_count() as u64 + value.op_count() as u64
                }
                Stmt::Read { .. } => 1,
                Stmt::For { body, .. } => {
                    let inner: u64 = body.iter().map(stmt_ops).sum();
                    let trips = s.trip_count().unwrap_or(1);
                    // +1 per iteration for the loop counter increment/test.
                    trips.saturating_mul(inner + 1)
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    // Both sides of a branch exist in hardware; count the
                    // heavier side for a dynamic estimate.
                    let t: u64 = then_body.iter().map(stmt_ops).sum();
                    let e: u64 = else_body.iter().map(stmt_ops).sum();
                    1 + cond.op_count() as u64 + t.max(e)
                }
            }
        }
        self.body.iter().map(stmt_ops).sum()
    }

    /// Static count of expression/statement nodes (a code-size proxy).
    pub fn static_size(&self) -> u64 {
        let mut n = 0u64;
        for s in &self.body {
            s.visit(&mut |_| n += 1);
            s.visit_exprs(&mut |_| n += 1);
        }
        n
    }
}

/// Builder for [`Kernel`]; terminal [`build`](KernelBuilder::build) validates
/// the operator discipline.
///
/// # Examples
///
/// ```
/// use kir::{Expr, KernelBuilder, Scalar, Stmt};
///
/// let k = KernelBuilder::new("passthrough")
///     .input("in", Scalar::uint(32))
///     .output("out", Scalar::uint(32))
///     .local("x", Scalar::uint(32))
///     .body([Stmt::for_loop("i", 0..8, [
///         Stmt::read("x", "in"),
///         Stmt::write("out", Expr::var("x")),
///     ])])
///     .build()?;
/// assert_eq!(k.name, "passthrough");
/// # Ok::<(), kir::CheckError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct KernelBuilder {
    name: String,
    inputs: Vec<PortDecl>,
    outputs: Vec<PortDecl>,
    locals: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Stmt>,
}

impl KernelBuilder {
    /// Starts a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declares an input stream port.
    pub fn input(mut self, name: impl Into<String>, elem: Scalar) -> Self {
        self.inputs.push(PortDecl {
            name: name.into(),
            elem,
        });
        self
    }

    /// Declares an output stream port.
    pub fn output(mut self, name: impl Into<String>, elem: Scalar) -> Self {
        self.outputs.push(PortDecl {
            name: name.into(),
            elem,
        });
        self
    }

    /// Declares a scalar local.
    pub fn local(mut self, name: impl Into<String>, ty: Scalar) -> Self {
        self.locals.push(VarDecl {
            name: name.into(),
            ty,
        });
        self
    }

    /// Declares an uninitialized local array of `len` elements.
    pub fn array(mut self, name: impl Into<String>, elem: Scalar, len: u64) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem,
            len,
            init: None,
        });
        self
    }

    /// Declares a local array initialized with raw element bit patterns
    /// (a weight/coefficient ROM).
    pub fn array_init(
        mut self,
        name: impl Into<String>,
        elem: Scalar,
        init: impl Into<Vec<u128>>,
    ) -> Self {
        let init = init.into();
        self.arrays.push(ArrayDecl {
            name: name.into(),
            elem,
            len: init.len() as u64,
            init: Some(init),
        });
        self
    }

    /// Sets the kernel body.
    pub fn body(mut self, body: impl IntoIterator<Item = Stmt>) -> Self {
        self.body = body.into_iter().collect();
        self
    }

    /// Finishes the kernel, validating the operator discipline (Sec. 3.4).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckError`] describing the first discipline violation:
    /// undeclared names, duplicate declarations, type errors, illegal widths,
    /// out-of-range constant indices, or stream misuse.
    pub fn build(self) -> Result<Kernel, CheckError> {
        let kernel = Kernel {
            name: self.name,
            inputs: self.inputs,
            outputs: self.outputs,
            locals: self.locals,
            arrays: self.arrays,
            body: self.body,
        };
        validate(&kernel)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn small_kernel() -> Kernel {
        KernelBuilder::new("k")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .array("buf", Scalar::uint(8), 16)
            .body([Stmt::for_loop(
                "i",
                0..4,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn lookups() {
        let k = small_kernel();
        assert!(k.input("in").is_some());
        assert!(k.output("out").is_some());
        assert!(k.local("x").is_some());
        assert!(k.array("buf").is_some());
        assert!(k.input("missing").is_none());
    }

    #[test]
    fn array_bits_accounts_width() {
        let k = small_kernel();
        assert_eq!(k.array_bits(), 16 * 8);
    }

    #[test]
    fn dynamic_ops_scale_with_trip_count() {
        let k = small_kernel();
        // 4 iterations of (read=1 + write=1 + loop overhead=1)
        assert_eq!(k.dynamic_ops(), 12);
    }

    #[test]
    fn clone_preserves_equality() {
        let k = small_kernel();
        assert_eq!(k.clone(), k);
    }
}
