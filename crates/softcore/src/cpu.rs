//! The PicoRV32-class instruction-set simulator.

use aplib::{DynFixed, DynInt};
use kir::ops::{eval_bin, eval_un};
use kir::types::{Scalar, Value};

use crate::block::BlockCache;
use crate::firmware::{self, cycles, Intrinsic};
use crate::isa::Instr;

/// Stream-port backend: the leaf-interface FIFOs the core's memory-mapped
/// ports talk to.
pub trait StreamIo {
    /// Pops one word from read port `port`; `None` stalls the core.
    fn read(&mut self, port: u32) -> Option<u32>;
    /// Pushes one word to write port `port`; `false` stalls the core.
    fn write(&mut self, port: u32, word: u32) -> bool;
}

/// Result of one [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Instruction retired.
    Ok,
    /// Blocked on a stream port; the cycle was spent stalling.
    Stall,
    /// `ebreak` reached: the operator invocation completed.
    Halt,
    /// Illegal instruction or memory access; carries the faulting pc.
    #[allow(missing_docs)]
    Trap { pc: u32 },
}

/// The softcore: RV32IM, unified little-endian memory, blocking stream
/// ports, and a PicoRV32-calibrated cycle counter.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers; `x0` reads as zero.
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    pub(crate) mem: Vec<u8>,
    pub(crate) intrinsics: Vec<Intrinsic>,
    /// Cycles elapsed (including stalls).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Pre-decoded basic blocks for [`Cpu::run_ahead`]; invalidated by any
    /// write into decoded bytes (`store_n`, intrinsic slot writes, loader).
    pub(crate) icache: BlockCache,
}

impl Cpu {
    /// Creates a core with `mem_bytes` of unified memory and an intrinsic
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` exceeds the page's 192 KB BRAM budget.
    pub fn new(mem_bytes: u32, intrinsics: Vec<Intrinsic>) -> Cpu {
        assert!(
            mem_bytes <= firmware::MAX_PAGE_MEMORY,
            "page memory capped at {} bytes",
            firmware::MAX_PAGE_MEMORY
        );
        Cpu {
            regs: [0; 32],
            pc: 0,
            mem: vec![0; mem_bytes as usize],
            intrinsics,
            cycles: 0,
            instructions: 0,
            icache: BlockCache::default(),
        }
    }

    /// Loads bytes at an address (the loader writing a packed binary).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside memory.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        // The loader rewriting memory (initial load, runtime hot swap)
        // invalidates any decoded blocks covering the range.
        self.icache.invalidate(addr, bytes.len() as u32);
        let a = addr as usize;
        self.mem[a..a + bytes.len()].copy_from_slice(bytes);
    }

    /// The unified memory (diagnostics / tests).
    pub fn memory(&self) -> &[u8] {
        &self.mem
    }

    /// Reads a 32-bit word from memory (diagnostics / tests).
    pub fn peek_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap())
    }

    fn reg(&self, r: u32) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Register read for the micro-op dispatch loop (unpacked `u8` index,
    /// decode-validated `< 32`). Masking keeps the index in range without
    /// a bounds check, and slot 0 reads as zero because [`Cpu::wr`] (and
    /// every other register write) refuses to write it.
    #[inline(always)]
    pub(crate) fn rr(&self, r: u8) -> u32 {
        self.regs[(r & 31) as usize]
    }

    /// Register write for the micro-op dispatch loop.
    #[inline(always)]
    pub(crate) fn wr(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[(r & 31) as usize] = v;
        }
    }

    fn set_reg(&mut self, r: u32, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    #[inline]
    pub(crate) fn mem_ok(&self, addr: u32, len: u32) -> bool {
        (addr as usize)
            .checked_add(len as usize)
            .map(|end| end <= self.mem.len())
            .unwrap_or(false)
    }

    #[inline]
    pub(crate) fn load_n(&self, addr: u32, len: u32) -> u32 {
        let a = addr as usize;
        match len {
            1 => self.mem[a] as u32,
            2 => u16::from_le_bytes(self.mem[a..a + 2].try_into().unwrap()) as u32,
            _ => u32::from_le_bytes(self.mem[a..a + 4].try_into().unwrap()),
        }
    }

    #[inline]
    pub(crate) fn store_n(&mut self, addr: u32, len: u32, v: u32) {
        // Every architectural memory write funnels through here (executed
        // stores and intrinsic slot writes), so this is the one place the
        // block cache watches for self-modifying code. The common case —
        // data living above the decoded span — is a single compare.
        self.icache.invalidate(addr, len);
        let a = addr as usize;
        match len {
            1 => self.mem[a] = v as u8,
            2 => self.mem[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()),
            _ => self.mem[a..a + 4].copy_from_slice(&v.to_le_bytes()),
        }
    }

    fn read_slot_value(&self, addr: u32, shape: Scalar) -> Value {
        if shape.width() <= 32 {
            let w = self.load_n(addr, 4);
            // Narrow slots hold the extended 32-bit representation; masking
            // recovers the raw bits.
            match shape {
                Scalar::Int { width, signed } => {
                    Value::Int(DynInt::from_raw(width, signed, w as u128))
                }
                Scalar::Fixed {
                    width,
                    int_bits,
                    signed,
                } => Value::Fixed(DynFixed::from_raw(width, int_bits, signed, w as u128)),
            }
        } else {
            let mut raw = 0u128;
            for i in 0..4 {
                raw |= (self.load_n(addr + 4 * i, 4) as u128) << (32 * i);
            }
            match shape {
                Scalar::Int { width, signed } => Value::Int(DynInt::from_raw(width, signed, raw)),
                Scalar::Fixed {
                    width,
                    int_bits,
                    signed,
                } => Value::Fixed(DynFixed::from_raw(width, int_bits, signed, raw)),
            }
        }
    }

    fn write_slot_value(&mut self, addr: u32, v: &Value) {
        let shape = v.scalar();
        if shape.width() <= 32 {
            // Extended representation for narrow values.
            let word = if shape.is_signed() {
                (aplib::sign_extend(v.raw(), shape.width()) as i32) as u32
            } else {
                v.raw() as u32
            };
            self.store_n(addr, 4, word);
        } else {
            let raw = v.raw();
            for i in 0..4 {
                self.store_n(addr + 4 * i, 4, (raw >> (32 * i)) as u32);
            }
        }
    }

    pub(crate) fn ecall(&mut self) -> Result<(), ()> {
        let idx = self.reg(crate::isa::reg::A7) as usize;
        let Some(intr) = self.intrinsics.get(idx).copied() else {
            return Err(());
        };
        let a0 = self.reg(crate::isa::reg::A0);
        let a1 = self.reg(crate::isa::reg::A1);
        let a2 = self.reg(crate::isa::reg::A2);
        let a3 = self.reg(crate::isa::reg::A3);
        match intr {
            Intrinsic::Bin { op, lhs, rhs } => {
                let l = self.read_slot_value(a0, lhs);
                let r = self.read_slot_value(a1, rhs);
                let out = eval_bin(op, l, r);
                self.write_slot_value(a2, &out);
            }
            Intrinsic::Un { op, arg } => {
                let v = self.read_slot_value(a0, arg);
                let out = eval_un(op, v);
                self.write_slot_value(a1, &out);
            }
            Intrinsic::Cast { from, to } => {
                let v = self.read_slot_value(a0, from);
                let out = v.coerce(to);
                self.write_slot_value(a1, &out);
            }
            Intrinsic::Select { cond, t, e } => {
                let c = self.read_slot_value(a0, cond);
                let tv = self.read_slot_value(a1, t);
                let ev = self.read_slot_value(a2, e);
                let common = kir::ops::result_type(kir::expr::BinOp::Max, t, e);
                let out = if c.is_zero() {
                    ev.coerce(common)
                } else {
                    tv.coerce(common)
                };
                self.write_slot_value(a3, &out);
            }
            Intrinsic::BitRange { arg, hi, lo } => {
                let v = self.read_slot_value(a0, arg);
                let as_int = DynInt::from_raw(arg.width(), false, v.raw());
                self.write_slot_value(a1, &Value::Int(as_int.bit_range(hi, lo)));
            }
        }
        Ok(())
    }

    /// Executes one instruction (or spends one stall cycle).
    pub fn step(&mut self, io: &mut dyn StreamIo) -> StepResult {
        use Instr::*;
        if !self.mem_ok(self.pc, 4) {
            return StepResult::Trap { pc: self.pc };
        }
        let word = self.load_n(self.pc, 4);
        let Some(ins) = Instr::decode(word) else {
            return StepResult::Trap { pc: self.pc };
        };

        let mut next_pc = self.pc.wrapping_add(4);
        let mut cost = cycles::ALU;
        match ins {
            Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Addi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1).wrapping_add(imm as u32)),
            Andi { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) & imm as u32),
            Ori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) | imm as u32),
            Xori { rd, rs1, imm } => self.set_reg(rd, self.reg(rs1) ^ imm as u32),
            Slli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) << (shamt & 31)),
            Srli { rd, rs1, shamt } => self.set_reg(rd, self.reg(rs1) >> (shamt & 31)),
            Srai { rd, rs1, shamt } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (shamt & 31)) as u32)
            }
            Add { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_add(self.reg(rs2))),
            Sub { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1).wrapping_sub(self.reg(rs2))),
            Sll { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) << (self.reg(rs2) & 31)),
            Srl { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) >> (self.reg(rs2) & 31)),
            Sra { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) >> (self.reg(rs2) & 31)) as u32)
            }
            Slt { rd, rs1, rs2 } => {
                self.set_reg(rd, ((self.reg(rs1) as i32) < (self.reg(rs2) as i32)) as u32)
            }
            Sltu { rd, rs1, rs2 } => self.set_reg(rd, (self.reg(rs1) < self.reg(rs2)) as u32),
            And { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) & self.reg(rs2)),
            Or { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) | self.reg(rs2)),
            Xor { rd, rs1, rs2 } => self.set_reg(rd, self.reg(rs1) ^ self.reg(rs2)),
            Mul { rd, rs1, rs2 } => {
                cost = cycles::MUL;
                self.set_reg(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
            }
            Div { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let q = if b == 0 { -1 } else { a.wrapping_div(b) };
                self.set_reg(rd, q as u32);
            }
            Divu { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let q = self.reg(rs1).checked_div(self.reg(rs2)).unwrap_or(u32::MAX);
                self.set_reg(rd, q);
            }
            Rem { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let a = self.reg(rs1) as i32;
                let b = self.reg(rs2) as i32;
                let r = if b == 0 { a } else { a.wrapping_rem(b) };
                self.set_reg(rd, r as u32);
            }
            Remu { rd, rs1, rs2 } => {
                cost = cycles::DIV;
                let b = self.reg(rs2);
                let r = if b == 0 {
                    self.reg(rs1)
                } else {
                    self.reg(rs1) % b
                };
                self.set_reg(rd, r);
            }
            Lw { rd, rs1, imm }
            | Lh { rd, rs1, imm }
            | Lhu { rd, rs1, imm }
            | Lb { rd, rs1, imm }
            | Lbu { rd, rs1, imm } => {
                cost = cycles::LOAD;
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                if (firmware::STREAM_READ_BASE..firmware::STREAM_WRITE_BASE).contains(&addr) {
                    let port = (addr - firmware::STREAM_READ_BASE) / firmware::PORT_STRIDE;
                    match io.read(port) {
                        Some(w) => self.set_reg(rd, w),
                        None => {
                            self.cycles += cycles::STALL;
                            return StepResult::Stall;
                        }
                    }
                } else {
                    let len = match ins {
                        Lw { .. } => 4,
                        Lh { .. } | Lhu { .. } => 2,
                        _ => 1,
                    };
                    if !self.mem_ok(addr, len) {
                        return StepResult::Trap { pc: self.pc };
                    }
                    let raw = self.load_n(addr, len);
                    let v = match ins {
                        Lh { .. } => (raw as u16 as i16 as i32) as u32,
                        Lb { .. } => (raw as u8 as i8 as i32) as u32,
                        _ => raw,
                    };
                    self.set_reg(rd, v);
                }
            }
            Sw { rs1, rs2, imm } | Sh { rs1, rs2, imm } | Sb { rs1, rs2, imm } => {
                cost = cycles::STORE;
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                if addr >= firmware::STREAM_WRITE_BASE {
                    let port = (addr - firmware::STREAM_WRITE_BASE) / firmware::PORT_STRIDE;
                    if !io.write(port, self.reg(rs2)) {
                        self.cycles += cycles::STALL;
                        return StepResult::Stall;
                    }
                } else {
                    let len = match ins {
                        Sw { .. } => 4,
                        Sh { .. } => 2,
                        _ => 1,
                    };
                    if !self.mem_ok(addr, len) {
                        return StepResult::Trap { pc: self.pc };
                    }
                    self.store_n(addr, len, self.reg(rs2));
                }
            }
            Beq { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if self.reg(rs1) == self.reg(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Bne { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if self.reg(rs1) != self.reg(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Blt { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if (self.reg(rs1) as i32) < (self.reg(rs2) as i32) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Bge { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if (self.reg(rs1) as i32) >= (self.reg(rs2) as i32) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Bltu { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if self.reg(rs1) < self.reg(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Bgeu { rs1, rs2, imm } => {
                cost = cycles::BRANCH;
                if self.reg(rs1) >= self.reg(rs2) {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            Jal { rd, imm } => {
                cost = cycles::BRANCH;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(imm as u32);
            }
            Jalr { rd, rs1, imm } => {
                cost = cycles::BRANCH;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.reg(rs1).wrapping_add(imm as u32) & !1;
            }
            Ecall => {
                cost = cycles::INTRINSIC;
                if self.ecall().is_err() {
                    return StepResult::Trap { pc: self.pc };
                }
            }
            Ebreak => {
                self.cycles += cycles::ALU;
                self.instructions += 1;
                return StepResult::Halt;
            }
        }

        self.pc = next_pc;
        self.cycles += cost;
        self.instructions += 1;
        StepResult::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{load_imm, reg};

    struct NoIo;
    impl StreamIo for NoIo {
        fn read(&mut self, _port: u32) -> Option<u32> {
            None
        }
        fn write(&mut self, _port: u32, _word: u32) -> bool {
            false
        }
    }

    fn program(instrs: &[Instr]) -> Cpu {
        let mut cpu = Cpu::new(4096, vec![]);
        let bytes: Vec<u8> = instrs
            .iter()
            .flat_map(|i| i.encode().to_le_bytes())
            .collect();
        cpu.load(0, &bytes);
        cpu
    }

    fn run(cpu: &mut Cpu, max: usize) -> StepResult {
        let mut io = NoIo;
        for _ in 0..max {
            match cpu.step(&mut io) {
                StepResult::Ok => continue,
                other => return other,
            }
        }
        panic!("program did not halt in {max} steps");
    }

    #[test]
    fn arithmetic_program() {
        // t0 = 7; t1 = 5; t2 = t0 * t1 - 3; halt.
        let mut code = load_imm(reg::T0, 7);
        code.extend(load_imm(reg::T1, 5));
        code.push(Instr::Mul {
            rd: reg::T2,
            rs1: reg::T0,
            rs2: reg::T1,
        });
        code.push(Instr::Addi {
            rd: reg::T2,
            rs1: reg::T2,
            imm: -3,
        });
        code.push(Instr::Ebreak);
        let mut cpu = program(&code);
        assert_eq!(run(&mut cpu, 100), StepResult::Halt);
        assert_eq!(cpu.regs[reg::T2 as usize], 32);
        assert!(cpu.cycles > cpu.instructions); // multi-cycle core
    }

    #[test]
    fn division_edge_cases_follow_riscv() {
        let mut code = load_imm(reg::T0, 10);
        code.extend(load_imm(reg::T1, 0));
        code.push(Instr::Div {
            rd: reg::T2,
            rs1: reg::T0,
            rs2: reg::T1,
        });
        code.push(Instr::Ebreak);
        let mut cpu = program(&code);
        run(&mut cpu, 100);
        assert_eq!(cpu.regs[reg::T2 as usize], u32::MAX); // div by zero = -1
    }

    #[test]
    fn loop_sums_memory() {
        // Sum mem[0x100..0x110] word-wise into t2.
        let mut code = Vec::new();
        code.extend(load_imm(reg::T0, 0x100)); // ptr
        code.extend(load_imm(reg::T1, 0x110)); // end
        code.extend(load_imm(reg::T2, 0)); // acc
        let loop_start = code.len() as i32 * 4;
        code.push(Instr::Lw {
            rd: reg::A0,
            rs1: reg::T0,
            imm: 0,
        });
        code.push(Instr::Add {
            rd: reg::T2,
            rs1: reg::T2,
            rs2: reg::A0,
        });
        code.push(Instr::Addi {
            rd: reg::T0,
            rs1: reg::T0,
            imm: 4,
        });
        let here = code.len() as i32 * 4;
        code.push(Instr::Blt {
            rs1: reg::T0,
            rs2: reg::T1,
            imm: loop_start - here,
        });
        code.push(Instr::Ebreak);
        let mut cpu = program(&code);
        for (i, v) in [10u32, 20, 30, 40].iter().enumerate() {
            cpu.load(0x100 + 4 * i as u32, &v.to_le_bytes());
        }
        run(&mut cpu, 1000);
        assert_eq!(cpu.regs[reg::T2 as usize], 100);
    }

    #[test]
    fn stream_read_stalls_until_data() {
        struct OneShot(Option<u32>);
        impl StreamIo for OneShot {
            fn read(&mut self, _p: u32) -> Option<u32> {
                self.0.take()
            }
            fn write(&mut self, _p: u32, _w: u32) -> bool {
                true
            }
        }
        let mut code = load_imm(reg::T1, firmware::STREAM_READ_BASE as i32);
        code.push(Instr::Lw {
            rd: reg::T0,
            rs1: reg::T1,
            imm: 0,
        });
        code.push(Instr::Ebreak);
        let mut cpu = program(&code);
        let mut io = OneShot(None);
        // li takes 2 steps; then the load stalls while io is empty.
        assert_eq!(cpu.step(&mut io), StepResult::Ok);
        assert_eq!(cpu.step(&mut io), StepResult::Ok);
        assert_eq!(cpu.step(&mut io), StepResult::Stall);
        assert_eq!(cpu.step(&mut io), StepResult::Stall);
        io.0 = Some(77);
        assert_eq!(cpu.step(&mut io), StepResult::Ok);
        assert_eq!(cpu.regs[reg::T0 as usize], 77);
        assert_eq!(run(&mut cpu, 4), StepResult::Halt);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut cpu = Cpu::new(64, vec![]);
        cpu.load(0, &0xffff_ffffu32.to_le_bytes());
        let mut io = NoIo;
        assert_eq!(cpu.step(&mut io), StepResult::Trap { pc: 0 });
    }

    #[test]
    fn out_of_range_memory_traps() {
        let mut code = load_imm(reg::T0, 0x0090_0000); // beyond memory, below MMIO
        code.push(Instr::Lw {
            rd: reg::T1,
            rs1: reg::T0,
            imm: 0,
        });
        let mut cpu = program(&code);
        let mut io = NoIo;
        assert_eq!(cpu.step(&mut io), StepResult::Ok);
        assert_eq!(cpu.step(&mut io), StepResult::Ok);
        assert!(matches!(cpu.step(&mut io), StepResult::Trap { .. }));
    }

    #[test]
    fn intrinsic_executes_wide_arithmetic() {
        // 64-bit multiply via intrinsic 0.
        let shape = Scalar::uint(64);
        let mut cpu = Cpu::new(
            4096,
            vec![Intrinsic::Bin {
                op: kir::expr::BinOp::Mul,
                lhs: shape,
                rhs: shape,
            }],
        );
        // Operands at 0x200/0x210, result at 0x220.
        let a: u64 = 0x1_0000_0001;
        let b: u64 = 3;
        cpu.load(0x200, &(a as u128).to_le_bytes());
        cpu.load(0x210, &(b as u128).to_le_bytes());
        let mut code = load_imm(reg::A0, 0x200);
        code.extend(load_imm(reg::A1, 0x210));
        code.extend(load_imm(reg::A2, 0x220));
        code.extend(load_imm(reg::A7, 0));
        code.push(Instr::Ecall);
        code.push(Instr::Ebreak);
        let bytes: Vec<u8> = code.iter().flat_map(|i| i.encode().to_le_bytes()).collect();
        cpu.load(0, &bytes);
        let mut io = NoIo;
        loop {
            match cpu.step(&mut io) {
                StepResult::Ok => continue,
                StepResult::Halt => break,
                other => panic!("{other:?}"),
            }
        }
        let lo = cpu.peek_word(0x220) as u64;
        let hi = cpu.peek_word(0x224) as u64;
        assert_eq!((hi << 32) | lo, a.wrapping_mul(b));
    }
}
