//! Threaded Kahn-process-network execution of a dataflow graph.
//!
//! Every operator runs as its own OS thread; every stream link is a bounded
//! `listream` channel with blocking reads (data presence) and blocking
//! writes (backpressure) — a software realization of the paper's compute
//! model (Sec. 3.2) in which "if either the producer or consumer run faster
//! or slower... this doesn't change the functional behavior". The
//! integration tests assert exactly that: threaded outputs are bit-identical
//! to the sequential batch execution.

use kir::interp::{InterpError, KernelIo, Resolved};
use kir::types::Value;
use listream::{StreamReader, StreamWriter};
use std::collections::HashMap;
use std::thread;

use crate::exec::GraphRunError;
use crate::graph::Graph;

/// FIFO depth of every link in the threaded runtime (tokens).
pub const CHANNEL_DEPTH: usize = 256;

struct ChannelIo {
    readers: Vec<Option<StreamReader<Value>>>,
    writers: Vec<Option<StreamWriter<Value>>>,
    in_names: Vec<String>,
}

impl KernelIo for ChannelIo {
    fn read(&mut self, port: usize) -> Result<Value, InterpError> {
        match &self.readers[port] {
            Some(rx) => rx.read().map_err(|_| InterpError::StreamUnderflow {
                port: self.in_names[port].clone(),
            }),
            None => Err(InterpError::StreamUnderflow {
                port: self.in_names[port].clone(),
            }),
        }
    }

    fn write(&mut self, port: usize, value: Value) -> Result<(), InterpError> {
        if let Some(tx) = &self.writers[port] {
            // A vanished consumer means the downstream operator failed; the
            // error that matters is reported by that thread.
            let _ = tx.write(value);
        }
        Ok(())
    }
}

/// Runs the graph with one thread per operator and bounded channels per
/// link, returning the external output streams.
///
/// Functionally identical to [`crate::run_graph`] by the Kahn property, but
/// actually concurrent: pipeline stages overlap on host cores the way they
/// overlap on pages.
///
/// # Errors
///
/// Returns [`GraphRunError`] if inputs are missing/unknown or any operator
/// thread hits a runtime error.
pub fn run_graph_threaded(
    graph: &Graph,
    inputs: &[(&str, Vec<Value>)],
) -> Result<HashMap<String, Vec<Value>>, GraphRunError> {
    for (name, _) in inputs {
        if !graph.ext_inputs.iter().any(|p| p.name == *name) {
            return Err(GraphRunError::NoSuchInput(name.to_string()));
        }
    }
    for p in &graph.ext_inputs {
        if !inputs.iter().any(|(n, _)| *n == p.name) {
            return Err(GraphRunError::MissingInput(p.name.clone()));
        }
    }

    // Channel endpoints per (operator, port index).
    let mut op_readers: Vec<Vec<Option<StreamReader<Value>>>> = graph
        .operators
        .iter()
        .map(|o| (0..o.kernel.inputs.len()).map(|_| None).collect())
        .collect();
    let mut op_writers: Vec<Vec<Option<StreamWriter<Value>>>> = graph
        .operators
        .iter()
        .map(|o| (0..o.kernel.outputs.len()).map(|_| None).collect())
        .collect();

    let in_port_index = |op: crate::graph::OpId, port: &str| {
        graph.operators[op.0]
            .kernel
            .inputs
            .iter()
            .position(|p| p.name == port)
            .expect("validated")
    };
    let out_port_index = |op: crate::graph::OpId, port: &str| {
        graph.operators[op.0]
            .kernel
            .outputs
            .iter()
            .position(|p| p.name == port)
            .expect("validated")
    };

    for e in &graph.edges {
        let (tx, rx) = listream::channel(CHANNEL_DEPTH);
        op_writers[e.from.0 .0][out_port_index(e.from.0, &e.from.1)] = Some(tx);
        op_readers[e.to.0 .0][in_port_index(e.to.0, &e.to.1)] = Some(rx);
    }

    // External inputs: feeder threads; external outputs: collector threads.
    let mut feeders = Vec::new();
    for p in &graph.ext_inputs {
        let (tx, rx) = listream::channel(CHANNEL_DEPTH);
        op_readers[p.op.0][in_port_index(p.op, &p.port)] = Some(rx);
        let stream: Vec<Value> = inputs
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, v)| v.clone())
            .expect("checked above");
        feeders.push(thread::spawn(move || {
            for v in stream {
                if tx.write(v).is_err() {
                    return; // consumer failed; its thread reports the error
                }
            }
        }));
    }
    let mut collectors = Vec::new();
    for p in &graph.ext_outputs {
        let (tx, rx) = listream::channel(CHANNEL_DEPTH);
        op_writers[p.op.0][out_port_index(p.op, &p.port)] = Some(tx);
        let name = p.name.clone();
        collectors.push(thread::spawn(move || {
            (name, rx.iter().collect::<Vec<Value>>())
        }));
    }

    // Operator threads.
    let mut workers = Vec::new();
    for (i, inst) in graph.operators.iter().enumerate() {
        let resolved = Resolved::new(&inst.kernel);
        let mut io = ChannelIo {
            readers: std::mem::take(&mut op_readers[i]),
            writers: std::mem::take(&mut op_writers[i]),
            in_names: inst.kernel.inputs.iter().map(|p| p.name.clone()).collect(),
        };
        let name = inst.name.clone();
        workers.push(thread::spawn(move || {
            resolved
                .run_with_io(&mut io, kir::interp::DEFAULT_OP_BUDGET)
                .map_err(|error| GraphRunError::Operator { op: name, error })
            // `io` drops here, closing the operator's output channels.
        }));
    }

    for f in feeders {
        f.join().expect("feeder threads do not panic");
    }
    let mut first_error = None;
    for w in workers {
        if let Err(e) = w.join().expect("operator threads do not panic") {
            first_error.get_or_insert(e);
        }
    }
    let mut outputs = HashMap::new();
    for c in collectors {
        let (name, stream) = c.join().expect("collector threads do not panic");
        outputs.insert(name, stream);
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(outputs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::target::Target;
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn word_values(n: u32) -> Vec<Value> {
        (0..n)
            .map(|w| Value::Int(aplib::DynInt::from_raw(32, false, w as u128)))
            .collect()
    }

    fn pipeline(n_stages: usize, tokens: i64) -> Graph {
        let stage = |name: &str, addend: i64| {
            KernelBuilder::new(name)
                .input("in", Scalar::uint(32))
                .output("out", Scalar::uint(32))
                .local("x", Scalar::uint(32))
                .body([Stmt::for_loop(
                    "i",
                    0..tokens,
                    [
                        Stmt::read("x", "in"),
                        Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                    ],
                )])
                .build()
                .unwrap()
        };
        let mut b = GraphBuilder::new("p");
        let ids: Vec<_> = (0..n_stages)
            .map(|i| {
                b.add(
                    format!("s{i}"),
                    stage(&format!("s{i}"), i as i64),
                    Target::hw_auto(),
                )
            })
            .collect();
        b.ext_input("Input_1", ids[0], "in");
        for w in ids.windows(2) {
            b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
        }
        b.ext_output("Output_1", ids[n_stages - 1], "out");
        b.build().unwrap()
    }

    #[test]
    fn threaded_matches_batch_execution() {
        let g = pipeline(5, 500);
        let inputs = vec![("Input_1", word_values(500))];
        let (batch, _) = crate::exec::run_graph(&g, &inputs).unwrap();
        let threaded = run_graph_threaded(&g, &inputs).unwrap();
        assert_eq!(batch, threaded);
    }

    #[test]
    fn deep_pipeline_with_small_channels_does_not_deadlock() {
        // More tokens than CHANNEL_DEPTH forces real backpressure.
        let g = pipeline(3, CHANNEL_DEPTH as i64 * 4);
        let inputs = vec![("Input_1", word_values(CHANNEL_DEPTH as u32 * 4))];
        let out = run_graph_threaded(&g, &inputs).unwrap();
        assert_eq!(out["Output_1"].len(), CHANNEL_DEPTH * 4);
    }

    #[test]
    fn operator_failure_is_reported() {
        let g = pipeline(2, 100);
        // Too little input: the first stage underflows.
        let err = run_graph_threaded(&g, &[("Input_1", word_values(10))]).unwrap_err();
        assert!(matches!(err, GraphRunError::Operator { .. }), "{err:?}");
    }

    #[test]
    fn missing_input_is_reported() {
        let g = pipeline(2, 4);
        let err = run_graph_threaded(&g, &[]).unwrap_err();
        assert_eq!(err, GraphRunError::MissingInput("Input_1".into()));
    }
}
