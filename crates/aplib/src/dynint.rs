//! Width-as-value arbitrary-precision integers.
//!
//! [`DynInt`] is the runtime twin of `ap_int<W>` / `ap_uint<W>` used wherever
//! the bit width is data rather than a type parameter: the `kir` interpreter,
//! the HLS datapath sizing model, and the softcore code generator.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::bits::{mask, min_bits_signed, min_bits_unsigned, sign_extend, wrap_to_width};

/// An arbitrary-precision two's-complement integer with a runtime width.
///
/// The value is stored as a raw bit pattern in a `u128`; `signed` selects the
/// interpretation. All arithmetic wraps to `width` bits (`AP_WRAP`), matching
/// the Xilinx `ap_int` defaults the paper's operators assume.
///
/// # Examples
///
/// ```
/// use aplib::DynInt;
///
/// let a = DynInt::from_i128(8, true, 100);
/// let b = DynInt::from_i128(8, true, 100);
/// assert_eq!(a.add(b).to_i128(), -56); // 200 wraps in signed 8-bit
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DynInt {
    width: u32,
    signed: bool,
    raw: u128,
}

impl DynInt {
    /// Creates a value from a signed integer, wrapping it to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`].
    pub fn from_i128(width: u32, signed: bool, value: i128) -> Self {
        DynInt {
            width,
            signed,
            raw: wrap_to_width(value as u128, width),
        }
    }

    /// Creates a value from a raw bit pattern, wrapping it to `width` bits.
    pub fn from_raw(width: u32, signed: bool, raw: u128) -> Self {
        DynInt {
            width,
            signed,
            raw: wrap_to_width(raw, width),
        }
    }

    /// The zero value of the given shape.
    pub fn zero(width: u32, signed: bool) -> Self {
        Self::from_raw(width, signed, 0)
    }

    /// Bit width of the value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Whether the value is interpreted as signed two's complement.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The raw bit pattern, masked to the value's width.
    pub fn raw(&self) -> u128 {
        self.raw
    }

    /// The numeric value as an `i128` (sign- or zero-extended as appropriate).
    ///
    /// # Panics
    ///
    /// Panics if the value is unsigned, 128 bits wide, and has its top bit
    /// set, since such a value does not fit in an `i128`.
    pub fn to_i128(&self) -> i128 {
        if self.signed {
            sign_extend(self.raw, self.width)
        } else {
            assert!(
                self.width < 128 || self.raw >> 127 == 0,
                "unsigned 128-bit value does not fit in i128"
            );
            self.raw as i128
        }
    }

    /// The numeric value as a `u128` if it is non-negative.
    pub fn to_u128(&self) -> Option<u128> {
        if self.signed && sign_extend(self.raw, self.width) < 0 {
            None
        } else {
            Some(self.raw)
        }
    }

    /// Converts to `f64` (used only for reporting; kernels never touch floats).
    pub fn to_f64(&self) -> f64 {
        if self.signed {
            sign_extend(self.raw, self.width) as f64
        } else {
            self.raw as f64
        }
    }

    /// Returns `true` if the value is numerically zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }

    /// Reinterprets the value with a new width and signedness.
    ///
    /// Matches `ap_int` assignment: the source is first extended to infinite
    /// precision according to its own signedness, then wrapped to the target
    /// width (`AP_WRAP`).
    pub fn resize(&self, width: u32, signed: bool) -> Self {
        let extended = if self.signed {
            sign_extend(self.raw, self.width) as u128
        } else {
            self.raw
        };
        DynInt::from_raw(width, signed, extended)
    }

    fn value_i128(&self) -> i128 {
        if self.signed {
            sign_extend(self.raw, self.width)
        } else {
            // Guaranteed to fit unless unsigned 128-bit with top bit set;
            // arithmetic below special-cases that via raw u128 math.
            self.raw as i128
        }
    }

    fn binary_shape(&self, rhs: &DynInt) -> (u32, bool) {
        // C-style usual arithmetic conversions, collapsed to the ap_int rule
        // the HLS model uses: the result of a native binary op keeps the
        // larger width; signedness is signed if either side is signed.
        (self.width.max(rhs.width), self.signed || rhs.signed)
    }

    /// Wrapping addition at the wider of the two operand widths.
    pub fn add(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w).wrapping_add(rhs.extend_raw(w)))
    }

    /// Wrapping subtraction at the wider of the two operand widths.
    pub fn sub(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w).wrapping_sub(rhs.extend_raw(w)))
    }

    /// Wrapping multiplication at the wider of the two operand widths.
    pub fn mul(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w).wrapping_mul(rhs.extend_raw(w)))
    }

    /// Division. Division by zero yields zero (hardware-divider model).
    pub fn div(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        if rhs.raw == 0 {
            return DynInt::zero(w, s);
        }
        if s {
            let q = self.value_i128().wrapping_div(rhs.value_i128());
            DynInt::from_i128(w, s, q)
        } else {
            DynInt::from_raw(w, s, self.raw / rhs.raw)
        }
    }

    /// Remainder. Remainder by zero yields zero (hardware-divider model).
    pub fn rem(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        if rhs.raw == 0 {
            return DynInt::zero(w, s);
        }
        if s {
            let r = self.value_i128().wrapping_rem(rhs.value_i128());
            DynInt::from_i128(w, s, r)
        } else {
            DynInt::from_raw(w, s, self.raw % rhs.raw)
        }
    }

    /// Bitwise AND at the wider of the two operand widths.
    pub fn bitand(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w) & rhs.extend_raw(w))
    }

    /// Bitwise OR at the wider of the two operand widths.
    pub fn bitor(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w) | rhs.extend_raw(w))
    }

    /// Bitwise XOR at the wider of the two operand widths.
    pub fn bitxor(self, rhs: DynInt) -> DynInt {
        let (w, s) = self.binary_shape(&rhs);
        DynInt::from_raw(w, s, self.extend_raw(w) ^ rhs.extend_raw(w))
    }

    /// Bitwise NOT at the value's own width.
    pub fn not(self) -> DynInt {
        DynInt::from_raw(self.width, self.signed, !self.raw)
    }

    /// Arithmetic negation at the value's own width.
    pub fn neg(self) -> DynInt {
        DynInt::from_raw(self.width, self.signed, (!self.raw).wrapping_add(1))
    }

    /// Logical shift left; shifts of `width` or more produce zero.
    pub fn shl(self, amount: u32) -> DynInt {
        if amount >= self.width {
            DynInt::zero(self.width, self.signed)
        } else {
            DynInt::from_raw(self.width, self.signed, self.raw << amount)
        }
    }

    /// Shift right: arithmetic for signed values, logical for unsigned.
    pub fn shr(self, amount: u32) -> DynInt {
        if amount >= self.width {
            let fill = if self.signed && self.top_bit() {
                u128::MAX
            } else {
                0
            };
            return DynInt::from_raw(self.width, self.signed, fill);
        }
        let v = if self.signed {
            (sign_extend(self.raw, self.width) >> amount) as u128
        } else {
            self.raw >> amount
        };
        DynInt::from_raw(self.width, self.signed, v)
    }

    /// Extracts the inclusive bit range `[hi:lo]` as an unsigned value, the
    /// `ap_int` range-select `x(hi, lo)` used throughout the Rosetta kernels.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is outside the value's width.
    pub fn bit_range(&self, hi: u32, lo: u32) -> DynInt {
        assert!(hi >= lo, "bit range [{hi}:{lo}] is reversed");
        assert!(
            hi < self.width,
            "bit {hi} out of range for width {}",
            self.width
        );
        let w = hi - lo + 1;
        DynInt::from_raw(w, false, self.raw >> lo)
    }

    /// Returns bit `index` as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the value's width.
    pub fn bit(&self, index: u32) -> bool {
        assert!(
            index < self.width,
            "bit {index} out of range for width {}",
            self.width
        );
        (self.raw >> index) & 1 == 1
    }

    /// Replaces the inclusive bit range `[hi:lo]` with the low bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is outside the value's width.
    pub fn with_bit_range(&self, hi: u32, lo: u32, value: u128) -> DynInt {
        assert!(hi >= lo, "bit range [{hi}:{lo}] is reversed");
        assert!(
            hi < self.width,
            "bit {hi} out of range for width {}",
            self.width
        );
        let w = hi - lo + 1;
        let field_mask = mask(w) << lo;
        let raw = (self.raw & !field_mask) | ((value & mask(w)) << lo);
        DynInt::from_raw(self.width, self.signed, raw)
    }

    /// Numeric comparison honouring each operand's own signedness.
    pub fn cmp_value(&self, rhs: &DynInt) -> Ordering {
        match (self.signed, rhs.signed) {
            (false, false) => self.raw.cmp(&rhs.raw),
            _ => {
                // At least one side signed: compare as i128. Unsigned 128-bit
                // values with the top bit set compare greater than any i128.
                let l_big = !self.signed && self.width == 128 && self.top_bit();
                let r_big = !rhs.signed && rhs.width == 128 && rhs.top_bit();
                match (l_big, r_big) {
                    (true, true) => self.raw.cmp(&rhs.raw),
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => self.value_i128().cmp(&rhs.value_i128()),
                }
            }
        }
    }

    /// Number of bits the packed softcore representation needs (Sec. 5.2's
    /// "minimum number of bits" memory-efficiency argument).
    pub fn min_bits(&self) -> u32 {
        if self.signed {
            min_bits_signed(sign_extend(self.raw, self.width)).min(self.width)
        } else {
            min_bits_unsigned(self.raw).min(self.width)
        }
    }

    fn top_bit(&self) -> bool {
        (self.raw >> (self.width - 1)) & 1 == 1
    }

    fn extend_raw(&self, to_width: u32) -> u128 {
        if self.signed {
            wrap_to_width(sign_extend(self.raw, self.width) as u128, to_width)
        } else {
            wrap_to_width(self.raw, to_width)
        }
    }
}

impl fmt::Debug for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.signed { "int" } else { "uint" };
        write!(f, "ap_{}<{}>(", kind, self.width)?;
        fmt::Display::fmt(self, f)?;
        write!(f, ")")
    }
}

impl fmt::Display for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signed {
            write!(f, "{}", sign_extend(self.raw, self.width))
        } else {
            write!(f, "{}", self.raw)
        }
    }
}

impl fmt::LowerHex for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.raw, f)
    }
}

impl fmt::Binary for DynInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.raw, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s8(v: i128) -> DynInt {
        DynInt::from_i128(8, true, v)
    }
    fn u8v(v: i128) -> DynInt {
        DynInt::from_i128(8, false, v)
    }

    #[test]
    fn wrapping_add_signed() {
        assert_eq!(s8(127).add(s8(1)).to_i128(), -128);
        assert_eq!(s8(-128).sub(s8(1)).to_i128(), 127);
    }

    #[test]
    fn wrapping_unsigned() {
        assert_eq!(u8v(255).add(u8v(1)).to_i128(), 0);
        assert_eq!(u8v(0).sub(u8v(1)).to_i128(), 255);
    }

    #[test]
    fn mixed_width_ops_take_wider_shape() {
        let a = DynInt::from_i128(4, false, 15);
        let b = DynInt::from_i128(12, false, 100);
        let c = a.add(b);
        assert_eq!(c.width(), 12);
        assert_eq!(c.to_i128(), 115);
    }

    #[test]
    fn mixed_signedness_is_signed() {
        let a = DynInt::from_i128(8, false, 200);
        let b = DynInt::from_i128(8, true, -1);
        let c = a.add(b);
        assert!(c.is_signed());
        assert_eq!(c.to_i128(), -57); // 200 + 255 = 455 wraps to -57 in i8
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(s8(100).div(s8(0)).to_i128(), 0);
        assert_eq!(s8(100).rem(s8(0)).to_i128(), 0);
    }

    #[test]
    fn signed_division_truncates() {
        assert_eq!(s8(-7).div(s8(2)).to_i128(), -3);
        assert_eq!(s8(-7).rem(s8(2)).to_i128(), -1);
    }

    #[test]
    fn shifts() {
        assert_eq!(u8v(0b1011).shl(2).to_i128(), 0b101100);
        assert_eq!(u8v(0b1011).shl(8).to_i128(), 0);
        assert_eq!(s8(-8).shr(1).to_i128(), -4);
        assert_eq!(s8(-8).shr(10).to_i128(), -1);
        assert_eq!(u8v(0x80).shr(3).to_i128(), 0x10);
        assert_eq!(u8v(0x80).shr(10).to_i128(), 0);
    }

    #[test]
    fn bit_ops() {
        assert_eq!(u8v(0b1100).bitand(u8v(0b1010)).to_i128(), 0b1000);
        assert_eq!(u8v(0b1100).bitor(u8v(0b1010)).to_i128(), 0b1110);
        assert_eq!(u8v(0b1100).bitxor(u8v(0b1010)).to_i128(), 0b0110);
        assert_eq!(u8v(0).not().to_i128(), 255);
        assert_eq!(s8(5).neg().to_i128(), -5);
        assert_eq!(s8(-128).neg().to_i128(), -128); // two's complement edge
    }

    #[test]
    fn bit_range_select_and_set() {
        let v = DynInt::from_raw(16, false, 0xabcd);
        assert_eq!(v.bit_range(7, 4).raw(), 0xc);
        assert_eq!(v.bit_range(15, 12).raw(), 0xa);
        assert_eq!(v.bit_range(7, 4).width(), 4);
        assert!(v.bit(15));
        assert!(!v.bit(1));
        let w = v.with_bit_range(7, 4, 0x5);
        assert_eq!(w.raw(), 0xab5d);
    }

    #[test]
    fn resize_sign_extension() {
        let v = s8(-3).resize(16, true);
        assert_eq!(v.to_i128(), -3);
        let u = s8(-3).resize(16, false);
        assert_eq!(u.to_i128(), 0xfffd);
        let narrowed = DynInt::from_i128(16, true, 0x1234).resize(8, true);
        assert_eq!(narrowed.to_i128(), 0x34);
    }

    #[test]
    fn comparisons() {
        assert_eq!(s8(-1).cmp_value(&u8v(1)), Ordering::Less);
        assert_eq!(u8v(200).cmp_value(&s8(-1)), Ordering::Greater);
        assert_eq!(u8v(200).cmp_value(&u8v(100)), Ordering::Greater);
        let big = DynInt::from_raw(128, false, u128::MAX);
        let neg = DynInt::from_i128(64, true, -1);
        assert_eq!(big.cmp_value(&neg), Ordering::Greater);
        assert_eq!(neg.cmp_value(&big), Ordering::Less);
    }

    #[test]
    fn min_bits_packing() {
        assert_eq!(DynInt::from_i128(32, false, 5).min_bits(), 3);
        assert_eq!(DynInt::from_i128(32, true, -1).min_bits(), 1);
        assert_eq!(DynInt::from_i128(32, true, 127).min_bits(), 8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", s8(-3)), "-3");
        assert_eq!(format!("{:?}", u8v(7)), "ap_uint<8>(7)");
        assert_eq!(format!("{:x}", u8v(255)), "ff");
        assert_eq!(format!("{:b}", u8v(5)), "101");
    }

    #[test]
    fn full_width_128() {
        let a = DynInt::from_raw(128, false, u128::MAX);
        let b = a.add(DynInt::from_i128(128, false, 1));
        assert!(b.is_zero());
        assert!(a.to_u128() == Some(u128::MAX));
    }
}
