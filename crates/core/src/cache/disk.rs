//! The persistent on-disk tier: append-only segments plus an index.
//!
//! A cache directory holds three kinds of files:
//!
//! * `seg-<pid>-<n>-<nanos>.pldseg` — append-only **segment** files, one
//!   per writer instance, carrying the actual products. Each record is
//!   `[kind u8][hash u64][cost f64][len u64][sum u64][payload]` where
//!   `payload` is the store codec's product encoding and `sum` its FNV-1a
//!   checksum. A writer only ever appends to its *own* segment, so any
//!   number of concurrent builder processes can write without locks.
//! * `index.pldidx` — the **index** mapping stage keys to (segment,
//!   offset, length, checksum, cost, last-access) records, plus the LRU
//!   logical clock, with a whole-file FNV trailer. It is published
//!   atomically (temp file + rename) and is strictly a cache of the
//!   segment scan: [`DiskCache::open`] loads it when intact, then scans
//!   every segment for records the index misses, so a torn or stale or
//!   missing index can *lose eviction/LRU metadata* but never products.
//! * `compact.lock` — advisory lock taken with `create_new` by
//!   [`DiskCache::compact`]; everything else is lock-free.
//!
//! Every failure mode degrades: a corrupt index is ignored, a corrupt
//! segment record ends that segment's scan, a checksum-failed read is a
//! miss. Nothing in this module panics on bad bytes.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::cache::evict::{eviction_order, EvictCandidate};
use crate::flow::fnv;
use crate::store::{
    decode_product, encode_product, put_f64, put_str, put_u64, Cursor, StageKey, StageKind,
    StageProduct,
};

/// Magic leading every segment file.
const SEG_MAGIC: &[u8; 8] = b"PLDSEG3\0";
/// Magic leading the index file.
const IDX_MAGIC: &[u8; 8] = b"PLDIDX3\0";
/// Index file name within a cache directory.
const INDEX_FILE: &str = "index.pldidx";
/// Advisory compaction lock file name.
const LOCK_FILE: &str = "compact.lock";

/// Distinguishes segments created by the same process in the same nanosecond.
static SEG_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Where one product lives on disk.
#[derive(Debug, Clone, PartialEq)]
struct IndexEntry {
    /// Segment file name (relative to the cache directory).
    seg: String,
    /// Byte offset of the payload within the segment.
    offset: u64,
    /// Payload length in bytes.
    len: u64,
    /// FNV-1a checksum of the payload.
    sum: u64,
    /// Saved virtual seconds on a hit (the recompute cost).
    cost: f64,
    /// Logical access clock at the last fetch (0 = never fetched).
    last_access: u64,
}

/// The persistent tier of a [`super::TieredCache`]. See the [module
/// docs](self) for the on-disk layout and concurrency story.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    entries: HashMap<StageKey, IndexEntry>,
    /// Monotonic LRU clock; persisted in the index so recency survives.
    clock: u64,
    /// This writer's private append segment (created on first append).
    seg_name: String,
    seg: Option<fs::File>,
    seg_len: u64,
    /// Whether the in-memory index has diverged from the published file.
    dirty: bool,
}

impl DiskCache {
    /// Opens (or creates) a cache directory.
    ///
    /// Loads the index if intact (any corruption silently discards it),
    /// then scans every segment file to recover records the index misses
    /// — so products appended by writers that crashed before publishing,
    /// or by writers still running, are all visible. Lock-free.
    ///
    /// # Errors
    ///
    /// Only filesystem errors (directory creation/listing) are reported;
    /// corrupt contents degrade to a cold start.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DiskCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (mut clock, mut entries) = match fs::read(dir.join(INDEX_FILE)) {
            Ok(bytes) => parse_index(&bytes).unwrap_or_default(),
            Err(_) => Default::default(),
        };
        for name in segment_names(&dir)? {
            if let Ok(bytes) = fs::read(dir.join(&name)) {
                scan_segment(&name, &bytes, &mut entries);
            }
        }
        for e in entries.values() {
            clock = clock.max(e.last_access);
        }
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        let seg_name = format!(
            "seg-{}-{}-{}.pldseg",
            std::process::id(),
            SEG_SERIAL.fetch_add(1, Ordering::Relaxed),
            nanos
        );
        Ok(DiskCache {
            dir,
            entries,
            clock,
            seg_name,
            seg: None,
            seg_len: 0,
            dirty: false,
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Number of indexed products.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live payload bytes across all indexed products (excludes record
    /// headers and dead bytes awaiting compaction).
    pub fn live_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.len).sum()
    }

    /// Whether a product is indexed under `key`.
    pub fn contains(&self, key: StageKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Every indexed stage key.
    pub fn keys(&self) -> impl Iterator<Item = StageKey> + '_ {
        self.entries.keys().copied()
    }

    /// Bumps `key`'s LRU stamp without reading it (an L1 hit still counts
    /// as recent use of the persistent copy).
    pub fn touch(&mut self, key: StageKey) {
        if let Some(e) = self.entries.get_mut(&key) {
            self.clock += 1;
            e.last_access = self.clock;
            self.dirty = true;
        }
    }

    /// Reads and verifies a product, bumping its LRU stamp. A checksum or
    /// decode failure (torn write, vanished segment) drops the entry and
    /// returns `None` — a miss, never an error.
    pub fn read(&mut self, key: StageKey) -> Option<StageProduct> {
        match self.read_unstamped(key) {
            Some(p) => {
                self.touch(key);
                Some(p)
            }
            None => {
                if self.entries.remove(&key).is_some() {
                    self.dirty = true;
                }
                None
            }
        }
    }

    /// [`DiskCache::read`] without the LRU stamp or entry drop — the
    /// side-effect-free form snapshots use.
    pub fn read_unstamped(&self, key: StageKey) -> Option<StageProduct> {
        let e = self.entries.get(&key)?;
        let mut f = fs::File::open(self.dir.join(&e.seg)).ok()?;
        f.seek(SeekFrom::Start(e.offset)).ok()?;
        let mut payload = vec![0u8; e.len as usize];
        f.read_exact(&mut payload).ok()?;
        if fnv(&payload) != e.sum {
            return None;
        }
        decode_product(&payload).ok()
    }

    /// Appends a product to this writer's segment and indexes it. The
    /// record (payload + checksum) is durable as soon as this returns;
    /// only the index metadata waits for [`DiskCache::publish`]. Appends
    /// under an already-present key are ignored (keep-first).
    pub fn append(&mut self, key: StageKey, product: &StageProduct, cost: f64) {
        if self.entries.contains_key(&key) {
            return;
        }
        let payload = encode_product(product);
        let sum = fnv(&payload);
        let mut record = Vec::with_capacity(33 + payload.len());
        record.push(key.kind.tag());
        put_u64(&mut record, key.hash);
        put_f64(&mut record, cost);
        put_u64(&mut record, payload.len() as u64);
        put_u64(&mut record, sum);
        let header_len = record.len() as u64;
        record.extend_from_slice(&payload);
        if self.write_record(&record).is_err() {
            // Disk write failed: keep the product out of the index rather
            // than point at bytes that never landed.
            return;
        }
        let offset = self.seg_len + header_len;
        self.seg_len += record.len() as u64;
        self.entries.insert(
            key,
            IndexEntry {
                seg: self.seg_name.clone(),
                offset,
                len: payload.len() as u64,
                sum,
                cost,
                last_access: 0,
            },
        );
        self.dirty = true;
    }

    fn write_record(&mut self, record: &[u8]) -> io::Result<()> {
        if self.seg.is_none() {
            let mut f = fs::File::create(self.dir.join(&self.seg_name))?;
            f.write_all(SEG_MAGIC)?;
            self.seg = Some(f);
            self.seg_len = SEG_MAGIC.len() as u64;
        }
        let f = self.seg.as_mut().expect("segment just created");
        f.write_all(record)?;
        f.flush()
    }

    /// Publishes the index atomically (write to a temp file, rename over
    /// `index.pldidx`). Concurrent publishers race last-writer-wins; a
    /// lost race loses only metadata the next open's segment scan
    /// recovers. No-op when nothing changed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the temp write or rename.
    pub fn publish(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        // Unique per publish, not just per process: two cache instances in
        // one process (threads sharing a dir) must not steal each other's
        // temp file mid-rename.
        let serial = SEG_SERIAL.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{INDEX_FILE}.tmp-{}-{serial}", std::process::id()));
        fs::write(&tmp, self.index_bytes())?;
        fs::rename(&tmp, self.dir.join(INDEX_FILE))?;
        self.dirty = false;
        Ok(())
    }

    /// Evicts lowest saved-vtime-per-byte entries (ties: least recently
    /// used first) until live bytes fit `budget`. Returns the evicted
    /// keys. The freed bytes become dead record space reclaimed by the
    /// next [`DiskCache::compact`]; until then a rescan by a later open
    /// may resurrect them, after which the budget simply re-evicts.
    pub fn enforce_budget(&mut self, budget: u64) -> Vec<StageKey> {
        let mut live = self.live_bytes();
        if live <= budget {
            return Vec::new();
        }
        let candidates: Vec<EvictCandidate> = self
            .entries
            .iter()
            .map(|(key, e)| EvictCandidate {
                key: *key,
                cost_seconds: e.cost,
                bytes: e.len,
                last_access: e.last_access,
            })
            .collect();
        let mut evicted = Vec::new();
        for victim in eviction_order(&candidates) {
            if live <= budget {
                break;
            }
            self.entries.remove(&victim.key);
            live -= victim.bytes;
            evicted.push(victim.key);
        }
        self.dirty = true;
        evicted
    }

    /// Rewrites every indexed product into one fresh segment, publishes
    /// the index, and deletes all other segment files — reclaiming dead
    /// bytes from evictions, supersessions and crashed writers.
    ///
    /// Guarded by the advisory `compact.lock` (`create_new`): returns
    /// `Ok(false)` without touching anything when another process holds
    /// it. Readers stay lock-free; one that loaded its index before a
    /// compaction finds old segments gone and degrades those reads to
    /// misses. Crash-safe: the new segment and index are published via
    /// rename before any old file is deleted, so a crash mid-compaction
    /// leaves at worst extra segments the next open rescans.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the rewrite; the lock is always
    /// released.
    pub fn compact(&mut self) -> io::Result<bool> {
        let lock = self.dir.join(LOCK_FILE);
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(false),
            Err(e) => return Err(e),
        }
        let result = self.compact_locked();
        let _ = fs::remove_file(&lock);
        result.map(|()| true)
    }

    fn compact_locked(&mut self) -> io::Result<()> {
        // Materialize every live product first; unreadable ones drop out.
        let mut keys: Vec<StageKey> = self.entries.keys().copied().collect();
        keys.sort_by_key(|k| (k.kind.tag(), k.hash));
        let mut live: Vec<(StageKey, StageProduct)> = Vec::with_capacity(keys.len());
        for key in keys {
            match self.read_unstamped(key) {
                Some(p) => live.push((key, p)),
                None => {
                    self.entries.remove(&key);
                }
            }
        }
        // Write the replacement segment under a temp name, then rename.
        let new_name = format!("seg-{}-compact-{}.pldseg", std::process::id(), self.clock);
        let tmp = self.dir.join(format!("{new_name}.tmp"));
        let mut out: Vec<u8> = SEG_MAGIC.to_vec();
        for (key, product) in &live {
            let e = &self.entries[key];
            let (cost, sum, last_access) = (e.cost, e.sum, e.last_access);
            let payload = encode_product(product);
            let mut header = Vec::with_capacity(33);
            header.push(key.kind.tag());
            put_u64(&mut header, key.hash);
            put_f64(&mut header, cost);
            put_u64(&mut header, payload.len() as u64);
            put_u64(&mut header, sum);
            let offset = (out.len() + header.len()) as u64;
            out.extend_from_slice(&header);
            out.extend_from_slice(&payload);
            self.entries.insert(
                *key,
                IndexEntry {
                    seg: new_name.clone(),
                    offset,
                    len: payload.len() as u64,
                    sum,
                    cost,
                    last_access,
                },
            );
        }
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, self.dir.join(&new_name))?;
        self.dirty = true;
        self.publish()?;
        // Only now is it safe to drop every other segment — and any index
        // temp file a crashed publisher left behind.
        for name in segment_names(&self.dir)? {
            if name != new_name {
                let _ = fs::remove_file(self.dir.join(&name));
            }
        }
        if let Ok(listing) = fs::read_dir(&self.dir) {
            for entry in listing.flatten() {
                let name = entry.file_name();
                if !name
                    .to_string_lossy()
                    .starts_with(concat!("index.pldidx", ".tmp-"))
                {
                    continue;
                }
                // Only visibly stale temp files: a fresh one may belong to
                // a publisher racing us through its write→rename window.
                let stale = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age.as_secs() > 600);
                if stale {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        // This writer's append segment (if any) was deleted too; start a
        // fresh one for future appends.
        self.seg = None;
        self.seg_len = 0;
        self.seg_name = format!(
            "seg-{}-{}-post-compact.pldseg",
            std::process::id(),
            SEG_SERIAL.fetch_add(1, Ordering::Relaxed)
        );
        Ok(())
    }

    fn index_bytes(&self) -> Vec<u8> {
        let mut out: Vec<u8> = IDX_MAGIC.to_vec();
        put_u64(&mut out, self.clock);
        put_u64(&mut out, self.entries.len() as u64);
        let mut keys: Vec<StageKey> = self.entries.keys().copied().collect();
        keys.sort_by_key(|k| (k.kind.tag(), k.hash));
        for key in keys {
            let e = &self.entries[&key];
            out.push(key.kind.tag());
            put_u64(&mut out, key.hash);
            put_str(&mut out, &e.seg);
            put_u64(&mut out, e.offset);
            put_u64(&mut out, e.len);
            put_u64(&mut out, e.sum);
            put_f64(&mut out, e.cost);
            put_u64(&mut out, e.last_access);
        }
        let sum = fnv(&out);
        put_u64(&mut out, sum);
        out
    }
}

/// Segment file names in the directory, sorted for deterministic scans.
fn segment_names(dir: &Path) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("seg-") && name.ends_with(".pldseg") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Parses an index file; `None` on any corruption (bad magic, short file,
/// checksum mismatch, malformed entry).
fn parse_index(bytes: &[u8]) -> Option<(u64, HashMap<StageKey, IndexEntry>)> {
    if bytes.len() < IDX_MAGIC.len() + 8 || &bytes[..IDX_MAGIC.len()] != IDX_MAGIC {
        return None;
    }
    let body = &bytes[..bytes.len() - 8];
    let mut tail = Cursor {
        buf: bytes,
        pos: bytes.len() - 8,
    };
    if tail.u64().ok()? != fnv(body) {
        return None;
    }
    let mut c = Cursor {
        buf: body,
        pos: IDX_MAGIC.len(),
    };
    let clock = c.u64().ok()?;
    let count = c.u64().ok()?;
    let mut entries = HashMap::new();
    for _ in 0..count {
        let kind = StageKind::from_tag(c.u8().ok()?).ok()?;
        let hash = c.u64().ok()?;
        let entry = IndexEntry {
            seg: c.str().ok()?,
            offset: c.u64().ok()?,
            len: c.u64().ok()?,
            sum: c.u64().ok()?,
            cost: c.f64().ok()?,
            last_access: c.u64().ok()?,
        };
        entries.insert(StageKey { kind, hash }, entry);
    }
    if c.pos != body.len() {
        return None;
    }
    Some((clock, entries))
}

/// Scans one segment's bytes, filing records the index missed. A
/// malformed or truncated record ends the scan (append-only files can
/// only be torn at the tail).
fn scan_segment(name: &str, bytes: &[u8], entries: &mut HashMap<StageKey, IndexEntry>) {
    let mut c = Cursor { buf: bytes, pos: 0 };
    match c.take(SEG_MAGIC.len()) {
        Ok(magic) if magic == SEG_MAGIC => {}
        _ => return,
    }
    while c.pos < bytes.len() {
        let Ok(tag) = c.u8() else { return };
        let Ok(kind) = StageKind::from_tag(tag) else {
            return;
        };
        let Ok(hash) = c.u64() else { return };
        let Ok(cost) = c.f64() else { return };
        let Ok(len) = c.u64() else { return };
        let Ok(sum) = c.u64() else { return };
        let offset = c.pos as u64;
        if c.take(len as usize).is_err() {
            return;
        }
        entries
            .entry(StageKey { kind, hash })
            .or_insert(IndexEntry {
                seg: name.to_string(),
                offset,
                len,
                sum,
                cost,
                last_access: 0,
            });
    }
}
