//! Micro-benchmark: place-and-route effort scales super-linearly with
//! problem size (paper Sec. 2.2), and the abstract shell removes the
//! whole-device context cost (Sec. 4.1).
//!
//! `cargo bench -p pld-bench --bench pnr_scaling`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::{CellKind, Netlist};
use pnr::{place_and_route, PnrOptions};

fn datapath(cells: usize) -> Netlist {
    let mut nl = Netlist::new(format!("dp{cells}"));
    let mut prev = nl.add_cell("in", CellKind::StreamIn { width: 32 });
    for i in 0..cells {
        let kind = match i % 5 {
            0 => CellKind::Adder { width: 32 },
            1 => CellKind::Mult { width: 18 },
            2 => CellKind::Register { width: 32 },
            3 => CellKind::Logic { width: 16 },
            _ => CellKind::Mux { width: 32 },
        };
        let c = nl.add_cell(format!("c{i}"), kind);
        nl.add_net(prev, vec![c], 32);
        prev = c;
    }
    nl
}

fn bench_size_scaling(c: &mut Criterion) {
    let fp = fabric::Floorplan::u50();
    let mut group = c.benchmark_group("pnr_cells");
    group.sample_size(10);
    for cells in [50usize, 100, 200] {
        let nl = datapath(cells);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &nl, |b, nl| {
            b.iter(|| {
                place_and_route(nl, &fp.device, fp.pages[0].rect, &PnrOptions::default())
                    .expect("fits")
            })
        });
    }
    group.finish();
}

fn bench_region_scaling(c: &mut Criterion) {
    let fp = fabric::Floorplan::u50();
    let nl = datapath(100);
    let mut group = c.benchmark_group("pnr_region");
    group.sample_size(10);
    let regions = [
        ("page_110_tiles", fp.pages[0].rect),
        ("quad_440_tiles", fabric::Rect::new(2, 0, 11, 40)),
        ("device_3840_tiles", fabric::Rect::new(2, 0, 48, 80)),
    ];
    for (name, rect) in regions {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rect, |b, &rect| {
            b.iter(|| place_and_route(&nl, &fp.device, rect, &PnrOptions::default()).expect("fits"))
        });
    }
    group.finish();
}

fn bench_abstract_shell(c: &mut Criterion) {
    let fp = fabric::Floorplan::u50();
    let nl = datapath(80);
    let mut group = c.benchmark_group("pnr_abstract_shell");
    group.sample_size(10);
    for (name, shell) in [("with_abstract_shell", true), ("full_context", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                place_and_route(
                    &nl,
                    &fp.device,
                    fp.pages[0].rect,
                    &PnrOptions {
                        abstract_shell: shell,
                        ..Default::default()
                    },
                )
                .expect("fits")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_size_scaling,
    bench_region_scaling,
    bench_abstract_shell
);
criterion_main!(benches);
