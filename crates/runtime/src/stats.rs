//! Serving statistics: counters, occupancy and per-app latency histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A log₂-bucketed latency histogram (microsecond base bucket). Constant
/// memory per app regardless of request volume, like the histograms a
/// serving stack would export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` microseconds.
    buckets: [u64; 32],
    count: u64,
    total_seconds: f64,
    max_seconds: f64,
}

impl LatencyHistogram {
    /// Records one request latency.
    pub fn record(&mut self, seconds: f64) {
        let us = (seconds * 1e6).max(1.0) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(31);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_seconds += seconds;
        self.max_seconds = self.max_seconds.max(seconds);
    }

    /// Number of recorded requests.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in seconds.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// Worst observed latency in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_seconds
    }

    /// The (lower-bound µs, count) of each non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    /// The latency in seconds at quantile `q` (0..=1), estimated at the
    /// geometric midpoint of the bucket the quantile falls in and clamped
    /// to the worst observed sample. Bucket resolution is a factor of two,
    /// which is the usual contract for log-bucketed serving histograms.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)) µs.
                let mid_us = (1u64 << i) as f64 * std::f64::consts::SQRT_2;
                return (mid_us * 1e-6).min(self.max_seconds);
            }
        }
        self.max_seconds
    }

    /// Raw state `(buckets, count, total_seconds, max_seconds)` — for the
    /// snapshot codec only; the fields stay private otherwise.
    pub fn to_parts(&self) -> ([u64; 32], u64, f64, f64) {
        (
            self.buckets,
            self.count,
            self.total_seconds,
            self.max_seconds,
        )
    }

    /// Rebuilds a histogram from [`LatencyHistogram::to_parts`] output.
    pub fn from_parts(
        buckets: [u64; 32],
        count: u64,
        total_seconds: f64,
        max_seconds: f64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            total_seconds,
            max_seconds,
        }
    }
}

/// Latency record of one application under the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct AppLatency {
    /// Application name as submitted.
    pub name: String,
    /// Request-latency histogram.
    pub histogram: LatencyHistogram,
}

/// A snapshot of the runtime's serving statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// Applications admitted onto the fabric (re-admissions count again).
    pub admitted: u64,
    /// Submissions rejected — at the queue bound or as unplaceable.
    pub rejected: u64,
    /// Applications evicted to make room for others.
    pub evicted: u64,
    /// Hot-swap reconfigurations performed.
    pub swaps: u64,
    /// Requests served across all apps.
    pub requests: u64,
    /// Seconds of page downtime charged so far (admissions, re-admissions
    /// and hot-swaps all pay their load-and-link bill here).
    pub cumulative_downtime_seconds: f64,
    /// Requests waiting in the admission queue (snapshot).
    pub queue_depth: usize,
    /// Pages in the floorplan.
    pub pages_total: usize,
    /// Pages currently bound to a resident operator (snapshot).
    pub pages_occupied: usize,
    /// Per-app latency histograms, keyed by app id.
    pub latencies: BTreeMap<u64, AppLatency>,
}

impl RuntimeStats {
    /// Fraction of pages occupied, 0..=1.
    pub fn occupancy(&self) -> f64 {
        if self.pages_total == 0 {
            0.0
        } else {
            self.pages_occupied as f64 / self.pages_total as f64
        }
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pages {}/{} occupied | queue {} | admitted {} rejected {} evicted {} swaps {}",
            self.pages_occupied,
            self.pages_total,
            self.queue_depth,
            self.admitted,
            self.rejected,
            self.evicted,
            self.swaps
        )?;
        writeln!(
            f,
            "requests {} | cumulative downtime {:.3} ms",
            self.requests,
            self.cumulative_downtime_seconds * 1e3
        )?;
        for lat in self.latencies.values() {
            writeln!(
                f,
                "  {:<18} {:>6} reqs  mean {:>9.3?}  max {:>9.3?}",
                lat.name,
                lat.histogram.count(),
                std::time::Duration::from_secs_f64(lat.histogram.mean_seconds()),
                std::time::Duration::from_secs_f64(lat.histogram.max_seconds()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let mut h = LatencyHistogram::default();
        h.record(1e-6); // 1 µs -> bucket 0
        h.record(3e-6); // 3 µs -> bucket 1
        h.record(1e-3); // 1000 µs -> bucket 9
        assert_eq!(h.count(), 3);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(1, 1), (2, 1), (512, 1)]);
        assert!(h.mean_seconds() > 0.0);
        assert!((h.max_seconds() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn sub_microsecond_latencies_clamp_to_first_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.nonzero_buckets(), vec![(1, 2)]);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile(0.99), 0.0);
        for _ in 0..99 {
            h.record(1.5e-6); // bucket 0
        }
        h.record(1e-3); // bucket 9, the single worst sample
        let p50 = h.percentile(0.50);
        assert!(p50 < 3e-6, "p50 {p50} should sit in the first bucket");
        let p99 = h.percentile(0.99);
        assert!(p99 < 3e-6, "p99 {p99} is still the 99th of 100 samples");
        let p100 = h.percentile(1.0);
        assert!(
            (5e-4..=1e-3).contains(&p100),
            "p100 {p100} lands in the worst bucket, clamped to max"
        );
        let (buckets, count, total, max) = h.to_parts();
        assert_eq!(LatencyHistogram::from_parts(buckets, count, total, max), h);
    }

    #[test]
    fn occupancy_is_a_fraction() {
        let stats = RuntimeStats {
            pages_total: 22,
            pages_occupied: 11,
            ..Default::default()
        };
        assert!((stats.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(RuntimeStats::default().occupancy(), 0.0);
    }
}
