//! Operator fission: splitting a multi-phase kernel into a pipeline pair.
//!
//! The dual of fusion. A kernel whose top-level statement list has a point
//! where *all input-port reads are before it and all output-port writes
//! after it* (e.g. "load phase, then compute phase") can be cut there: the
//! head keeps the reads, the tail keeps the writes, and the live state at
//! the cut — locals and arrays referenced on both sides — streams from head
//! to tail over typed state ports. External I/O ordering is unchanged (the
//! head performs the same reads, the tail the same writes), so no engine can
//! deadlock where the original did not; and since every state port's element
//! type equals the declared type of the value it carries, the write→read
//! coercion round-trip is the identity and values are bit-identical.
//!
//! Payoffs: the two halves pipeline across host threads or pages (the
//! bottleneck operator's work is cut roughly in half), and arrays referenced
//! by only one phase land in only one page — StreamBlocks-style splitting of
//! operators too large for one page's BRAM.

use std::collections::BTreeSet;

use kir::{ArrayDecl, CheckError, Expr, Kernel, PortDecl, Stmt, VarDecl};

/// Result of splitting one kernel at its best legal cut.
#[derive(Debug, Clone)]
pub struct FissionPlan {
    /// The head kernel: original inputs plus state outputs.
    pub head: Kernel,
    /// The tail kernel: state inputs plus original outputs.
    pub tail: Kernel,
    /// State ports, in matching order on `head.outputs` / `tail.inputs`.
    pub state_ports: Vec<PortDecl>,
    /// Static work estimate of the head (trip-weighted ops).
    pub head_ops: u64,
    /// Static work estimate of the tail.
    pub tail_ops: u64,
}

/// Splits `kernel` at the legal top-level cut that best balances the two
/// halves' static work. Returns `None` when no legal cut exists, when no
/// state would connect the halves, or when the rewrite fails validation.
pub fn split_kernel(kernel: &Kernel) -> Option<FissionPlan> {
    let input_ports: BTreeSet<&str> = kernel.inputs.iter().map(|p| p.name.as_str()).collect();
    let output_ports: BTreeSet<&str> = kernel.outputs.iter().map(|p| p.name.as_str()).collect();

    let n = kernel.body.len();
    if n < 2 {
        return None;
    }
    // Prefix sums of legality: reads_after[c] — any input read in body[c..];
    // writes_before[c] — any output write in body[..c].
    let mut best: Option<(u64, usize)> = None;
    for cut in 1..n {
        let head = &kernel.body[..cut];
        let tail = &kernel.body[cut..];
        if tail.iter().any(|s| touches_port(s, &input_ports, true)) {
            continue;
        }
        if head.iter().any(|s| touches_port(s, &output_ports, false)) {
            continue;
        }
        let h: u64 = head.iter().map(stmt_ops).sum();
        let t: u64 = tail.iter().map(stmt_ops).sum();
        let worst = h.max(t);
        if best.is_none_or(|(b, _)| worst < b) {
            best = Some((worst, cut));
        }
    }
    let (_, cut) = best?;
    build_plan(kernel, cut).ok()?
}

/// Builds the head/tail pair for a specific cut. `Ok(None)` means the cut is
/// legal but degenerate (no live state to connect the halves).
fn build_plan(kernel: &Kernel, cut: usize) -> Result<Option<FissionPlan>, CheckError> {
    let head_stmts = &kernel.body[..cut];
    let tail_stmts = &kernel.body[cut..];

    let head_names = referenced_names(head_stmts);
    let tail_names = referenced_names(tail_stmts);

    let live_locals: Vec<&VarDecl> = kernel
        .locals
        .iter()
        .filter(|v| head_names.contains(&v.name) && tail_names.contains(&v.name))
        .collect();
    let live_arrays: Vec<&ArrayDecl> = kernel
        .arrays
        .iter()
        .filter(|a| head_names.contains(&a.name) && tail_names.contains(&a.name))
        .collect();
    if live_locals.is_empty() && live_arrays.is_empty() {
        return Ok(None);
    }

    let mut state_ports = Vec::new();
    let mut head_epilogue = Vec::new();
    let mut tail_prologue = Vec::new();
    let mut tail_tmp_locals = Vec::new();
    for v in &live_locals {
        let port = format!("__st_{}", v.name);
        state_ports.push(PortDecl {
            name: port.clone(),
            elem: v.ty,
        });
        head_epilogue.push(Stmt::write(port.clone(), Expr::var(&v.name)));
        tail_prologue.push(Stmt::read(v.name.clone(), port));
    }
    for (k, a) in live_arrays.iter().enumerate() {
        let port = format!("__st_{}", a.name);
        let idx = format!("__st_i{k}");
        let tmp = format!("__st_t{k}");
        state_ports.push(PortDecl {
            name: port.clone(),
            elem: a.elem,
        });
        head_epilogue.push(Stmt::for_loop(
            idx.clone(),
            0..a.len as i64,
            [Stmt::write(
                port.clone(),
                Expr::index(&a.name, Expr::var(idx.clone())),
            )],
        ));
        tail_tmp_locals.push(VarDecl {
            name: tmp.clone(),
            ty: a.elem,
        });
        tail_prologue.push(Stmt::for_loop(
            idx.clone(),
            0..a.len as i64,
            [
                Stmt::read(tmp.clone(), port),
                Stmt::store(&a.name, Expr::var(idx), Expr::var(tmp)),
            ],
        ));
    }

    // Each half keeps only the declarations it references (plus transferred
    // state): that is what shrinks per-page BRAM when phases use disjoint
    // arrays.
    let keep = |names: &BTreeSet<String>| {
        let locals: Vec<VarDecl> = kernel
            .locals
            .iter()
            .filter(|v| names.contains(&v.name))
            .cloned()
            .collect();
        let arrays: Vec<ArrayDecl> = kernel
            .arrays
            .iter()
            .filter(|a| names.contains(&a.name))
            .cloned()
            .collect();
        (locals, arrays)
    };
    let (head_locals, head_arrays) = keep(&head_names);
    let (mut tail_locals, tail_arrays) = keep(&tail_names);
    tail_locals.extend(tail_tmp_locals);

    let mut head_body = head_stmts.to_vec();
    head_body.extend(head_epilogue);
    let mut tail_body = tail_prologue;
    tail_body.extend(tail_stmts.to_vec());

    let head = Kernel {
        name: format!("{}_h", kernel.name),
        inputs: kernel.inputs.clone(),
        outputs: state_ports.clone(),
        locals: head_locals,
        arrays: head_arrays,
        body: head_body,
    };
    let tail = Kernel {
        name: format!("{}_t", kernel.name),
        inputs: state_ports.clone(),
        outputs: kernel.outputs.clone(),
        locals: tail_locals,
        arrays: tail_arrays,
        body: tail_body,
    };
    kir::validate(&head)?;
    kir::validate(&tail)?;
    let head_ops = head.dynamic_ops();
    let tail_ops = tail.dynamic_ops();
    Ok(Some(FissionPlan {
        head,
        tail,
        state_ports,
        head_ops,
        tail_ops,
    }))
}

/// Whether `s` (recursively) reads an input port (`reads = true`) or writes
/// an output port (`reads = false`) from `ports`.
fn touches_port(s: &Stmt, ports: &BTreeSet<&str>, reads: bool) -> bool {
    let mut hit = false;
    s.visit(&mut |s| match s {
        Stmt::Read { port, .. } if reads && ports.contains(port.as_str()) => hit = true,
        Stmt::Write { port, .. } if !reads && ports.contains(port.as_str()) => hit = true,
        _ => {}
    });
    hit
}

/// Every local/array name referenced in `stmts` (reads or writes).
fn referenced_names(stmts: &[Stmt]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for s in stmts {
        s.visit(&mut |s| match s {
            Stmt::Assign { var, .. } | Stmt::Read { var, .. } => {
                names.insert(var.clone());
            }
            Stmt::ArraySet { array, .. } => {
                names.insert(array.clone());
            }
            _ => {}
        });
        s.visit_exprs(&mut |e| match e {
            Expr::Var(name) => {
                names.insert(name.clone());
            }
            Expr::ArrayGet { array, .. } => {
                names.insert(array.clone());
            }
            _ => {}
        });
    }
    names
}

/// Trip-weighted static work of one statement (mirrors
/// [`Kernel::dynamic_ops`] without needing a whole kernel).
fn stmt_ops(s: &Stmt) -> u64 {
    match s {
        Stmt::Assign { value, .. } | Stmt::Write { value, .. } => 1 + value.op_count() as u64,
        Stmt::ArraySet { index, value, .. } => {
            2 + index.op_count() as u64 + value.op_count() as u64
        }
        Stmt::Read { .. } => 1,
        Stmt::For { body, .. } => {
            let inner: u64 = body.iter().map(stmt_ops).sum();
            s.trip_count().unwrap_or(1).saturating_mul(inner + 1)
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let t: u64 = then_body.iter().map(stmt_ops).sum();
            let e: u64 = else_body.iter().map(stmt_ops).sum();
            1 + cond.op_count() as u64 + t.max(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kir::interp::Resolved;
    use kir::types::Value;
    use kir::{KernelBuilder, Scalar};

    fn word(v: u32) -> Value {
        Value::Int(aplib::DynInt::from_raw(32, false, v as u128))
    }

    /// load-then-compute kernel: phase 1 fills an array, phase 2 emits a
    /// reversed, scaled copy.
    fn two_phase(n: i64) -> Kernel {
        KernelBuilder::new("tp")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .array("buf", Scalar::uint(32), n as u64)
            .body([
                Stmt::for_loop(
                    "i",
                    0..n,
                    [
                        Stmt::read("x", "in"),
                        Stmt::store("buf", Expr::var("i"), Expr::var("x")),
                    ],
                ),
                Stmt::for_loop(
                    "i",
                    0..n,
                    [Stmt::write(
                        "out",
                        Expr::index("buf", Expr::cint(n - 1).sub(Expr::var("i")))
                            .mul(Expr::cint(3)),
                    )],
                ),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn split_two_phase_kernel_is_bit_identical() {
        let n = 32i64;
        let k = two_phase(n);
        let plan = split_kernel(&k).expect("two-phase kernel has a legal cut");
        // The shared array streams between the halves.
        assert!(plan.state_ports.iter().any(|p| p.name == "__st_buf"));

        let stream: Vec<Value> = (0..n as u32).map(word).collect();
        let (expect, _) = Resolved::new(&k)
            .run(&[("in", stream.clone())], kir::interp::DEFAULT_OP_BUDGET)
            .unwrap();

        // Run head, pipe state ports into tail.
        let (head_out, _) = Resolved::new(&plan.head)
            .run(&[("in", stream)], kir::interp::DEFAULT_OP_BUDGET)
            .unwrap();
        let tail_inputs: Vec<(&str, Vec<Value>)> = plan
            .state_ports
            .iter()
            .map(|p| (p.name.as_str(), head_out[&p.name].clone()))
            .collect();
        let (tail_out, _) = Resolved::new(&plan.tail)
            .run(&tail_inputs, kir::interp::DEFAULT_OP_BUDGET)
            .unwrap();
        assert_eq!(tail_out["out"], expect["out"]);
    }

    #[test]
    fn no_cut_for_single_loop_streaming_kernel() {
        let k = KernelBuilder::new("s")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..8,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap();
        assert!(split_kernel(&k).is_none());
    }

    #[test]
    fn disjoint_phase_arrays_land_on_one_side_only() {
        // Phase 1 uses `a`, phase 2 uses `b` (filled from a carried local):
        // after the split each half must hold only its own array.
        let n = 16i64;
        let k = KernelBuilder::new("d")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("acc", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .array("a", Scalar::uint(32), n as u64)
            .array("b", Scalar::uint(32), n as u64)
            .body([
                Stmt::for_loop(
                    "i",
                    0..n,
                    [
                        Stmt::read("x", "in"),
                        Stmt::store("a", Expr::var("i"), Expr::var("x")),
                        Stmt::assign(
                            "acc",
                            Expr::var("acc").add(Expr::index("a", Expr::var("i"))),
                        ),
                    ],
                ),
                Stmt::for_loop(
                    "i",
                    0..n,
                    [
                        Stmt::store("b", Expr::var("i"), Expr::var("acc").add(Expr::var("i"))),
                        Stmt::write("out", Expr::index("b", Expr::var("i"))),
                    ],
                ),
            ])
            .build()
            .unwrap();
        let plan = split_kernel(&k).unwrap();
        assert!(plan.head.array("a").is_some() && plan.head.array("b").is_none());
        assert!(plan.tail.array("b").is_some() && plan.tail.array("a").is_none());
        // Only the local `acc` crosses; `a`'s contents do not.
        assert_eq!(
            plan.state_ports.iter().map(|p| &p.name).collect::<Vec<_>>(),
            vec!["__st_acc"]
        );
    }
}
