//! Cross-process warm-rebuild acceptance, driven by CI.
//!
//! CI runs this test **twice as separate processes** against one shared
//! cache directory:
//!
//! ```sh
//! PLD_CACHE_DIR=/tmp/shared cargo test --test build_graph_persistent
//! PLD_CACHE_DIR=/tmp/shared PLD_CACHE_EXPECT=warm \
//!     cargo test --test build_graph_persistent
//! ```
//!
//! The first (cold) process compiles the Rosetta spam filter from scratch
//! and persists the store; the second process must rebuild it with **zero**
//! stage executions — every HLS, P&R and pack product served from the
//! segment files the first process wrote. Without `PLD_CACHE_DIR` the test
//! exercises the same protocol in a private temp directory, so it is still
//! meaningful in a plain `cargo test` run.

use dfg::{Graph, GraphBuilder, Target};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{BuildCache, CompileOptions, OptLevel};
use rosetta::Scale;

fn private_dir() -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("pld-cold-warm-{}-{nanos}", std::process::id()))
}

#[test]
fn shared_cache_dir_serves_a_second_process_entirely_warm() {
    let (dir, private) = match std::env::var("PLD_CACHE_DIR") {
        Ok(d) => (std::path::PathBuf::from(d), false),
        Err(_) => (private_dir(), true),
    };
    std::fs::create_dir_all(&dir).unwrap();
    let expect_warm = std::env::var("PLD_CACHE_EXPECT").as_deref() == Ok("warm");
    let opts = CompileOptions::new(OptLevel::O1);
    let bench = rosetta::spam::bench(Scale::Tiny);

    let run_once = |dir: &std::path::Path| {
        let mut cache = BuildCache::open_dir(dir).unwrap();
        cache.compile(&bench.graph, &opts).unwrap();
        let executions = cache.last_report().unwrap().total_executions();
        cache.persist().unwrap();
        executions
    };

    let executions = run_once(&dir);
    if expect_warm {
        assert_eq!(
            executions, 0,
            "second process re-executed stages a shared cache should hold"
        );
    } else if executions == 0 {
        // A cold run against a genuinely empty directory must execute; a
        // reused PLD_CACHE_DIR is allowed to start warm.
        assert!(
            std::fs::read_dir(&dir).unwrap().next().is_some(),
            "cold build executed nothing against an empty cache"
        );
    }

    if private {
        // No driver process: play the second process ourselves.
        assert_eq!(run_once(&dir), 0, "warm reopen re-executed stages");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A two-stage hw pipeline whose second operator's constant is the edit
/// knob: changing it re-runs HLS and P&R for that operator but leaves the
/// structural netlist — and therefore the warm-start quality — untouched.
fn hint_pipeline(edited: bool) -> Graph {
    let stage = |name: &str, addend: i64| {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..64,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    };
    let mut b = GraphBuilder::new("hint_pipe");
    let a = b.add("a", stage("a", 1), Target::hw(0));
    let c = b.add("c", stage("c", if edited { 99 } else { 2 }), Target::hw(1));
    b.ext_input("Input_1", a, "in");
    b.connect("l0", a, "out", c, "in");
    b.ext_output("Output_1", c, "out");
    b.build().unwrap()
}

/// The `PnrHints` artifacts a cold process files while compiling with
/// `incremental_pnr` on must survive the shared-cache disk round-trip: a
/// second process that edits one operator has to warm-start its P&R from
/// the first process's on-disk hints. Uses its own subdirectory of
/// `PLD_CACHE_DIR` so CI's two-invocation protocol gives this test the
/// same cold/warm semantics as the rosetta test above.
#[test]
fn pnr_hints_survive_the_shared_cache_round_trip() {
    let (dir, private) = match std::env::var("PLD_CACHE_DIR") {
        Ok(d) => (std::path::PathBuf::from(d).join("hints"), false),
        Err(_) => (private_dir(), true),
    };
    std::fs::create_dir_all(&dir).unwrap();
    let expect_warm = std::env::var("PLD_CACHE_EXPECT").as_deref() == Ok("warm");
    let opts = CompileOptions {
        incremental_pnr: true,
        ..CompileOptions::new(OptLevel::O1)
    };

    // Cold role: compile the base pipeline (filing hints as its cold P&R
    // runs execute) and persist the segments.
    let seed_the_cache = |dir: &std::path::Path| {
        let mut cache = BuildCache::open_dir(dir).unwrap();
        cache.compile(&hint_pipeline(false), &opts).unwrap();
        cache.persist().unwrap();
    };
    // Warm role: a fresh process rebuilds the base (entirely from disk),
    // then edits operator "c" — the rebuild must find the previous
    // version's hints through the seed-free lineage key and warm-start.
    let edit_against_the_cache = |dir: &std::path::Path| {
        let mut cache = BuildCache::open_dir(dir).unwrap();
        cache.compile(&hint_pipeline(false), &opts).unwrap();
        cache.compile(&hint_pipeline(true), &opts).unwrap();
        let report = cache.last_report().unwrap();
        assert!(
            report.hint_hits >= 1,
            "edited rebuild found no on-disk hints: {} fetches, {} hits",
            report.hint_fetches,
            report.hint_hits
        );
        assert!(
            report.warm_pnr_ops >= 1,
            "edited rebuild never took the warm P&R path"
        );
        assert_eq!(report.warm_fallbacks, 0, "structural no-op edit fell back");
    };

    if expect_warm {
        edit_against_the_cache(&dir);
    } else {
        seed_the_cache(&dir);
        if private {
            // No driver process: play the second process ourselves.
            edit_against_the_cache(&dir);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
