//! Threaded Kahn-process-network stream links.
//!
//! Used by the host execution mode (the paper's "X86 g++" column in Tab. 3),
//! where each dataflow operator runs as an OS thread and the latency-
//! insensitive links become bounded channels: reads block on empty
//! (data presence) and writes block on full (backpressure).
//!
//! Both endpoints expose a per-token API and a chunked API
//! ([`StreamWriter::write_batch`] / [`StreamReader::read_batch`]) over the
//! same bounded ring. Batching changes only how many tokens move per lock
//! acquisition, never their order, so by the Kahn property the observable
//! token streams are identical whichever API a peer uses.

use std::fmt;
use std::sync::Arc;

use crate::ring::Ring;

/// Error returned by [`StreamReader::read`] when the stream is closed and
/// drained: every producer has finished and no tokens remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadError;

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream closed: producer finished and FIFO drained")
    }
}

impl std::error::Error for ReadError {}

/// Error returned by [`StreamWriter::write`] when the consumer side has hung
/// up, so the token can never be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteError;

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream closed: consumer hung up")
    }
}

impl std::error::Error for WriteError {}

/// Cumulative stall counts observed on one stream link, readable from either
/// endpoint. An episode is one call that had to park (however many wakeups it
/// took), so the numbers compare meaningfully across chunk sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Backpressure episodes: a write found the FIFO full and blocked.
    pub write_blocks: u64,
    /// Starvation episodes: a read found the FIFO empty and blocked.
    pub read_blocks: u64,
}

impl LinkStats {
    /// Total stall episodes on the link, both directions.
    pub fn total(&self) -> u64 {
        self.write_blocks + self.read_blocks
    }
}

/// Producer endpoint of a latency-insensitive stream link.
pub struct StreamWriter<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer endpoint of a latency-insensitive stream link.
pub struct StreamReader<T> {
    ring: Arc<Ring<T>>,
}

impl<T> fmt::Debug for StreamWriter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamWriter").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for StreamReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamReader").finish_non_exhaustive()
    }
}

impl<T> Clone for StreamWriter<T> {
    fn clone(&self) -> StreamWriter<T> {
        self.ring.add_writer();
        StreamWriter {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl<T> Clone for StreamReader<T> {
    fn clone(&self) -> StreamReader<T> {
        self.ring.add_reader();
        StreamReader {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl<T> Drop for StreamWriter<T> {
    fn drop(&mut self) {
        self.ring.remove_writer();
    }
}

impl<T> Drop for StreamReader<T> {
    fn drop(&mut self) {
        self.ring.remove_reader();
    }
}

/// Creates a latency-insensitive stream link of the given FIFO depth.
///
/// # Panics
///
/// Panics if `capacity` is zero (a rendezvous channel is not a FIFO and can
/// deadlock a Kahn network that assumes at least one token of slack).
///
/// # Examples
///
/// ```
/// let (tx, rx) = listream::channel::<u32>(4);
/// std::thread::spawn(move || {
///     for i in 0..10 {
///         tx.write(i).unwrap();
///     }
/// });
/// let got: Vec<u32> = rx.iter().collect();
/// assert_eq!(got, (0..10).collect::<Vec<_>>());
/// ```
pub fn channel<T>(capacity: usize) -> (StreamWriter<T>, StreamReader<T>) {
    assert!(capacity > 0, "stream FIFO capacity must be at least 1");
    let ring = Arc::new(Ring::new(capacity));
    (
        StreamWriter {
            ring: Arc::clone(&ring),
        },
        StreamReader { ring },
    )
}

impl<T> StreamWriter<T> {
    /// Writes a token, blocking while the FIFO is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`WriteError`] if every reader has been dropped.
    pub fn write(&self, token: T) -> Result<(), WriteError> {
        self.ring.write(token)
    }

    /// Attempts a non-blocking write. Returns the token back on failure,
    /// mirroring a hardware `full` rejection.
    pub fn try_write(&self, token: T) -> Result<(), T> {
        self.ring.try_write(token)
    }

    /// Writes every token in `buf`, in order, blocking for FIFO space as
    /// needed; each wakeup moves the whole prefix that fits under one lock
    /// acquisition. On success `buf` is left empty and ready for reuse.
    ///
    /// # Errors
    ///
    /// Returns [`WriteError`] if every reader has been dropped; any tokens
    /// not yet transferred are discarded, since no consumer can ever
    /// receive them.
    pub fn write_batch(&self, buf: &mut Vec<T>) -> Result<(), WriteError> {
        self.ring.write_batch(buf)
    }

    /// Moves the prefix of `buf` that fits in the FIFO right now, without
    /// blocking, and returns how many tokens were transferred.
    ///
    /// # Errors
    ///
    /// Returns [`WriteError`] if every reader has been dropped (`buf` is
    /// left untouched in that case).
    pub fn try_write_batch(&self, buf: &mut Vec<T>) -> Result<usize, WriteError> {
        self.ring.try_write_batch(buf)
    }

    /// Snapshot of the link's cumulative stall counters.
    pub fn stats(&self) -> LinkStats {
        let (write_blocks, read_blocks) = self.ring.stalls();
        LinkStats {
            write_blocks,
            read_blocks,
        }
    }
}

impl<T> StreamReader<T> {
    /// Reads a token, blocking while the FIFO is empty (data presence).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] once all writers are dropped and the FIFO is
    /// drained — the stream's end-of-computation condition.
    pub fn read(&self) -> Result<T, ReadError> {
        self.ring.read()
    }

    /// Attempts a non-blocking read.
    pub fn try_read(&self) -> Option<T> {
        self.ring.try_read()
    }

    /// Appends up to `max` tokens to `out`, blocking until at least one is
    /// available, and returns how many arrived. A single lock acquisition
    /// drains everything currently queued (capped at `max`).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] once all writers are dropped and the FIFO is
    /// drained.
    pub fn read_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, ReadError> {
        self.ring.read_batch(out, max)
    }

    /// Non-blocking variant of [`StreamReader::read_batch`]: returns
    /// `Ok(0)` when the FIFO is merely empty.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] only once the stream is closed *and* drained.
    pub fn try_read_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, ReadError> {
        self.ring.try_read_batch(out, max)
    }

    /// Returns an iterator that drains the stream until it closes.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.ring.read().ok())
    }

    /// Snapshot of the link's cumulative stall counters.
    pub fn stats(&self) -> LinkStats {
        let (write_blocks, read_blocks) = self.ring.stalls();
        LinkStats {
            write_blocks,
            read_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn tokens_arrive_in_order() {
        let (tx, rx) = channel::<u32>(3);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.write(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_blocks_producer() {
        let (tx, rx) = channel::<u32>(1);
        tx.write(1).unwrap();
        // FIFO is full: non-blocking write must be rejected with the token.
        assert_eq!(tx.try_write(2), Err(2));
        assert_eq!(rx.try_read(), Some(1));
        assert_eq!(tx.try_write(2), Ok(()));
    }

    #[test]
    fn read_after_close_errors() {
        let (tx, rx) = channel::<u32>(2);
        tx.write(9).unwrap();
        drop(tx);
        assert_eq!(rx.read(), Ok(9));
        assert_eq!(rx.read(), Err(ReadError));
    }

    #[test]
    fn write_after_reader_gone_errors() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.write(1), Err(WriteError));
    }

    #[test]
    fn blocking_read_waits_for_data() {
        let (tx, rx) = channel::<u32>(1);
        let reader = thread::spawn(move || rx.read().unwrap());
        thread::sleep(Duration::from_millis(10));
        tx.write(42).unwrap();
        assert_eq!(reader.join().unwrap(), 42);
    }

    #[test]
    fn pipeline_of_three_stages_runs_to_completion() {
        // unpack -> double -> sum, the shape of the paper's Fig. 2 graph.
        let (tx0, rx0) = channel::<u32>(2);
        let (tx1, rx1) = channel::<u32>(2);
        let stage1 = thread::spawn(move || {
            while let Ok(v) = rx0.read() {
                tx1.write(v * 2).unwrap();
            }
        });
        let sum = thread::spawn(move || rx1.iter().map(u64::from).sum::<u64>());
        for i in 0..1000u32 {
            tx0.write(i).unwrap();
        }
        drop(tx0);
        stage1.join().unwrap();
        assert_eq!(sum.join().unwrap(), (0..1000u64).map(|i| i * 2).sum());
    }

    #[test]
    fn write_batch_roundtrips_through_narrow_fifo() {
        // Batch far larger than the FIFO: the writer must hand it over in
        // capacity-sized slices while the reader drains concurrently.
        let (tx, rx) = channel::<u32>(4);
        let producer = thread::spawn(move || {
            let mut buf: Vec<u32> = (0..1000).collect();
            tx.write_batch(&mut buf).unwrap();
            assert!(buf.is_empty());
        });
        let mut got = Vec::new();
        while rx.read_batch(&mut got, usize::MAX).is_ok() {}
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn batched_writer_interleaves_with_per_token_reader() {
        let (tx, rx) = channel::<u32>(8);
        let producer = thread::spawn(move || {
            for chunk in 0..10u32 {
                let mut buf: Vec<u32> = (chunk * 7..(chunk + 1) * 7).collect();
                tx.write_batch(&mut buf).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn try_write_batch_moves_only_what_fits() {
        let (tx, rx) = channel::<u32>(3);
        let mut buf = vec![1, 2, 3, 4, 5];
        assert_eq!(tx.try_write_batch(&mut buf), Ok(3));
        assert_eq!(buf, vec![4, 5]);
        assert_eq!(tx.try_write_batch(&mut buf), Ok(0));
        let mut got = Vec::new();
        assert_eq!(rx.try_read_batch(&mut got, 2), Ok(2));
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn read_batch_blocks_until_data_arrives() {
        let (tx, rx) = channel::<u32>(2);
        let reader = thread::spawn(move || {
            let mut out = Vec::new();
            rx.read_batch(&mut out, 16).unwrap();
            out
        });
        thread::sleep(Duration::from_millis(10));
        tx.write(7).unwrap();
        let got = reader.join().unwrap();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn stall_counters_track_block_episodes() {
        let (tx, rx) = channel::<u32>(1);
        assert_eq!(tx.stats(), LinkStats::default());

        // Reader parks first, writer then satisfies it: one starvation.
        let reader = thread::spawn(move || {
            let v = rx.read().unwrap();
            (v, rx)
        });
        thread::sleep(Duration::from_millis(10));
        tx.write(1).unwrap();
        let (v, rx) = reader.join().unwrap();
        assert_eq!(v, 1);
        assert_eq!(rx.stats().read_blocks, 1);

        // Fill the FIFO, park the writer, then drain: one backpressure.
        tx.write(2).unwrap();
        let writer = thread::spawn(move || {
            tx.write(3).unwrap();
            tx
        });
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.read(), Ok(2));
        let tx = writer.join().unwrap();
        assert_eq!(tx.stats().write_blocks, 1);
        // Both endpoints observe the same shared counters.
        assert_eq!(tx.stats(), rx.stats());
    }

    #[test]
    fn batch_apis_report_hangup() {
        let (tx, rx) = channel::<u32>(2);
        drop(rx);
        let mut buf = vec![1, 2];
        assert_eq!(tx.try_write_batch(&mut buf), Err(WriteError));
        assert_eq!(buf, vec![1, 2]);
        assert_eq!(tx.write_batch(&mut buf), Err(WriteError));

        let (tx, rx) = channel::<u32>(2);
        tx.write(5).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.read_batch(&mut out, 16), Ok(1));
        assert_eq!(rx.read_batch(&mut out, 16), Err(ReadError));
        assert_eq!(rx.try_read_batch(&mut out, 16), Err(ReadError));
    }
}
