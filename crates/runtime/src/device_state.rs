//! The runtime's view of the card: which tenant owns each page, and the
//! persistent linking network whose destination registers are the ground
//! truth for every route on the fabric.

use std::collections::HashSet;

use fabric::{Floorplan, PageId};
use noc::BftNoc;
use pld::execute::OVERLAY_MHZ;
use pld::{LinkOp, Xclbin, XclbinKind};

use crate::AppId;

/// Occupancy record for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageBinding {
    /// The resident application owning the page.
    pub app: AppId,
    /// Operator index within that application.
    pub operator: usize,
}

/// Device state owned by the runtime: the floorplan, per-page occupancy,
/// and one [`BftNoc`] that persists across admissions — unlike the
/// single-app loader, which brings up a fresh network per load, the
/// runtime's network carries every resident app's routes at once.
#[derive(Debug)]
pub struct DeviceState {
    /// The overlay's page decomposition.
    pub floorplan: Floorplan,
    bindings: Vec<Option<PageBinding>>,
    noc: BftNoc,
    /// Content hashes of every artifact ever transferred to this card —
    /// the device-local bitstream cache the fleet's placement consults
    /// (an artifact already on the card is a warm re-admission there).
    loaded_artifacts: HashSet<u64>,
    /// Seconds spent bringing up the static overlay (paid once).
    pub overlay_seconds: f64,
}

impl DeviceState {
    /// Brings up the overlay on an empty card: loads the static L1 image
    /// and starts the linking network with one leaf per page plus the two
    /// DMA endpoints.
    pub fn new(floorplan: Floorplan) -> DeviceState {
        let n_pages = floorplan.pages.len();
        let overlay = Xclbin {
            name: "overlay.xclbin".into(),
            kind: XclbinKind::Overlay,
            hash: 0,
        };
        DeviceState {
            bindings: vec![None; n_pages],
            noc: BftNoc::new(n_pages + 2, 4, 64),
            loaded_artifacts: HashSet::new(),
            overlay_seconds: overlay.load_seconds(),
            floorplan,
        }
    }

    /// The NoC leaf of the DMA input engine (shared by every tenant).
    pub fn dma_in_leaf(&self) -> u16 {
        self.floorplan.pages.len() as u16
    }

    /// The NoC leaf of the DMA output engine.
    pub fn dma_out_leaf(&self) -> u16 {
        self.floorplan.pages.len() as u16 + 1
    }

    /// Occupancy of one page.
    pub fn binding(&self, page: PageId) -> Option<PageBinding> {
        self.bindings.get(page.0 as usize).copied().flatten()
    }

    /// Free/occupied map in page order.
    pub fn free_map(&self) -> Vec<bool> {
        self.bindings.iter().map(Option::is_none).collect()
    }

    /// Number of occupied pages.
    pub fn occupied(&self) -> usize {
        self.bindings.iter().filter(|b| b.is_some()).count()
    }

    /// Marks a page as owned.
    pub fn bind(&mut self, page: PageId, binding: PageBinding) {
        debug_assert!(
            self.bindings[page.0 as usize].is_none(),
            "double-binding {page}"
        );
        self.bindings[page.0 as usize] = Some(binding);
    }

    /// Releases a page.
    pub fn release(&mut self, page: PageId) {
        self.bindings[page.0 as usize] = None;
    }

    /// Programs a batch of routes by sending one in-band configuration
    /// packet each from the DMA-in leaf, exactly as the generated driver
    /// does, and returns the measured network cycles the batch took — the
    /// link half of the swap's downtime bill.
    pub fn link(&mut self, links: &[LinkOp]) -> u64 {
        if links.is_empty() {
            return 0;
        }
        let host = self.dma_in_leaf() as usize;
        let c0 = self.noc.cycle();
        for link in links {
            while self
                .noc
                .send_config(host, link.src_leaf, link.stream, link.dest)
                .is_err()
            {
                self.noc.step();
            }
        }
        self.noc.drain(1_000_000);
        self.noc.cycle() - c0
    }

    /// Tears down a batch of routes (departing or swapped tenant), leaving
    /// every other destination register on the fabric untouched.
    pub fn unlink(&mut self, links: &[LinkOp]) {
        for link in links {
            self.noc
                .clear_dest(link.src_leaf as usize, link.stream as usize);
        }
    }

    /// Whether a route is currently programmed at its source leaf.
    pub fn route_programmed(&self, link: &LinkOp) -> bool {
        self.noc
            .leaf(link.src_leaf as usize)
            .dest(link.stream as usize)
            == Some(link.dest)
    }

    /// Configuration packets delivered since bring-up.
    pub fn config_writes(&self) -> u64 {
        self.noc.stats().config_writes
    }

    /// Converts measured link cycles to seconds at the overlay clock.
    pub fn link_seconds(cycles: u64) -> f64 {
        cycles as f64 / (OVERLAY_MHZ * 1e6)
    }

    /// Records that an artifact with this content hash was transferred to
    /// the card (it is now in the device-local bitstream cache).
    pub fn note_loaded(&mut self, hash: u64) {
        self.loaded_artifacts.insert(hash);
    }

    /// Whether the device-local bitstream cache holds this artifact hash.
    pub fn holds_artifact(&self, hash: u64) -> bool {
        self.loaded_artifacts.contains(&hash)
    }

    /// How many of the given artifact hashes are already cached on this
    /// card — the fleet placement's cache-affinity score.
    pub fn cached_artifacts(&self, hashes: &[u64]) -> usize {
        hashes
            .iter()
            .filter(|h| self.loaded_artifacts.contains(h))
            .count()
    }

    /// Sets (or with `None` lifts) the data-injection credit budget of one
    /// page's NoC leaf — the per-tenant QoS throttle, forwarded to
    /// [`BftNoc::set_inject_budget`].
    pub fn set_page_inject_budget(&mut self, page: PageId, budget: Option<u32>) {
        self.noc.set_inject_budget(page.0 as usize, budget);
    }

    /// Remaining injection credits at one page's leaf (`None` =
    /// unthrottled).
    pub fn page_inject_budget(&self, page: PageId) -> Option<u32> {
        self.noc.inject_budget(page.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::PortAddr;

    #[test]
    fn link_then_unlink_roundtrip() {
        let mut dev = DeviceState::new(Floorplan::u50());
        assert!(dev.overlay_seconds > 0.0);
        let route = LinkOp {
            src_leaf: 3,
            stream: 0,
            dest: PortAddr { leaf: 9, port: 1 },
        };
        let cycles = dev.link(&[route]);
        assert!(cycles > 0, "config packets take network time");
        assert!(dev.route_programmed(&route));
        assert_eq!(dev.config_writes(), 1);
        dev.unlink(&[route]);
        assert!(!dev.route_programmed(&route));
    }

    #[test]
    fn bindings_track_occupancy() {
        let mut dev = DeviceState::new(Floorplan::u50());
        assert_eq!(dev.occupied(), 0);
        dev.bind(
            PageId(4),
            PageBinding {
                app: AppId(1),
                operator: 0,
            },
        );
        assert_eq!(dev.occupied(), 1);
        assert_eq!(
            dev.binding(PageId(4)),
            Some(PageBinding {
                app: AppId(1),
                operator: 0
            })
        );
        assert!(!dev.free_map()[4]);
        dev.release(PageId(4));
        assert_eq!(dev.occupied(), 0);
    }
}
