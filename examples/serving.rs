//! Serving multiple apps on one fabric — through the fleet's device
//! abstraction at N = 1.
//!
//! The paper's flow compiles and loads one application at a time; this
//! example runs the multi-tenant serving layer on top of it. A fleet of
//! exactly one 22-page XCU50 card hosts several Rosetta benchmarks at
//! once — the degenerate case of `examples/serving_fleet.rs`, exercising
//! the same admission, placement and eviction code path the multi-device
//! fleet uses:
//!
//! 1. four apps are compiled at `-O0` and admitted through the bounded
//!    fleet queue (a fifth submission bounces off the bound —
//!    backpressure);
//! 2. requests are served against each resident app;
//! 3. more apps arrive; when the card is out of pages, the
//!    least-recently-used tenants of equal-or-lower QoS class are
//!    evicted to make room;
//! 4. one operator of a resident app is "edited" (its pragma re-pinned)
//!    and hot-swapped in place on its device: one page reloads, a
//!    handful of config packets re-send, everything else keeps running —
//!    and the measured downtime is compared against a full-app reload.
//!
//! Run with: `cargo run --release --example serving`

use dfg::Target;
use fabric::Floorplan;
use pld::{BuildCache, CompileOptions, OptLevel};
use pld_runtime::{Fleet, FleetAppId, FleetError, FleetEvent, Runtime, TenantId};
use rosetta::{suite, Scale};

fn main() {
    let opts = CompileOptions::new(OptLevel::O0);
    let mut cache = BuildCache::new();

    // The six Rosetta benchmarks, compiled for softcore pages (-O0).
    let benches = suite(Scale::Tiny);
    println!("compiling {} apps at -O0:", benches.len());
    let apps: Vec<_> = benches
        .iter()
        .map(|b| {
            let app = cache
                .compile(&b.graph, &opts)
                .expect("rosetta compiles at -O0");
            println!(
                "  {:<18} {} operators -> {} pages",
                b.name,
                b.graph.operators.len(),
                app.operators.len()
            );
            app
        })
        .collect();

    // A fleet of one card: 22 pages, fleet queue bound 4.
    let fp = Floorplan::u50();
    let mut fleet = Fleet::with_queue_bound(vec![Runtime::new(fp.clone())], 4);
    let tenant = TenantId(0);
    println!(
        "\nfleet up: 1 device, {} pages, queue bound {}",
        fp.pages.len(),
        4
    );

    // --- Admission with backpressure -------------------------------------
    let mut ids: Vec<FleetAppId> = Vec::new();
    let mut overflow = Vec::new();
    for (bench, app) in benches.iter().zip(&apps) {
        match fleet.submit(tenant, bench.name, app.clone()) {
            Ok(id) => ids.push(id),
            Err(FleetError::QueueFull { app }) => {
                println!("queue full: `{}` refused (resubmit later)", bench.name);
                overflow.push(*app);
            }
            Err(e) => println!("`{}` refused: {e}", bench.name),
        }
    }
    let events = fleet.pump();
    report(&fleet, &events);

    // The refused apps get in once the queue drains.
    for app in overflow {
        let name = benches
            .iter()
            .find(|b| b.graph.name == app.graph.name)
            .map(|b| b.name)
            .expect("known bench");
        match fleet.submit(tenant, name, app) {
            Ok(id) => ids.push(id),
            Err(e) => println!("`{name}` refused again: {e}"),
        }
    }
    let events = fleet.pump();
    report(&fleet, &events);
    println!("\n{}", fleet.stats().per_device[0]);

    // --- Serve requests ---------------------------------------------------
    // Run each resident tenant's workload (evicted tenants would need
    // re-admission first).
    let mut served = 0;
    for &id in &ids {
        if !fleet.is_resident(id) {
            continue;
        }
        let name = fleet.name_of(id).expect("known app").to_string();
        let bench = benches
            .iter()
            .find(|b| b.name == name)
            .expect("known bench");
        let inputs = bench.input_refs();
        if fleet.run(id, &inputs).is_ok() {
            served += 1;
        }
    }
    println!("served {served} requests across resident tenants");

    // --- Hot swap ----------------------------------------------------------
    // "Edit" the most recently admitted resident app: re-pin its last
    // operator to a spare page — the pragma flip of the paper's
    // incremental-development loop — and hot-swap it in place on its
    // device.
    let id = *ids
        .iter()
        .rev()
        .find(|&&id| fleet.is_resident(id))
        .expect("something is resident");
    let name = fleet.name_of(id).expect("resident").to_string();
    let bench = benches
        .iter()
        .find(|b| b.name == name)
        .expect("known bench");
    let mut edited = bench.graph.clone();
    let app = cache.compile(&edited, &opts).expect("recompile");
    let homes: Vec<u32> = app
        .operators
        .iter()
        .filter_map(|o| o.page.map(|p| p.0))
        .collect();
    let spare = (0..22u32)
        .rev()
        .find(|p| !homes.contains(p))
        .expect("a spare page");
    let last = edited.operators.len() - 1;
    edited.operators[last].target = Target::riscv(spare);

    let (device, local) = fleet.locate(id).expect("resident");
    let rt = fleet.runtime_mut(device).expect("device exists");
    match rt.hot_swap(local, &edited, &mut cache, &opts) {
        Ok(report) => {
            println!(
                "\nhot swap of `{}` on {device}: recompiled {:?}, reloaded {} page(s), {} config packets",
                bench.name,
                report.recompiled,
                report.swapped_pages.len(),
                report.link_packets
            );
            println!(
                "  downtime {:>9.3} ms   (full reload would be {:>9.3} ms, {:.1}x more)",
                report.downtime_seconds * 1e3,
                report.full_reload_seconds * 1e3,
                report.full_reload_seconds / report.downtime_seconds.max(1e-12)
            );
        }
        Err(e) => println!("hot swap skipped: {e}"),
    }

    println!("\nfinal statistics:\n{}", fleet.stats().per_device[0]);
}

fn report(fleet: &Fleet, events: &[FleetEvent]) {
    for e in events {
        let name = |app: &FleetAppId| fleet.name_of(*app).unwrap_or("?").to_string();
        match e {
            FleetEvent::Admitted {
                app,
                device,
                downtime_seconds,
            } => println!(
                "admitted `{}` on {device} ({:.3} ms downtime)",
                name(app),
                downtime_seconds * 1e3
            ),
            FleetEvent::Rejected { name, reason, .. } => {
                println!("rejected `{name}`: {reason}")
            }
            FleetEvent::Evicted { app, device } => {
                println!("evicted `{}` from {device} (LRU)", name(app))
            }
            FleetEvent::Migrated {
                app,
                from,
                to,
                downtime_seconds,
            } => println!(
                "migrated `{}` {from} -> {to} ({:.3} ms downtime)",
                name(app),
                downtime_seconds * 1e3
            ),
        }
    }
}
