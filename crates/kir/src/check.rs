//! The operator-discipline validator and type checker (paper Sec. 3.4).
//!
//! "There are some restrictions for C functions to make good, concurrent
//! dataflow operators for acceleration": stream-only I/O, no allocation or
//! recursion, standard arbitrary-precision datatypes, static loop structure.
//! The IR makes recursion and allocation inexpressible; this module checks
//! everything else and infers a type for every expression.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::Kernel;
use crate::ops::{result_type, result_type_un};
use crate::stmt::Stmt;
use crate::types::Scalar;

/// Maximum bits of local array storage per operator.
///
/// The largest PLD page carries 120 BRAM18s (Tab. 1) = 120 × 18 Kib; an
/// operator whose arrays exceed that cannot map to any page.
pub const MAX_ARRAY_BITS: u64 = 120 * 18 * 1024;

/// A violation of the operator discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// A declared name (port/local/array/loop variable) is used twice.
    DuplicateName(String),
    /// A scalar type has an unsupported width.
    #[allow(missing_docs)]
    IllegalType { name: String, ty: Scalar },
    /// An array has zero length or exceeds the page BRAM budget.
    #[allow(missing_docs)]
    ArrayTooLarge { name: String, bits: u64 },
    /// An expression references an undeclared variable.
    UnknownVar(String),
    /// An expression references an undeclared array.
    UnknownArray(String),
    /// A stream statement references an undeclared port.
    UnknownPort(String),
    /// A `Read` targets an output port or a `Write` targets an input port.
    #[allow(missing_docs)]
    WrongDirection { port: String },
    /// Assignment target is not a declared local.
    NotAssignable(String),
    /// A bit-range select is reversed or exceeds the operand width.
    #[allow(missing_docs)]
    BadBitRange { hi: u32, lo: u32, width: u32 },
    /// An integer-only operator was applied to a fixed-point operand.
    #[allow(missing_docs)]
    FixedOperandNotAllowed { op: String },
    /// A loop has a non-positive step.
    #[allow(missing_docs)]
    BadLoopStep { var: String, step: i64 },
    /// A loop unroll factor of zero.
    #[allow(missing_docs)]
    BadUnrollFactor { var: String },
    /// The kernel has no stream ports at all, so it can never communicate.
    NoPorts,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::DuplicateName(n) => write!(f, "duplicate declaration of `{n}`"),
            CheckError::IllegalType { name, ty } => {
                write!(f, "`{name}` has unsupported type {ty}")
            }
            CheckError::ArrayTooLarge { name, bits } => {
                write!(
                    f,
                    "array `{name}` needs {bits} bits, over the page budget of {MAX_ARRAY_BITS}"
                )
            }
            CheckError::UnknownVar(n) => write!(f, "use of undeclared variable `{n}`"),
            CheckError::UnknownArray(n) => write!(f, "use of undeclared array `{n}`"),
            CheckError::UnknownPort(n) => write!(f, "use of undeclared stream port `{n}`"),
            CheckError::WrongDirection { port } => {
                write!(f, "stream port `{port}` used against its direction")
            }
            CheckError::NotAssignable(n) => {
                write!(f, "`{n}` is not an assignable local variable")
            }
            CheckError::BadBitRange { hi, lo, width } => {
                write!(f, "bit range [{hi}:{lo}] is invalid for width {width}")
            }
            CheckError::FixedOperandNotAllowed { op } => {
                write!(f, "operator `{op}` does not accept fixed-point operands")
            }
            CheckError::BadLoopStep { var, step } => {
                write!(f, "loop over `{var}` has non-positive step {step}")
            }
            CheckError::BadUnrollFactor { var } => {
                write!(f, "loop over `{var}` has unroll factor 0")
            }
            CheckError::NoPorts => write!(f, "operator has no stream ports"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Static name environment for type inference inside one kernel.
pub struct TypeEnv<'k> {
    kernel: &'k Kernel,
    locals: HashMap<&'k str, Scalar>,
    arrays: HashMap<&'k str, Scalar>,
    /// Loop variables currently in scope (always `ap_int<32>`).
    loop_vars: Vec<String>,
}

impl<'k> TypeEnv<'k> {
    /// Builds the environment for a kernel's declarations.
    pub fn new(kernel: &'k Kernel) -> Self {
        TypeEnv {
            kernel,
            locals: kernel
                .locals
                .iter()
                .map(|v| (v.name.as_str(), v.ty))
                .collect(),
            arrays: kernel
                .arrays
                .iter()
                .map(|a| (a.name.as_str(), a.elem))
                .collect(),
            loop_vars: Vec::new(),
        }
    }

    /// The type of a scalar variable or loop index, if declared.
    pub fn var_type(&self, name: &str) -> Option<Scalar> {
        if self.loop_vars.iter().any(|v| v == name) {
            Some(Scalar::int(32))
        } else {
            self.locals.get(name).copied()
        }
    }

    /// The element type of an array, if declared.
    pub fn array_elem(&self, name: &str) -> Option<Scalar> {
        self.arrays.get(name).copied()
    }

    /// Infers the type of an expression.
    ///
    /// # Errors
    ///
    /// Returns the first discipline violation found in the tree.
    pub fn infer(&self, expr: &Expr) -> Result<Scalar, CheckError> {
        match expr {
            Expr::Const { ty, .. } => Ok(*ty),
            Expr::Var(name) => self
                .var_type(name)
                .ok_or_else(|| CheckError::UnknownVar(name.clone())),
            Expr::ArrayGet { array, index } => {
                let it = self.infer(index)?;
                if it.is_fixed() {
                    return Err(CheckError::FixedOperandNotAllowed { op: "[]".into() });
                }
                self.array_elem(array)
                    .ok_or_else(|| CheckError::UnknownArray(array.clone()))
            }
            Expr::Un { op, arg } => {
                let at = self.infer(arg)?;
                if *op == UnOp::Not && at.is_fixed() {
                    return Err(CheckError::FixedOperandNotAllowed { op: "~".into() });
                }
                Ok(result_type_un(*op, at))
            }
            Expr::Bin { op, lhs, rhs } => {
                let lt = self.infer(lhs)?;
                let rt = self.infer(rhs)?;
                let int_only = matches!(
                    op,
                    BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                );
                if int_only && (lt.is_fixed() || rt.is_fixed()) {
                    return Err(CheckError::FixedOperandNotAllowed { op: op.to_string() });
                }
                Ok(result_type(*op, lt, rt))
            }
            Expr::Cast { ty, arg } => {
                self.infer(arg)?;
                if !ty.is_legal() {
                    return Err(CheckError::IllegalType {
                        name: "<cast>".into(),
                        ty: *ty,
                    });
                }
                Ok(*ty)
            }
            Expr::Select {
                cond,
                then_val,
                else_val,
            } => {
                self.infer(cond)?;
                let tt = self.infer(then_val)?;
                let et = self.infer(else_val)?;
                // A mux output must carry both arms; use the common shape of
                // an Add without growing semantics (values are coerced).
                if tt == et {
                    Ok(tt)
                } else {
                    Ok(result_type(BinOp::Max, tt, et))
                }
            }
            Expr::BitRange { arg, hi, lo } => {
                let at = self.infer(arg)?;
                if hi < lo || *hi >= at.width() {
                    return Err(CheckError::BadBitRange {
                        hi: *hi,
                        lo: *lo,
                        width: at.width(),
                    });
                }
                Ok(Scalar::uint(hi - lo + 1))
            }
        }
    }

    /// Brings a loop variable into scope (for backends walking the body
    /// themselves). Must be balanced with [`TypeEnv::exit_loop`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckError::DuplicateName`] if the name shadows another
    /// declaration.
    pub fn enter_loop(&mut self, name: &str) -> Result<(), CheckError> {
        self.push_loop_var(name)
    }

    /// Removes the innermost loop variable from scope.
    pub fn exit_loop(&mut self) {
        self.pop_loop_var();
    }

    fn push_loop_var(&mut self, name: &str) -> Result<(), CheckError> {
        let clashes = self.locals.contains_key(name)
            || self.arrays.contains_key(name)
            || self.loop_vars.iter().any(|v| v == name)
            || self.kernel.input(name).is_some()
            || self.kernel.output(name).is_some();
        if clashes {
            return Err(CheckError::DuplicateName(name.to_string()));
        }
        self.loop_vars.push(name.to_string());
        Ok(())
    }

    fn pop_loop_var(&mut self) {
        self.loop_vars.pop();
    }
}

/// Validates a kernel against the operator discipline.
///
/// # Errors
///
/// Returns the first violation found; see [`CheckError`] for the catalogue.
pub fn validate(kernel: &Kernel) -> Result<(), CheckError> {
    // Unique names across all declaration kinds.
    let mut seen = HashSet::new();
    for name in kernel
        .inputs
        .iter()
        .map(|p| &p.name)
        .chain(kernel.outputs.iter().map(|p| &p.name))
        .chain(kernel.locals.iter().map(|v| &v.name))
        .chain(kernel.arrays.iter().map(|a| &a.name))
    {
        if !seen.insert(name.as_str()) {
            return Err(CheckError::DuplicateName(name.clone()));
        }
    }

    if kernel.inputs.is_empty() && kernel.outputs.is_empty() {
        return Err(CheckError::NoPorts);
    }

    // Legal scalar widths everywhere.
    for (name, ty) in kernel
        .inputs
        .iter()
        .map(|p| (&p.name, p.elem))
        .chain(kernel.outputs.iter().map(|p| (&p.name, p.elem)))
        .chain(kernel.locals.iter().map(|v| (&v.name, v.ty)))
        .chain(kernel.arrays.iter().map(|a| (&a.name, a.elem)))
    {
        if !ty.is_legal() {
            return Err(CheckError::IllegalType {
                name: name.clone(),
                ty,
            });
        }
    }

    // Array sizes within the page BRAM budget.
    for a in &kernel.arrays {
        let bits = a.len * u64::from(a.elem.width());
        if a.len == 0 || bits > MAX_ARRAY_BITS {
            return Err(CheckError::ArrayTooLarge {
                name: a.name.clone(),
                bits,
            });
        }
        if let Some(init) = &a.init {
            if init.len() as u64 != a.len {
                return Err(CheckError::ArrayTooLarge {
                    name: a.name.clone(),
                    bits,
                });
            }
        }
    }

    let mut env = TypeEnv::new(kernel);
    check_block(kernel, &mut env, &kernel.body)?;
    Ok(())
}

fn check_block(kernel: &Kernel, env: &mut TypeEnv<'_>, body: &[Stmt]) -> Result<(), CheckError> {
    for stmt in body {
        match stmt {
            Stmt::Assign { var, value } => {
                env.infer(value)?;
                if env.kernel.local(var).is_none() {
                    return Err(CheckError::NotAssignable(var.clone()));
                }
            }
            Stmt::ArraySet {
                array,
                index,
                value,
            } => {
                if env.array_elem(array).is_none() {
                    return Err(CheckError::UnknownArray(array.clone()));
                }
                let it = env.infer(index)?;
                if it.is_fixed() {
                    return Err(CheckError::FixedOperandNotAllowed { op: "[]".into() });
                }
                env.infer(value)?;
            }
            Stmt::Read { var, port } => {
                if kernel.output(port).is_some() {
                    return Err(CheckError::WrongDirection { port: port.clone() });
                }
                if kernel.input(port).is_none() {
                    return Err(CheckError::UnknownPort(port.clone()));
                }
                if kernel.local(var).is_none() {
                    return Err(CheckError::NotAssignable(var.clone()));
                }
            }
            Stmt::Write { port, value } => {
                if kernel.input(port).is_some() {
                    return Err(CheckError::WrongDirection { port: port.clone() });
                }
                if kernel.output(port).is_none() {
                    return Err(CheckError::UnknownPort(port.clone()));
                }
                env.infer(value)?;
            }
            Stmt::For {
                var,
                step,
                unroll,
                body,
                ..
            } => {
                if *step <= 0 {
                    return Err(CheckError::BadLoopStep {
                        var: var.clone(),
                        step: *step,
                    });
                }
                if *unroll == 0 {
                    return Err(CheckError::BadUnrollFactor { var: var.clone() });
                }
                env.push_loop_var(var)?;
                let result = check_block(kernel, env, body);
                env.pop_loop_var();
                result?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                env.infer(cond)?;
                check_block(kernel, env, then_body)?;
                check_block(kernel, env, else_body)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;

    fn base() -> KernelBuilder {
        KernelBuilder::new("k")
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
    }

    #[test]
    fn accepts_wellformed_kernel() {
        let k = base()
            .body([Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))])
            .build();
        assert!(k.is_ok());
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = base()
            .local("in", Scalar::uint(8))
            .body([])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::DuplicateName("in".into()));
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = base()
            .body([Stmt::write("out", Expr::var("nope"))])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::UnknownVar("nope".into()));
    }

    #[test]
    fn rejects_wrong_direction() {
        let err = base().body([Stmt::read("x", "out")]).build().unwrap_err();
        assert_eq!(err, CheckError::WrongDirection { port: "out".into() });
        let err = base()
            .body([Stmt::write("in", Expr::cint(1))])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::WrongDirection { port: "in".into() });
    }

    #[test]
    fn rejects_fixed_bitops() {
        let err = base()
            .local("f", Scalar::fixed(32, 17))
            .body([Stmt::assign("x", Expr::var("f").and(Expr::cint(1)))])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::FixedOperandNotAllowed { op: "&".into() });
    }

    #[test]
    fn rejects_oversized_array() {
        let err = base()
            .array("big", Scalar::uint(32), 100_000)
            .body([])
            .build()
            .unwrap_err();
        assert!(matches!(err, CheckError::ArrayTooLarge { .. }));
    }

    #[test]
    fn rejects_assignment_to_loop_var() {
        let err = base()
            .body([Stmt::for_loop(
                "i",
                0..4,
                [Stmt::assign("i", Expr::cint(0))],
            )])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::NotAssignable("i".into()));
    }

    #[test]
    fn rejects_loop_var_shadowing() {
        let err = base()
            .body([Stmt::for_loop("x", 0..4, [])])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::DuplicateName("x".into()));
    }

    #[test]
    fn rejects_bad_bit_range() {
        let err = base()
            .body([Stmt::assign("x", Expr::var("x").bits(40, 0))])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CheckError::BadBitRange {
                hi: 40,
                lo: 0,
                width: 32
            }
        );
    }

    #[test]
    fn rejects_portless_kernel() {
        let err = KernelBuilder::new("k")
            .local("x", Scalar::uint(8))
            .body([])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::NoPorts);
    }

    #[test]
    fn loop_var_usable_inside_scope_only() {
        let ok = base()
            .body([Stmt::for_loop(
                "i",
                0..4,
                [Stmt::assign("x", Expr::var("i"))],
            )])
            .build();
        assert!(ok.is_ok());
        let err = base()
            .body([
                Stmt::for_loop("i", 0..4, []),
                Stmt::assign("x", Expr::var("i")),
            ])
            .build()
            .unwrap_err();
        assert_eq!(err, CheckError::UnknownVar("i".into()));
    }

    #[test]
    fn infer_types_for_mixed_expressions() {
        let k = base()
            .local("f", Scalar::fixed(32, 17))
            .body([Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))])
            .build()
            .unwrap();
        let env = TypeEnv::new(&k);
        let t = env.infer(&Expr::var("f").mul(Expr::var("f"))).unwrap();
        assert_eq!(t, Scalar::fixed(64, 34));
        let t = env.infer(&Expr::var("x").lt(Expr::cint(5))).unwrap();
        assert_eq!(t, Scalar::uint(1));
    }
}
