//! Micro-benchmark: execution-engine streaming throughput — the chunked
//! channel transport of the host KPN engine against its per-token
//! baseline, cosim stall skip-ahead on/off, and idle-network stepping.
//!
//! `cargo bench -p pld-bench --bench streaming`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfg::{run_graph_threaded_with, Graph, GraphBuilder, Target, ThreadedConfig};
use kir::types::Value;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use noc::BftNoc;
use pld::{compile, CompileOptions, CosimConfig, OptLevel};
use rosetta::Scale;

fn word_values(n: u32) -> Vec<Value> {
    (0..n)
        .map(|w| Value::Int(aplib::DynInt::from_raw(32, false, w as u128)))
        .collect()
}

/// A deep pipeline of trivial copy stages: per-token interpreter work is
/// negligible, so throughput is dominated by the channel transport under
/// measurement.
fn copy_pipeline(n_stages: usize, tokens: i64) -> Graph {
    let stage = |name: &str| {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..tokens,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap()
    };
    let mut b = GraphBuilder::new("copy_pipe");
    let ids: Vec<_> = (0..n_stages)
        .map(|i| b.add(format!("s{i}"), stage(&format!("s{i}")), Target::hw_auto()))
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n_stages - 1], "out");
    b.build().unwrap()
}

fn bench_host_kpn(c: &mut Criterion) {
    const TOKENS: i64 = 50_000;
    let g = copy_pipeline(6, TOKENS);
    let inputs = vec![("Input_1", word_values(TOKENS as u32))];
    let mut group = c.benchmark_group("host_kpn_50k_tokens_6_stages");
    group.sample_size(10);
    for chunk in [1usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let cfg = ThreadedConfig {
                    chunk,
                    ..ThreadedConfig::default()
                };
                run_graph_threaded_with(&g, &inputs, cfg).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cosim_skip_ahead(c: &mut Criterion) {
    let bench = rosetta::spam::bench(Scale::Tiny);
    let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let input_words = rosetta::util::unwords(&bench.inputs[0].1);
    let out_len = rosetta::util::unwords(&bench.run_functional()["Output_1"]).len();
    let mut group = c.benchmark_group("cosim_spam_tiny");
    group.sample_size(10);
    let configs = [
        ("cycle_by_cycle", false, false),
        ("skip_ahead", true, false),
        ("block_cache", false, true),
        ("skip_ahead+block_cache", true, true),
    ];
    for (name, skip_ahead, block_cache) in configs {
        let config = CosimConfig {
            skip_ahead,
            block_cache,
            ..CosimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, &cfg| {
            b.iter(|| {
                pld::cosim_o0_with(
                    &app,
                    std::slice::from_ref(&input_words),
                    &[out_len],
                    2_000_000_000,
                    cfg,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_noc_idle_stepping(c: &mut Criterion) {
    // One flit crosses a 1024-leaf tree while everything else idles: the
    // active-set step must not pay for the 2047 quiet switches.
    c.bench_function("noc_1024_leaves_one_flit_100k_cycles", |b| {
        b.iter(|| {
            let mut net = BftNoc::new(1024, 1, 64);
            net.set_dest(
                0,
                0,
                noc::PortAddr {
                    leaf: 1023,
                    port: 0,
                },
            );
            net.inject(0, 0, 7).unwrap();
            for _ in 0..100_000 {
                net.step();
            }
            net.cycle()
        })
    });
}

criterion_group!(
    benches,
    bench_host_kpn,
    bench_cosim_skip_ahead,
    bench_noc_idle_stepping
);
criterion_main!(benches);
