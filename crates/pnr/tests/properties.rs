//! Property tests: place-and-route must produce legal results for arbitrary
//! (fitting) netlists — every cell on a correctly-typed in-region tile with
//! capacities respected, every net routed between its true endpoints.

use fabric::{ColumnKind, Floorplan};
use netlist::{CellKind, Netlist};
use pnr::{place_and_route, PnrOptions};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a random connected netlist from a compact gene vector.
fn netlist_from_genes(genes: &[(u8, u8)]) -> Netlist {
    let mut nl = Netlist::new("gen");
    let first = nl.add_cell("in", CellKind::StreamIn { width: 32 });
    let mut cells = vec![first];
    for (i, (kind_gene, fan_gene)) in genes.iter().enumerate() {
        let kind = match kind_gene % 7 {
            0 => CellKind::Adder {
                width: 16 + (*kind_gene as u32 % 3) * 16,
            },
            1 => CellKind::Mult { width: 18 },
            2 => CellKind::Register { width: 32 },
            3 => CellKind::Logic { width: 8 },
            4 => CellKind::Mux { width: 32 },
            5 => CellKind::BramPort { bits: 4096 },
            _ => CellKind::Comparator { width: 24 },
        };
        let id = nl.add_cell(format!("c{i}"), kind);
        // Driver: some earlier cell; sequential cells break comb cycles.
        let driver = cells[*fan_gene as usize % cells.len()];
        nl.add_net(driver, vec![id], 32);
        cells.push(id);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placement_is_always_legal(
        genes in proptest::collection::vec((any::<u8>(), any::<u8>()), 3..60),
        seed in any::<u64>(),
        page in 0usize..22,
    ) {
        let nl = netlist_from_genes(&genes);
        prop_assume!(nl.check().is_ok());
        let fp = Floorplan::u50();
        let region = fp.pages[page].rect;
        let opts = PnrOptions { seed, ..Default::default() };
        let Ok(result) = place_and_route(&nl, &fp.device, region, &opts) else {
            // Netlists that genuinely exceed the page are allowed to fail.
            return Ok(());
        };

        // 1. Every cell sits on an in-region tile of its required kind.
        for (i, &(x, y)) in result.placement.assignment.iter().enumerate() {
            prop_assert!(region.contains(x, y), "cell {i} at ({x},{y}) escapes the page");
            let r = nl.cells[i].kind.resources();
            let want = if r.dsp > 0 {
                ColumnKind::Dsp
            } else if r.bram18 > 0 {
                ColumnKind::Bram
            } else {
                ColumnKind::Clb
            };
            prop_assert_eq!(fp.device.columns[x as usize], want, "cell {}", i);
        }

        // 2. Tile capacities hold for single-tile cells (multi-tile macros
        //    spread beyond their anchor and are accounted at allocation).
        let mut used: HashMap<(u32, u32), u64> = HashMap::new();
        for (i, &(x, y)) in result.placement.assignment.iter().enumerate() {
            let r = nl.cells[i].kind.resources();
            let demand = if r.dsp > 0 {
                r.dsp
            } else if r.bram18 > 0 {
                r.bram18
            } else {
                r.luts.max(r.ffs / 2).max(1)
            };
            let cap = match fp.device.columns[x as usize] {
                ColumnKind::Clb => fp.device.columns[x as usize].tile_resources().luts,
                ColumnKind::Bram => fp.device.columns[x as usize].tile_resources().bram18,
                ColumnKind::Dsp => fp.device.columns[x as usize].tile_resources().dsp,
            };
            if demand <= cap {
                *used.entry((x, y)).or_default() += demand;
            }
        }
        for ((x, _y), total) in used {
            let cap = match fp.device.columns[x as usize] {
                ColumnKind::Clb => fp.device.columns[x as usize].tile_resources().luts,
                ColumnKind::Bram => fp.device.columns[x as usize].tile_resources().bram18,
                ColumnKind::Dsp => fp.device.columns[x as usize].tile_resources().dsp,
            };
            prop_assert!(total <= cap, "tile overloaded: {total} > {cap}");
        }

        // 3. Every route starts at its driver and ends at its sink, moving
        //    one tile per hop.
        for (ni, net) in nl.nets.iter().enumerate() {
            for (si, sink) in net.sinks.iter().enumerate() {
                let path = &result.routed.routes[ni][si];
                prop_assert_eq!(
                    path.first().copied(),
                    Some(result.placement.assignment[net.driver.0])
                );
                prop_assert_eq!(path.last().copied(), Some(result.placement.assignment[sink.0]));
                for w in path.windows(2) {
                    let d = (w[1].0 as i64 - w[0].0 as i64).abs()
                        + (w[1].1 as i64 - w[0].1 as i64).abs();
                    prop_assert_eq!(d, 1);
                }
            }
        }

        // 4. Timing is sane and deterministic.
        prop_assert!(result.timing.fmax_mhz.is_finite());
        prop_assert!(result.timing.fmax_mhz > 0.0);
        let again = place_and_route(&nl, &fp.device, region, &opts).expect("still fits");
        prop_assert_eq!(again.bitstream.payload_hash, result.bitstream.payload_hash);
    }
}
