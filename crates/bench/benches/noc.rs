//! Micro-benchmark: linking-network behaviour — uplink bandwidth, neighbour
//! vs cross-root latency, hotspot deflection, and re-link configuration cost
//! (paper Sec. 4.3).
//!
//! `cargo bench -p pld-bench --bench noc`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc::{BftNoc, PortAddr};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_stream_1000_words");
    group.sample_size(20);
    for (name, dest) in [("neighbour", 1u16), ("cross_root", 31)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &dest, |b, &dest| {
            b.iter(|| {
                let mut net = BftNoc::new(32, 1, 64);
                net.set_dest(
                    0,
                    0,
                    PortAddr {
                        leaf: dest,
                        port: 0,
                    },
                );
                let mut sent = 0u32;
                while net.stats().delivered < 1000 {
                    if sent < 1000 && net.inject(0, 0, sent).is_ok() {
                        sent += 1;
                    }
                    net.step();
                }
                net.cycle()
            })
        });
    }
    group.finish();
}

fn bench_hotspot(c: &mut Criterion) {
    c.bench_function("noc_hotspot_8_to_1", |b| {
        b.iter(|| {
            let mut net = BftNoc::new(16, 1, 64);
            for i in 1..9usize {
                net.set_dest(i, 0, PortAddr { leaf: 0, port: 0 });
            }
            let mut sent = 0u64;
            while net.stats().delivered < 800 {
                for leaf in 1..9usize {
                    if sent < 800 && net.inject(leaf, 0, sent as u32).is_ok() {
                        sent += 1;
                    }
                }
                net.step();
            }
            net.stats().deflections
        })
    });
}

fn bench_relink(c: &mut Criterion) {
    // Re-linking an application is a handful of config packets — measure
    // the full deliver-and-apply cost for a 22-operator design.
    c.bench_function("noc_relink_22_pages", |b| {
        b.iter(|| {
            let mut net = BftNoc::new(24, 2, 64);
            for page in 0..22u16 {
                net.send_config(
                    22,
                    page,
                    0,
                    PortAddr {
                        leaf: (page + 1) % 22,
                        port: 0,
                    },
                )
                .expect("config fits");
            }
            net.drain(10_000);
            assert_eq!(net.stats().config_writes, 22);
            net.cycle()
        })
    });
}

criterion_group!(benches, bench_throughput, bench_hotspot, bench_relink);
criterion_main!(benches);
