//! Regenerates Tab. 2: Rosetta compile times across the flows.
//!
//! `cargo run --release -p pld-bench --bin table2 [tiny|small|medium]`
//!
//! The "Vitis Flow" column is the *fused* baseline — the same design with
//! the inter-operator stream interfaces collapsed, compiled monolithically —
//! standing in for the vendor compile of the original undecomposed
//! benchmarks (the paper's Tab. 2 found it within a few percent of the
//! decomposed `-O3` compile, as here).

use pld_bench::{compile_suite, scale_from_args, secs};

fn main() {
    let scale = scale_from_args();
    let entries = compile_suite(scale);

    println!("Table 2: Rosetta Benchmark Compile Time (virtual seconds, {scale:?} scale)\n");
    println!(
        "{:18} | {:>8} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>8}",
        "benchmark",
        "Vitis",
        "hls",
        "syn",
        "p&r",
        "bit",
        "O3total",
        "hls",
        "syn",
        "p&r",
        "bit",
        "O1total",
        "O0"
    );
    println!(
        "{:-<18}-+-{:-<8}-+-{:-<40}-+-{:-<40}-+-{:-<8}",
        "", "", "", "", ""
    );
    for e in &entries {
        let vitis =
            e.o3.monolithic
                .as_ref()
                .and_then(|m| m.fused_vtime)
                .map(|t| secs(t.total()))
                .unwrap_or_else(|| "-".into());
        let o3 = e.o3.vtime_serial;
        // -O1 pages compile in parallel: the slowest page defines the turn.
        let o1 = e.o1.vtime_parallel;
        let o0 = e.o0.vtime_parallel.total();
        println!(
            "{:18} | {:>8} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>7} {:>7} {:>7} {:>7} {:>8} | {:>8}",
            e.bench.name,
            vitis,
            secs(o3.hls),
            secs(o3.syn),
            secs(o3.pnr),
            secs(o3.bit),
            secs(o3.total()),
            secs(o1.hls),
            secs(o1.syn),
            secs(o1.pnr),
            secs(o1.bit),
            secs(o1.total()),
            secs(o0),
        );
    }

    println!("\nmeasured toolchain wall-clock (this machine, seconds):");
    println!(
        "{:18} {:>10} {:>10} {:>10}",
        "benchmark", "-O3", "-O1", "-O0"
    );
    for e in &entries {
        println!(
            "{:18} {:>10.2} {:>10.2} {:>10.3}",
            e.bench.name, e.o3.wall_seconds, e.o1.wall_seconds, e.o0.wall_seconds
        );
    }

    // The paper's headline ratios.
    println!("\nspeedups over the monolithic flow:");
    println!("{:18} {:>12} {:>12}", "benchmark", "O3/O1", "O3/O0");
    for e in &entries {
        let o3 = e.o3.compile_seconds();
        println!(
            "{:18} {:>11.1}x {:>11.0}x",
            e.bench.name,
            o3 / e.o1.compile_seconds(),
            o3 / e.o0.compile_seconds(),
        );
    }
    println!("\npaper shape: -O1 4.2-7.3x faster than monolithic; -O0 under 4 s.");
}
