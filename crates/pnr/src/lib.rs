#![warn(missing_docs)]
//! Place & route: the expensive half of FPGA compilation.
//!
//! "Placement and routing problems are all NP-hard problems, typically solved
//! by heuristics, and the good heuristics in use are super-linear" (paper
//! Sec. 2.2) — and Tab. 2 shows p&r taking roughly half of every Vitis
//! compile. This crate implements the textbook versions of those heuristics
//! on the `fabric` tile grid:
//!
//! * [`mod@place`] — simulated-annealing placement minimizing half-perimeter
//!   wirelength, with per-tile capacity legality over the heterogeneous
//!   CLB/BRAM/DSP columns;
//! * [`mod@route`] — PathFinder-style negotiated-congestion routing over
//!   capacitated channel edges;
//! * [`timing`] — static timing analysis combining intrinsic cell delays
//!   with routed wire delays and SLR-crossing penalties (Sec. 2.5);
//! * [`bitstream`] — configuration artifacts whose size is proportional to
//!   the (partial) region being programmed, the property partial
//!   reconfiguration exploits for fast loading (Sec. 2.3).
//!
//! Because the algorithms are the real ones, the paper's headline behaviour
//! *emerges* rather than being hard-coded: compiling one operator onto one
//! ~100-tile page is dramatically cheaper than compiling a whole application
//! onto the 4,000-tile device, and an abstract-shell compile (region-scoped
//! context, Sec. 4.1) beats a full-context compile.

pub mod bitstream;
pub mod place;
pub mod route;
pub mod timing;

pub use bitstream::Bitstream;
pub use place::{place, Placement};
pub use route::{route, RoutedDesign};
pub use timing::{analyze_timing, TimingReport};

use fabric::{Device, Rect};
use netlist::Netlist;
use std::fmt;

/// Options controlling a place-and-route run.
#[derive(Debug, Clone, Copy)]
pub struct PnrOptions {
    /// RNG seed; equal seeds give identical results.
    pub seed: u64,
    /// Use the abstract shell: scope all work to the target region. When
    /// `false`, the tools carry the whole device as context (the slow
    /// pre-abstract-shell behaviour the paper contrasts in Sec. 4.1).
    pub abstract_shell: bool,
    /// Simulated-annealing effort multiplier (1.0 = default schedule).
    pub effort: f64,
}

impl Default for PnrOptions {
    fn default() -> Self {
        PnrOptions {
            seed: 1,
            abstract_shell: true,
            effort: 1.0,
        }
    }
}

/// The product of a successful place-and-route run.
#[derive(Debug, Clone)]
pub struct PnrResult {
    /// Final placement.
    pub placement: Placement,
    /// Routed design.
    pub routed: RoutedDesign,
    /// Timing closure report.
    pub timing: TimingReport,
    /// The configuration bitstream for the target region.
    pub bitstream: Bitstream,
    /// Wall-clock seconds spent in placement.
    pub place_seconds: f64,
    /// Wall-clock seconds spent in routing.
    pub route_seconds: f64,
    /// Abstract work units (for the calibrated virtual-time model).
    pub work_units: u64,
}

/// Failure of a place-and-route run.
#[derive(Debug, Clone, PartialEq)]
pub enum PnrError {
    /// The design demands more resources than the region offers.
    #[allow(missing_docs)]
    DoesNotFit { what: String },
    /// The netlist failed structural validation.
    BadNetlist(netlist::NetlistError),
    /// Routing could not resolve congestion within the iteration budget.
    #[allow(missing_docs)]
    Unroutable { overused_edges: u32 },
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::DoesNotFit { what } => write!(f, "design does not fit region: {what}"),
            PnrError::BadNetlist(e) => write!(f, "netlist error: {e}"),
            PnrError::Unroutable { overused_edges } => {
                write!(f, "routing failed with {overused_edges} overused edges")
            }
        }
    }
}

impl std::error::Error for PnrError {}

impl From<netlist::NetlistError> for PnrError {
    fn from(e: netlist::NetlistError) -> Self {
        PnrError::BadNetlist(e)
    }
}

/// Places and routes `netlist` into `region` of `device`.
///
/// This is the work the paper's `-O1` flow does once per page (fast, small
/// region) and the `-O3`/Vitis flow does once for the whole device (slow).
///
/// # Errors
///
/// See [`PnrError`].
pub fn place_and_route(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    netlist.check()?;

    let t0 = std::time::Instant::now();
    let placement = place::place(netlist, device, region, options)?;
    let place_seconds = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let routed = route::route(netlist, device, region, &placement, options)?;
    let route_seconds = t1.elapsed().as_secs_f64();

    let timing = timing::analyze_timing(netlist, device, &placement, &routed);
    let bitstream =
        bitstream::Bitstream::generate(netlist, region, &placement, &routed, options.seed);

    // Work units: SA moves plus router edge relaxations, the superlinear
    // quantities the virtual-time model maps to Vitis-scale seconds.
    let work_units = placement.moves_evaluated + routed.edges_relaxed;

    Ok(PnrResult {
        placement,
        routed,
        timing,
        bitstream,
        place_seconds,
        route_seconds,
        work_units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::CellKind;

    fn datapath(cells: usize) -> Netlist {
        let mut nl = Netlist::new("dp");
        let input = nl.add_cell("in", CellKind::StreamIn { width: 32 });
        let mut prev = input;
        for i in 0..cells {
            let kind = match i % 4 {
                0 => CellKind::Adder { width: 32 },
                1 => CellKind::Mult { width: 18 },
                2 => CellKind::Register { width: 32 },
                _ => CellKind::Logic { width: 32 },
            };
            let c = nl.add_cell(format!("c{i}"), kind);
            nl.add_net(prev, vec![c], 32);
            prev = c;
        }
        let out = nl.add_cell("out", CellKind::StreamOut { width: 32 });
        nl.add_net(prev, vec![out], 32);
        nl
    }

    fn page() -> (Device, Rect) {
        let fp = fabric::Floorplan::u50();
        let rect = fp.pages[0].rect;
        (fp.device, rect)
    }

    #[test]
    fn small_design_closes_on_a_page() {
        let (device, region) = page();
        let nl = datapath(40);
        let result = place_and_route(&nl, &device, region, &PnrOptions::default()).unwrap();
        assert_eq!(result.routed.overused_edges, 0);
        assert!(
            result.timing.fmax_mhz > 100.0,
            "fmax {}",
            result.timing.fmax_mhz
        );
        assert!(result.timing.fmax_mhz < 800.0);
        assert!(result.work_units > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let (device, region) = page();
        let nl = datapath(30);
        let opts = PnrOptions {
            seed: 42,
            ..Default::default()
        };
        let a = place_and_route(&nl, &device, region, &opts).unwrap();
        let b = place_and_route(&nl, &device, region, &opts).unwrap();
        assert_eq!(a.placement.assignment, b.placement.assignment);
        assert_eq!(a.bitstream.payload_hash, b.bitstream.payload_hash);
        let c = place_and_route(
            &nl,
            &device,
            region,
            &PnrOptions {
                seed: 43,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.placement.assignment, c.placement.assignment);
    }

    #[test]
    fn oversized_design_rejected() {
        let (device, region) = page();
        let mut nl = Netlist::new("huge");
        let a = nl.add_cell("a", CellKind::Logic { width: 1 });
        // 300 BRAM cells cannot fit a page with ~60-120 BRAM18s.
        let mut prev = a;
        for i in 0..300 {
            let c = nl.add_cell(format!("m{i}"), CellKind::BramPort { bits: 18 * 1024 });
            nl.add_net(prev, vec![c], 32);
            prev = c;
        }
        let err = place_and_route(&nl, &device, region, &PnrOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::DoesNotFit { .. }));
    }

    #[test]
    fn page_compile_is_cheaper_than_whole_device() {
        // The paper's core claim: effort scales with region × design size.
        let fp = fabric::Floorplan::u50();
        let nl = datapath(60);
        let small =
            place_and_route(&nl, &fp.device, fp.pages[0].rect, &PnrOptions::default()).unwrap();
        let whole = place_and_route(
            &nl,
            &fp.device,
            fabric::Rect::new(2, 0, 22, 40),
            &PnrOptions::default(),
        )
        .unwrap();
        assert!(
            whole.work_units > small.work_units,
            "whole-region work {} should exceed page work {}",
            whole.work_units,
            small.work_units
        );
    }
}
