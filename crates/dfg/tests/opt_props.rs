//! Differential proptests for the KPN optimizer.
//!
//! The optimizer's contract is bit-exact semantics preservation: for any
//! generated application, the optimized graph (with its solved channel
//! depths) must produce token streams identical to the original under both
//! the sequential interpreter and the threaded engine. By the Kahn property
//! the sequential run is the golden reference, so a single comparison per
//! engine covers all schedules.

use dfg::generate::{generate_family, GenConfig, FAMILIES};
use dfg::opt::{optimize, OptimizerConfig};
use dfg::{run_graph, run_graph_threaded_with, ThreadedConfig};
use proptest::prelude::*;

fn optimizer_cases() -> u32 {
    // CI smoke runs set PROPTEST_CASES to keep wall time small.
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(optimizer_cases()))]

    /// Default optimizer (all passes) is bit-identical on every family,
    /// under both the sequential interpreter and the threaded engine with
    /// the solved per-edge depths.
    #[test]
    fn optimized_apps_are_bit_identical(
        seed in any::<u64>(),
        tokens in 16u64..96,
        fam in 0..FAMILIES.len(),
    ) {
        let cfg = GenConfig { seed, tokens, max_stages: 5 };
        let app = generate_family(&cfg, FAMILIES[fam]).unwrap();
        let inputs = app.input_refs();
        let opt = optimize(&app.graph, &OptimizerConfig::default());

        let (base, _) = run_graph(&app.graph, &inputs).unwrap();
        let (opt_exec, _) = run_graph(&opt.graph, &inputs).unwrap();
        prop_assert_eq!(&base, &opt_exec, "exec divergence on {}", app.family);

        let tcfg = ThreadedConfig {
            edge_depths: Some(opt.edge_depths.clone()),
            ..ThreadedConfig::default()
        };
        let opt_thr = run_graph_threaded_with(&opt.graph, &inputs, tcfg).unwrap();
        prop_assert_eq!(&base, &opt_thr, "threaded divergence on {}", app.family);
    }

    /// Every single-pass configuration is independently bit-identical, so a
    /// regression in one pass cannot hide behind another.
    #[test]
    fn each_pass_is_independently_sound(
        seed in any::<u64>(),
        tokens in 16u64..64,
        fam in 0..FAMILIES.len(),
        pass in 0usize..3,
    ) {
        let cfg = GenConfig { seed, tokens, max_stages: 4 };
        let app = generate_family(&cfg, FAMILIES[fam]).unwrap();
        let inputs = app.input_refs();
        let ocfg = OptimizerConfig {
            size_channels: pass == 0,
            fuse: pass == 1,
            fission: pass == 2,
            fission_min_ops: 512,
            ..OptimizerConfig::default()
        };
        let opt = optimize(&app.graph, &ocfg);

        let (base, _) = run_graph(&app.graph, &inputs).unwrap();
        let (opt_exec, _) = run_graph(&opt.graph, &inputs).unwrap();
        prop_assert_eq!(&base, &opt_exec, "pass {} exec divergence", pass);

        let tcfg = ThreadedConfig {
            edge_depths: Some(opt.edge_depths.clone()),
            ..ThreadedConfig::default()
        };
        let opt_thr = run_graph_threaded_with(&opt.graph, &inputs, tcfg).unwrap();
        prop_assert_eq!(&base, &opt_thr, "pass {} threaded divergence", pass);
    }

    /// Shrinking channels to the solved depths never deadlocks and never
    /// changes results even on the *unoptimized* graph (depths are a pure
    /// scheduling knob).
    #[test]
    fn solved_depths_are_schedule_only(
        seed in any::<u64>(),
        tokens in 16u64..64,
        fam in 0..FAMILIES.len(),
        chunk in 1usize..8,
    ) {
        let cfg = GenConfig { seed, tokens, max_stages: 4 };
        let app = generate_family(&cfg, FAMILIES[fam]).unwrap();
        let inputs = app.input_refs();
        let opt = optimize(&app.graph, &OptimizerConfig::default());

        let (base, _) = run_graph(&app.graph, &inputs).unwrap();
        let tcfg = ThreadedConfig {
            edge_depths: Some(vec![1; app.graph.edges.len()]),
            chunk,
            ..ThreadedConfig::default()
        };
        let thr = run_graph_threaded_with(&app.graph, &inputs, tcfg).unwrap();
        prop_assert_eq!(&base, &thr, "depth-1 divergence on {}", app.family);
        prop_assert_eq!(opt.edge_depths.len(), opt.graph.edges.len());
    }
}
