//! Kernel expressions.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::types::Scalar;

/// Binary operators available to kernels.
///
/// These are the operations Vitis_HLS synthesizes directly into datapath
/// logic; each maps to a macro cell in `hlsim` and to one or a few RV32IM
/// instructions in the softcore compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    #[allow(missing_docs)]
    Add,
    #[allow(missing_docs)]
    Sub,
    #[allow(missing_docs)]
    Mul,
    #[allow(missing_docs)]
    Div,
    #[allow(missing_docs)]
    Rem,
    #[allow(missing_docs)]
    And,
    #[allow(missing_docs)]
    Or,
    #[allow(missing_docs)]
    Xor,
    #[allow(missing_docs)]
    Shl,
    #[allow(missing_docs)]
    Shr,
    #[allow(missing_docs)]
    Eq,
    #[allow(missing_docs)]
    Ne,
    #[allow(missing_docs)]
    Lt,
    #[allow(missing_docs)]
    Le,
    #[allow(missing_docs)]
    Gt,
    #[allow(missing_docs)]
    Ge,
    /// Logical AND: both operands tested against zero.
    LAnd,
    /// Logical OR: both operands tested against zero.
    LOr,
    #[allow(missing_docs)]
    Min,
    #[allow(missing_docs)]
    Max,
}

impl BinOp {
    /// Whether the operator yields a single-bit boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LAnd
                | BinOp::LOr
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Unary operators available to kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical negation (`!x`, tests against zero).
    LNot,
    /// Absolute value.
    Abs,
}

/// A kernel expression tree.
///
/// Expressions are pure: all side effects (stream I/O, stores) live in
/// [`crate::Stmt`], which is what lets the HLS backend schedule expression
/// DAGs freely within a loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A typed integer literal (raw two's-complement bits of the scalar).
    #[allow(missing_docs)]
    Const { raw: i128, ty: Scalar },
    /// A scalar variable, loop index, or parameter reference.
    Var(String),
    /// An element load: `array[index]`.
    #[allow(missing_docs)]
    ArrayGet { array: String, index: Box<Expr> },
    /// A unary operation.
    #[allow(missing_docs)]
    Un { op: UnOp, arg: Box<Expr> },
    /// A binary operation.
    #[allow(missing_docs)]
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// An explicit conversion to `ty` with `ap` assignment semantics.
    #[allow(missing_docs)]
    Cast { ty: Scalar, arg: Box<Expr> },
    /// `cond ? then_val : else_val`, synthesized as a mux.
    #[allow(missing_docs)]
    Select {
        cond: Box<Expr>,
        then_val: Box<Expr>,
        else_val: Box<Expr>,
    },
    /// The `ap_int` range select `arg(hi, lo)`, an unsigned bit-slice.
    #[allow(missing_docs)]
    BitRange { arg: Box<Expr>, hi: u32, lo: u32 },
}

impl Expr {
    /// An integer constant of type `ap_int<32>`.
    pub fn cint(v: i64) -> Expr {
        Expr::Const {
            raw: v as i128,
            ty: Scalar::int(32),
        }
    }

    /// An integer constant of an explicit type.
    pub fn cint_ty(v: i128, ty: Scalar) -> Expr {
        Expr::Const { raw: v, ty }
    }

    /// A fixed-point constant: `value` rounded into shape `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a fixed-point scalar.
    pub fn cfixed(value: f64, ty: Scalar) -> Expr {
        match ty {
            Scalar::Fixed {
                width,
                int_bits,
                signed,
            } => {
                let raw = aplib::DynFixed::from_f64(width, int_bits, signed, value).raw();
                Expr::Const {
                    raw: raw as i128,
                    ty,
                }
            }
            Scalar::Int { .. } => panic!("cfixed requires a fixed-point type"),
        }
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// An array element load.
    pub fn index(array: impl Into<String>, index: Expr) -> Expr {
        Expr::ArrayGet {
            array: array.into(),
            index: Box::new(index),
        }
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// `self / rhs` (division by zero yields zero).
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    /// `self % rhs` (remainder by zero yields zero).
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }
    /// Bitwise `self & rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// Bitwise `self | rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// Bitwise `self ^ rhs`.
    pub fn xor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }
    /// `self << rhs`.
    pub fn shl(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shl, rhs)
    }
    /// `self >> rhs` (arithmetic when signed).
    pub fn shr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shr, rhs)
    }
    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// Logical `self && rhs`.
    pub fn land(self, rhs: Expr) -> Expr {
        self.bin(BinOp::LAnd, rhs)
    }
    /// Logical `self || rhs`.
    pub fn lor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::LOr, rhs)
    }
    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Min, rhs)
    }
    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Max, rhs)
    }

    /// Arithmetic negation `-self`.
    pub fn neg(self) -> Expr {
        Expr::Un {
            op: UnOp::Neg,
            arg: Box::new(self),
        }
    }
    /// Bitwise complement `~self`.
    pub fn not(self) -> Expr {
        Expr::Un {
            op: UnOp::Not,
            arg: Box::new(self),
        }
    }
    /// Logical negation `!self`.
    pub fn lnot(self) -> Expr {
        Expr::Un {
            op: UnOp::LNot,
            arg: Box::new(self),
        }
    }
    /// Absolute value `|self|`.
    pub fn abs(self) -> Expr {
        Expr::Un {
            op: UnOp::Abs,
            arg: Box::new(self),
        }
    }

    /// Explicit conversion to `ty`.
    pub fn cast(self, ty: Scalar) -> Expr {
        Expr::Cast {
            ty,
            arg: Box::new(self),
        }
    }

    /// `self ? then_val : else_val`.
    pub fn select(self, then_val: Expr, else_val: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(self),
            then_val: Box::new(then_val),
            else_val: Box::new(else_val),
        }
    }

    /// Bit slice `self(hi, lo)`.
    pub fn bits(self, hi: u32, lo: u32) -> Expr {
        Expr::BitRange {
            arg: Box::new(self),
            hi,
            lo,
        }
    }

    /// Number of operation nodes in the tree (used by cost models).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const { .. } | Expr::Var(_) => 0,
            Expr::ArrayGet { index, .. } => 1 + index.op_count(),
            Expr::Un { arg, .. } => 1 + arg.op_count(),
            Expr::Bin { lhs, rhs, .. } => 1 + lhs.op_count() + rhs.op_count(),
            Expr::Cast { arg, .. } => arg.op_count(),
            Expr::Select {
                cond,
                then_val,
                else_val,
            } => 1 + cond.op_count() + then_val.op_count() + else_val.op_count(),
            Expr::BitRange { arg, .. } => arg.op_count(),
        }
    }

    /// Visits every node in the tree, children before parents.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Expr::Const { .. } | Expr::Var(_) => {}
            Expr::ArrayGet { index, .. } => index.visit(f),
            Expr::Un { arg, .. } | Expr::Cast { arg, .. } | Expr::BitRange { arg, .. } => {
                arg.visit(f)
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Select {
                cond,
                then_val,
                else_val,
            } => {
                cond.visit(f);
                then_val.visit(f);
                else_val.visit(f);
            }
        }
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_tree() {
        let e = Expr::var("a").add(Expr::cint(1)).mul(Expr::var("b"));
        match &e {
            Expr::Bin {
                op: BinOp::Mul,
                lhs,
                ..
            } => match lhs.as_ref() {
                Expr::Bin { op: BinOp::Add, .. } => {}
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected root {other:?}"),
        }
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn visit_covers_all_nodes() {
        let e = Expr::var("c").select(Expr::var("a"), Expr::var("b").neg());
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 5); // 3 vars + neg + select
    }

    #[test]
    fn cfixed_encodes_raw_bits() {
        let e = Expr::cfixed(1.5, Scalar::fixed(32, 17));
        match e {
            Expr::Const { raw, .. } => assert_eq!(raw, (3 << 14) as i128),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "fixed-point")]
    fn cfixed_rejects_int_types() {
        Expr::cfixed(1.0, Scalar::int(32));
    }
}
