//! Mapping targets: the `#pragma target=...` directive (paper Fig. 2(a)).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where an operator is mapped, as selected by its header pragma.
///
/// Changing the target is the paper's whole development loop: flip a pragma
/// from `RISCV` to `HW` and the tool flow recompiles just that operator from
/// seconds-scale softcore code to a minutes-scale FPGA page, without touching
/// the rest of the design (Sec. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Native FPGA logic on a PLD page (`target=HW`): the `-O1` flow.
    Hw {
        /// Physical page number (`p_num=N`), or `None` to let the mapper pick.
        page: Option<u32>,
    },
    /// A PicoRV32-class softcore overlay on a page (`target=RISCV`): `-O0`.
    Riscv {
        /// Physical page number (`p_num=N`), or `None` to let the mapper pick.
        page: Option<u32>,
    },
}

impl Target {
    /// `target=HW` with an explicit page.
    pub const fn hw(page: u32) -> Target {
        Target::Hw { page: Some(page) }
    }

    /// `target=HW` with automatic page assignment.
    pub const fn hw_auto() -> Target {
        Target::Hw { page: None }
    }

    /// `target=RISCV` with an explicit page.
    pub const fn riscv(page: u32) -> Target {
        Target::Riscv { page: Some(page) }
    }

    /// `target=RISCV` with automatic page assignment.
    pub const fn riscv_auto() -> Target {
        Target::Riscv { page: None }
    }

    /// Whether this target maps to native FPGA logic.
    pub fn is_hw(self) -> bool {
        matches!(self, Target::Hw { .. })
    }

    /// The requested physical page, if pinned.
    pub fn page(self) -> Option<u32> {
        match self {
            Target::Hw { page } | Target::Riscv { page } => page,
        }
    }

    /// Returns a copy pinned to `page`.
    pub fn with_page(self, page: u32) -> Target {
        match self {
            Target::Hw { .. } => Target::Hw { page: Some(page) },
            Target::Riscv { .. } => Target::Riscv { page: Some(page) },
        }
    }

    /// Parses the paper's pragma syntax, e.g. `#pragma target=HW p_num=8`.
    ///
    /// The leading `#pragma` is optional; `p_num` is optional; tokens are
    /// whitespace-separated.
    ///
    /// # Errors
    ///
    /// Returns [`PragmaError`] on unknown targets, malformed `p_num` values,
    /// or stray tokens.
    pub fn parse_pragma(text: &str) -> Result<Target, PragmaError> {
        let mut target: Option<&str> = None;
        let mut page: Option<u32> = None;
        for tok in text.split_whitespace() {
            if tok == "#pragma" {
                continue;
            }
            if let Some(v) = tok.strip_prefix("target=") {
                target = Some(v);
            } else if let Some(v) = tok.strip_prefix("p_num=") {
                page = Some(
                    v.parse()
                        .map_err(|_| PragmaError::BadPageNumber(v.to_string()))?,
                );
            } else {
                return Err(PragmaError::UnknownToken(tok.to_string()));
            }
        }
        match target {
            Some("HW") => Ok(Target::Hw { page }),
            Some("RISCV") => Ok(Target::Riscv { page }),
            Some(other) => Err(PragmaError::UnknownTarget(other.to_string())),
            None => Err(PragmaError::MissingTarget),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Hw { page: Some(p) } => write!(f, "#pragma target=HW p_num={p}"),
            Target::Hw { page: None } => write!(f, "#pragma target=HW"),
            Target::Riscv { page: Some(p) } => write!(f, "#pragma target=RISCV p_num={p}"),
            Target::Riscv { page: None } => write!(f, "#pragma target=RISCV"),
        }
    }
}

/// Error parsing a `#pragma target=...` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaError {
    /// No `target=` token present.
    MissingTarget,
    /// `target=` names something other than `HW` or `RISCV`.
    UnknownTarget(String),
    /// `p_num=` value is not an unsigned integer.
    BadPageNumber(String),
    /// An unrecognized token appeared in the pragma.
    UnknownToken(String),
}

impl fmt::Display for PragmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PragmaError::MissingTarget => write!(f, "pragma has no target= token"),
            PragmaError::UnknownTarget(t) => {
                write!(f, "unknown target `{t}` (expected HW or RISCV)")
            }
            PragmaError::BadPageNumber(v) => write!(f, "p_num value `{v}` is not a page number"),
            PragmaError::UnknownToken(t) => write!(f, "unrecognized pragma token `{t}`"),
        }
    }
}

impl std::error::Error for PragmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // Fig. 2(a) line 3.
        let t = Target::parse_pragma("#pragma target=HW  p_num=8").unwrap();
        assert_eq!(t, Target::hw(8));
        // Fig. 2(a) line 4 (commented alternative).
        let t = Target::parse_pragma("target=RISCV p_num=8").unwrap();
        assert_eq!(t, Target::riscv(8));
    }

    #[test]
    fn page_is_optional() {
        assert_eq!(
            Target::parse_pragma("target=HW").unwrap(),
            Target::hw_auto()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            Target::parse_pragma("p_num=1"),
            Err(PragmaError::MissingTarget)
        );
        assert_eq!(
            Target::parse_pragma("target=GPU"),
            Err(PragmaError::UnknownTarget("GPU".into()))
        );
        assert_eq!(
            Target::parse_pragma("target=HW p_num=banana"),
            Err(PragmaError::BadPageNumber("banana".into()))
        );
        assert_eq!(
            Target::parse_pragma("target=HW fast"),
            Err(PragmaError::UnknownToken("fast".into()))
        );
    }

    #[test]
    fn display_roundtrips() {
        for t in [
            Target::hw(3),
            Target::hw_auto(),
            Target::riscv(7),
            Target::riscv_auto(),
        ] {
            assert_eq!(Target::parse_pragma(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn with_page_pins() {
        assert_eq!(Target::hw_auto().with_page(5), Target::hw(5));
        assert_eq!(Target::riscv(1).with_page(5), Target::riscv(5));
        assert_eq!(Target::hw(5).page(), Some(5));
        assert!(Target::hw_auto().page().is_none());
    }
}
