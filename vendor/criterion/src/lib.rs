//! Offline stand-in for the `criterion` benchmarking surface this workspace
//! uses. It runs each benchmark closure a small fixed number of iterations,
//! reports best/mean wall-clock per iteration on stdout, and skips the
//! statistical machinery — enough to keep the `benches/` directory honest
//! (compiling, runnable, producing numbers) without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    best: Duration,
    mean: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.best = best;
        self.mean = total / self.iters as u32;
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size.clamp(1, 10) as u64,
        best: Duration::ZERO,
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("{label:<48} best {:>12.3?}  mean {:>12.3?}", b.best, b.mean);
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub_smoke", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
