//! Micro-benchmark: incremental rebuild cost — edit 1 of N operators and
//! measure the rebuild against a cold build (the Sec. 6 Makefile-discipline
//! claim).
//!
//! `cargo bench -p pld-bench --bench incremental`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfg::{Graph, GraphBuilder, Target};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{BuildCache, CompileOptions, OptLevel};

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..64,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .expect("kernel is well-formed")
}

fn pipeline(n: usize, edit: Option<(usize, i64)>) -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let addend = match edit {
                Some((op, a)) if op == i => a,
                _ => i as i64,
            };
            b.add(
                format!("op{i}"),
                stage(&format!("op{i}"), addend),
                Target::hw(i as u32),
            )
        })
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n - 1], "out");
    b.build().expect("graph is well-formed")
}

fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_one_of_n");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("cold_build", n), &n, |b, &n| {
            let g = pipeline(n, None);
            b.iter(|| {
                let mut cache = BuildCache::new();
                cache
                    .compile(&g, &CompileOptions::new(OptLevel::O1))
                    .expect("compiles")
            })
        });
        group.bench_with_input(BenchmarkId::new("edit_one", n), &n, |b, &n| {
            let mut cache = BuildCache::new();
            cache
                .compile(&pipeline(n, None), &CompileOptions::new(OptLevel::O1))
                .expect("warm");
            // The store is content-addressed and keeps every version, so a
            // repeated edit would be a full hit: give every iteration a
            // never-seen addend so exactly one operator recompiles.
            let mut addend = 1_000i64;
            b.iter(|| {
                addend += 1;
                cache
                    .compile(
                        &pipeline(n, Some((n / 2, addend))),
                        &CompileOptions::new(OptLevel::O1),
                    )
                    .expect("incr")
            })
        });
        group.bench_with_input(BenchmarkId::new("noop_rebuild", n), &n, |b, &n| {
            let g = pipeline(n, None);
            let mut cache = BuildCache::new();
            cache
                .compile(&g, &CompileOptions::new(OptLevel::O1))
                .expect("warm");
            b.iter(|| {
                // Pure stage-key probing: zero executions, every stage hit.
                let app = cache
                    .compile(&g, &CompileOptions::new(OptLevel::O1))
                    .expect("noop");
                assert_eq!(cache.last_report().unwrap().total_executions(), 0);
                app
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rebuild);
criterion_main!(benches);
