//! Incremental compilation: rebuild only what changed.
//!
//! "We develop a standard Makefile configuration so only the pages with
//! changing logic must be recompiled" (paper Sec. 6). The [`BuildCache`] is
//! a thin compatibility wrapper over the staged build graph
//! ([`mod@crate::build`]): it owns a persistent [`ArtifactStore`] and counts
//! operator-level hits and misses on top of the store's stage-level
//! accounting. Because every stage key covers *all* of its inputs — kernel
//! source, resolved target, page rect, device, seed — an edit to any of them
//! forces exactly the affected stages to re-run, in parallel on the build
//! farm, while everything else (down to the HLS netlist behind a seed-only
//! P&R rerun) is reused.

use dfg::Graph;
use fabric::PageId;
use std::collections::HashMap;
use std::io;
use std::path::Path;

use crate::build::{build_with_prev, BuildReport};
use crate::cache::{CacheBackend, SpeculationConfig, SpeculationStats, Speculator, TieredCache};
use crate::flow::{source_hash, CompileError, CompileOptions, CompiledApp, OptLevel};
use crate::store::{ArtifactStore, StageKey, StageKind};

/// A persistent build cache across compiles of the same application,
/// backed by a [`TieredCache`]: an in-memory L1 (the classic
/// [`ArtifactStore`]) and, when opened on a directory, a persistent
/// on-disk L2 shared with other builder processes. Optionally runs
/// speculative compiles between demand builds
/// ([`BuildCache::enable_speculation`]).
#[derive(Default)]
pub struct BuildCache {
    cache: TieredCache,
    /// Operators fully served from the store (zero stage executions),
    /// across all paged compiles.
    pub hits: u64,
    /// Operators that executed at least one stage, across all paged
    /// compiles.
    pub misses: u64,
    last_report: Option<BuildReport>,
    last_graph: Option<Graph>,
    spec: Option<Speculator>,
}

impl BuildCache {
    /// Creates an empty, memory-only cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Opens a cache over a shared persistent store directory: stage
    /// products survive this process and are visible to every other
    /// builder (or fleet device) holding the same directory open. See
    /// [`TieredCache::open`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; corrupt cache contents degrade to a
    /// cold start.
    pub fn open_dir(dir: impl AsRef<Path>) -> io::Result<BuildCache> {
        Ok(BuildCache {
            cache: TieredCache::open(dir)?,
            ..BuildCache::default()
        })
    }

    /// [`BuildCache::open_dir`] with a byte budget for the on-disk tier
    /// (cost-weighted LRU eviction at [`BuildCache::persist`] time).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_dir_with(dir: impl AsRef<Path>, budget: Option<u64>) -> io::Result<BuildCache> {
        Ok(BuildCache {
            cache: TieredCache::open_with(dir, budget)?,
            ..BuildCache::default()
        })
    }

    /// Turns on speculative compiles: after each demand build, likely-next
    /// stages are pre-compiled on background farm workers and merged into
    /// the cache (see [`mod@crate::cache::speculate`]).
    pub fn enable_speculation(&mut self, config: SpeculationConfig) {
        self.spec = Some(Speculator::new(config));
    }

    /// Counters of what speculation has done, when enabled.
    pub fn speculation_stats(&self) -> Option<SpeculationStats> {
        self.spec.as_ref().map(Speculator::stats)
    }

    /// Demand stage fetches that were served by a speculative compile.
    pub fn speculative_hits(&self) -> u64 {
        self.cache.speculative_hits()
    }

    /// Number of cached packed artifacts (one per operator version/page the
    /// cache has ever built).
    pub fn len(&self) -> usize {
        self.cache.count_kind(StageKind::BitstreamPack)
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The in-memory (L1) stage store.
    pub fn store(&self) -> &ArtifactStore {
        self.cache.l1()
    }

    /// Mutable access to the in-memory (L1) stage store.
    pub fn store_mut(&mut self) -> &mut ArtifactStore {
        self.cache.l1_mut()
    }

    /// The backing tiered cache.
    pub fn cache(&self) -> &TieredCache {
        &self.cache
    }

    /// Mutable access to the backing tiered cache.
    pub fn cache_mut(&mut self) -> &mut TieredCache {
        &mut self.cache
    }

    /// Stage-level accounting of the most recent [`BuildCache::compile`].
    pub fn last_report(&self) -> Option<&BuildReport> {
        self.last_report.as_ref()
    }

    /// Enforces the disk budget (if any) and publishes the persistent
    /// index; returns any evicted keys. No-op for a memory-only cache.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&mut self) -> io::Result<Vec<StageKey>> {
        self.cache.persist()
    }

    /// Persists the full store view to a single legacy-format file (see
    /// [`ArtifactStore::save`]). Prefer [`BuildCache::open_dir`] +
    /// [`BuildCache::persist`] for shared caches.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.cache.snapshot().save(path)
    }

    /// Re-opens a cache persisted with [`BuildCache::save`]. Hit/miss
    /// counters start at zero; the stage products are all there.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<BuildCache> {
        Ok(BuildCache {
            cache: TieredCache::from_store(ArtifactStore::load(path)?),
            ..BuildCache::default()
        })
    }

    /// Compiles a graph, reusing every stage whose inputs are unchanged.
    ///
    /// Paged levels get full phase-level incrementality. An `-O3` request
    /// also runs through the store — its HLS stages are shared with paged
    /// compiles of the same kernels — but the monolithic stitch and P&R have
    /// no separately reusable parts (exactly the paper's complaint), and
    /// `-O3` compiles are excluded from the operator-level hit/miss
    /// counters.
    ///
    /// With speculation enabled, any in-flight background batch is
    /// cancelled first (this demand build wants the workers) and its
    /// finished products merged; after the build, a new batch is launched
    /// for the likely-next stages of this edit.
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &mut self,
        graph: &Graph,
        options: &CompileOptions,
    ) -> Result<CompiledApp, CompileError> {
        if let Some(spec) = &mut self.spec {
            spec.absorb(&mut self.cache);
        }
        let (app, report) =
            build_with_prev(graph, self.last_graph.as_ref(), options, &mut self.cache)?;
        if options.level != OptLevel::O3 {
            for op in &report.operators {
                if op.executions == 0 {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
            }
        }
        if let Some(spec) = &mut self.spec {
            spec.observe(&report);
        }
        self.last_report = Some(report);
        if let Some(spec) = &mut self.spec {
            spec.launch(self.last_graph.as_ref(), graph, options, &mut self.cache);
        }
        self.last_graph = Some(graph.clone());
        Ok(app)
    }

    /// Blocks until any in-flight speculative batch completes and merges
    /// its products — the deterministic form tests and benchmarks use
    /// before probing for speculative hits.
    pub fn finish_speculation(&mut self) {
        if let Some(spec) = &mut self.spec {
            spec.wait_absorb(&mut self.cache);
        }
    }
}

/// Marks which operators changed between two versions of a graph (by
/// content hash) — what a `make`-style dependency check would report.
pub fn dirty_set(old: &Graph, new: &Graph) -> Vec<String> {
    let old_hashes: HashMap<&str, u64> = old
        .operators
        .iter()
        .map(|o| (o.name.as_str(), source_hash(&o.kernel, o.target)))
        .collect();
    new.operators
        .iter()
        .filter(|o| old_hashes.get(o.name.as_str()) != Some(&source_hash(&o.kernel, o.target)))
        .map(|o| o.name.clone())
        .collect()
}

/// Convenience: the pages whose artifacts a new compile would rewrite.
pub fn dirty_pages(app: &CompiledApp, new: &Graph) -> Vec<PageId> {
    let dirty = dirty_set(&app.graph, new);
    app.operators
        .iter()
        .filter(|o| dirty.contains(&o.name))
        .filter_map(|o| o.page)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn stage(name: &str, addend: i64) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..32,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    }

    fn pipeline(addends: [i64; 3]) -> Graph {
        let mut b = GraphBuilder::new("pipe");
        let a = b.add("a", stage("a", addends[0]), Target::hw(0));
        let c = b.add("c", stage("c", addends[1]), Target::hw(1));
        let d = b.add("d", stage("d", addends[2]), Target::hw(2));
        b.ext_input("Input_1", a, "in");
        b.connect("l1", a, "out", c, "in");
        b.connect("l2", c, "out", d, "in");
        b.ext_output("Output_1", d, "out");
        b.build().unwrap()
    }

    #[test]
    fn second_identical_build_is_all_hits() {
        let g = pipeline([1, 2, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        let first = cache.compile(&g, &opts).unwrap();
        assert_eq!(cache.misses, 3);
        let second = cache.compile(&g, &opts).unwrap();
        assert_eq!(cache.hits, 3);
        // Rebuild costs nothing; linking information identical.
        assert_eq!(second.vtime_parallel.total(), 0.0);
        assert_eq!(first.driver, second.driver);
        // A no-op rebuild performs zero stage executions of any kind.
        let report = cache.last_report().unwrap();
        assert_eq!(report.total_executions(), 0);
        assert_eq!(report.hit_rate(), 1.0);
    }

    #[test]
    fn editing_one_operator_recompiles_one() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        let full = cache.compile(&g1, &opts).unwrap();
        let incr = cache.compile(&g2, &opts).unwrap();
        assert_eq!(cache.misses, 4);
        assert_eq!(cache.hits, 2);
        // The incremental build's cost is one page compile, well below the
        // three-page full build.
        assert!(incr.vtime_serial.total() < full.vtime_serial.total() * 0.6);
        // Unchanged artifacts are bit-identical.
        assert_eq!(incr.artifacts[1].hash, full.artifacts[1].hash); // a
        assert_ne!(incr.artifacts[2].hash, full.artifacts[2].hash); // c changed
        assert_eq!(incr.artifacts[3].hash, full.artifacts[3].hash); // d
    }

    #[test]
    fn dirty_set_detects_changes() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        assert!(dirty_set(&g1, &g1).is_empty());
        assert_eq!(dirty_set(&g1, &g2), vec!["c".to_string()]);
    }

    #[test]
    fn retarget_is_a_change() {
        // Flipping a pragma HW -> RISCV recompiles that operator only.
        let g1 = pipeline([1, 2, 3]);
        let mut b = GraphBuilder::new("pipe");
        let a = b.add("a", stage("a", 1), Target::hw(0));
        let c = b.add("c", stage("c", 2), Target::riscv(1));
        let d = b.add("d", stage("d", 3), Target::hw(2));
        b.ext_input("Input_1", a, "in");
        b.connect("l1", a, "out", c, "in");
        b.connect("l2", c, "out", d, "in");
        b.ext_output("Output_1", d, "out");
        let g2 = b.build().unwrap();

        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        cache.compile(&g1, &opts).unwrap();
        let app2 = cache.compile(&g2, &opts).unwrap();
        assert_eq!(cache.misses, 4);
        assert!(app2.operators[1].soft.is_some());
        // The retargeted compile is a seconds-scale -O0 job.
        assert!(app2.vtime_serial.total() < 10.0);
    }

    #[test]
    fn dirty_pages_map_to_floorplan() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let app = cache
            .compile(&g1, &CompileOptions::new(OptLevel::O1))
            .unwrap();
        assert_eq!(dirty_pages(&app, &g2), vec![PageId(1)]);
    }

    #[test]
    fn seed_change_forces_pnr_but_reuses_hls() {
        // The regression the old operator-level key missed: `options.seed`
        // was not part of the cache identity, so a reseeded compile silently
        // reused stale placements. With staged keys the P&R stage re-runs —
        // against the cached HLS netlist.
        let g = pipeline([1, 2, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        cache.compile(&g, &opts).unwrap();
        assert_eq!((cache.hits, cache.misses), (0, 3));

        let reseeded = CompileOptions { seed: 99, ..opts };
        cache.compile(&g, &reseeded).unwrap();
        // Every operator is a (operator-level) miss...
        assert_eq!((cache.hits, cache.misses), (0, 6));
        let report = cache.last_report().unwrap();
        // ...but each one's HLS stage is a hit: only P&R and packing re-ran.
        assert_eq!(report.hits(StageKind::HlsLower), 3);
        assert_eq!(report.executions(StageKind::HlsLower), 0);
        assert_eq!(report.executions(StageKind::PlaceRoute), 3);
        assert_eq!(report.executions(StageKind::BitstreamPack), 3);
    }

    #[test]
    fn incremental_pnr_warm_starts_the_edited_page() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions {
            incremental_pnr: true,
            ..CompileOptions::new(OptLevel::O1)
        };
        let full = cache.compile(&g1, &opts).unwrap();
        let incr = cache.compile(&g2, &opts).unwrap();
        let report = cache.last_report().unwrap();
        // Exactly the edited operator's P&R missed, probed a hint, found
        // the one filed by the first build, and ran warm.
        assert_eq!(report.hint_fetches, 1);
        assert_eq!(report.hint_hits, 1);
        assert_eq!(report.warm_pnr_ops, 1);
        assert_eq!(report.warm_fallbacks, 0);
        // The warm rerun's executed P&R time is far below the cold one.
        let warm_op = incr.operators.iter().find(|o| o.name == "c").unwrap();
        let cold_op = full.operators.iter().find(|o| o.name == "c").unwrap();
        assert!(
            warm_op.vtime.pnr < cold_op.vtime.pnr / 3.0,
            "warm {} vs cold {}",
            warm_op.vtime.pnr,
            cold_op.vtime.pnr
        );
        // The from-scratch estimate still prices the stage cold.
        assert!(report.fresh_vtime_parallel.pnr > warm_op.vtime.pnr);
        // Unchanged operators' artifacts are untouched.
        assert_eq!(incr.artifacts[1].hash, full.artifacts[1].hash);
        assert_eq!(incr.artifacts[3].hash, full.artifacts[3].hash);
    }

    #[test]
    fn warm_artifacts_identical_across_farm_widths() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([4, 99, 3]);
        let hashes_at = |jobs: usize| {
            let mut cache = BuildCache::new();
            let opts = CompileOptions {
                incremental_pnr: true,
                jobs,
                ..CompileOptions::new(OptLevel::O1)
            };
            cache.compile(&g1, &opts).unwrap();
            let app = cache.compile(&g2, &opts).unwrap();
            app.artifacts.iter().map(|x| x.hash).collect::<Vec<_>>()
        };
        let one = hashes_at(1);
        assert_eq!(one, hashes_at(2));
        assert_eq!(one, hashes_at(8));
    }

    #[test]
    fn incremental_pnr_off_by_default_changes_nothing() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        cache.compile(&g1, &opts).unwrap();
        cache.compile(&g2, &opts).unwrap();
        let report = cache.last_report().unwrap();
        assert_eq!(report.hint_fetches, 0);
        assert_eq!(report.warm_pnr_ops, 0);
        assert_eq!(cache.store().count_kind(StageKind::PnrHints), 0);
    }

    #[test]
    fn parallel_rebuild_time_is_max_not_sum() {
        // Dirty operators rebuild on the farm: the app's parallel virtual
        // time must be the slowest dirty operator, not the serial sum.
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([7, 8, 3]); // two dirty operators
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        cache.compile(&g1, &opts).unwrap();
        let incr = cache.compile(&g2, &opts).unwrap();
        let dirty: Vec<_> = incr
            .operators
            .iter()
            .filter(|o| o.vtime.total() > 0.0)
            .collect();
        assert_eq!(dirty.len(), 2);
        // Parallel = phase-wise max over the dirty operators (clean ones
        // contribute zero); serial = the sum.
        let expected_parallel = dirty[0].vtime.parallel_max(&dirty[1].vtime);
        let expected_serial = dirty[0].vtime.add(&dirty[1].vtime);
        assert_eq!(incr.vtime_parallel, expected_parallel);
        assert_eq!(incr.vtime_serial, expected_serial);
        assert!(incr.vtime_parallel.total() < incr.vtime_serial.total());
    }
}
