//! Bounded MPMC channels mirroring `crossbeam::channel`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the undeliverable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full; the message comes back.
    Full(T),
    /// Every receiver is gone; the message comes back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(t) | TrySendError::Disconnected(t) => t,
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is drained and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// Drained and every sender is gone.
    Disconnected,
}

/// The sending half of a bounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a bounded channel with room for `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < state.cap {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel lock");
        }
    }

    /// Sends `msg` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the message back inside [`TrySendError`] if the channel is
    /// full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if state.queue.len() >= state.cap {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is drained and every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Receives a message without blocking.
    ///
    /// # Errors
    ///
    /// See [`TryRecvError`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Returns a blocking iterator that drains the channel until it closes.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking draining iterator over a [`Receiver`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_across_threads() {
        let (tx, rx) = bounded::<u32>(4);
        let producer = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_full_returns_message() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(2).unwrap();
    }

    #[test]
    fn recv_after_senders_drop_disconnects() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_after_receivers_drop_errors() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = bounded::<u32>(8);
        let rx2 = rx1.clone();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let a = thread::spawn(move || rx1.iter().count());
        let b = thread::spawn(move || rx2.iter().count());
        producer.join().unwrap();
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }
}
