//! Property-based tests: the arbitrary-precision types must agree with native
//! wide integer arithmetic wherever both are defined, because the whole PLD
//! story depends on one source producing identical results on FPGA pages,
//! softcores and the host (paper Sec. 3.2, 5.2).

use aplib::{DynFixed, DynInt};
use proptest::prelude::*;

fn any_width() -> impl Strategy<Value = u32> {
    1u32..=64
}

proptest! {
    #[test]
    fn add_matches_i128_mod_2w(w in any_width(), a in any::<i64>(), b in any::<i64>()) {
        let x = DynInt::from_i128(w, true, a as i128);
        let y = DynInt::from_i128(w, true, b as i128);
        let sum = x.add(y);
        let expected = DynInt::from_i128(w, true, (a as i128).wrapping_add(b as i128));
        prop_assert_eq!(sum.raw(), expected.raw());
    }

    #[test]
    fn mul_matches_i128_mod_2w(w in any_width(), a in any::<i32>(), b in any::<i32>()) {
        let x = DynInt::from_i128(w, true, a as i128);
        let y = DynInt::from_i128(w, true, b as i128);
        let prod = x.mul(y);
        // Multiplying the wrapped values at infinite precision then wrapping
        // equals wrapping the full product: both are reduction mod 2^w.
        let expected = DynInt::from_i128(
            w,
            true,
            x.to_i128().wrapping_mul(y.to_i128()),
        );
        prop_assert_eq!(prod.raw(), expected.raw());
    }

    #[test]
    fn sub_is_add_of_negation(w in any_width(), a in any::<i64>(), b in any::<i64>()) {
        let x = DynInt::from_i128(w, true, a as i128);
        let y = DynInt::from_i128(w, true, b as i128);
        prop_assert_eq!(x.sub(y).raw(), x.add(y.neg()).raw());
    }

    #[test]
    fn resize_widen_preserves_value(w in 1u32..=64, a in any::<i64>(), extra in 0u32..=64) {
        let x = DynInt::from_i128(w, true, a as i128);
        let wide = x.resize(w + extra, true);
        prop_assert_eq!(wide.to_i128(), x.to_i128());
    }

    #[test]
    fn unsigned_div_matches_u128(w in any_width(), a in any::<u64>(), b in 1u64..) {
        let x = DynInt::from_i128(w, false, a as i128);
        let y = DynInt::from_i128(w, false, b as i128);
        if !y.is_zero() {
            prop_assert_eq!(x.div(y).raw(), x.raw() / y.raw());
        }
    }

    #[test]
    fn bit_range_concat_roundtrip(raw in any::<u64>(), split in 1u32..63) {
        let v = DynInt::from_raw(64, false, raw as u128);
        let hi = v.bit_range(63, split);
        let lo = v.bit_range(split - 1, 0);
        let rebuilt = (hi.raw() << split) | lo.raw();
        prop_assert_eq!(rebuilt, raw as u128);
    }

    #[test]
    fn shift_pairs_are_inverse_for_small_values(w in 8u32..=64, a in any::<u32>(), s in 0u32..4) {
        let small = (a % 16) as i128;
        let x = DynInt::from_i128(w, false, small);
        prop_assert_eq!(x.shl(s).shr(s).to_i128(), small);
    }

    #[test]
    fn comparison_is_total_order(w in any_width(), a in any::<i64>(), b in any::<i64>()) {
        let x = DynInt::from_i128(w, true, a as i128);
        let y = DynInt::from_i128(w, true, b as i128);
        let xy = x.cmp_value(&y);
        let yx = y.cmp_value(&x);
        prop_assert_eq!(xy, yx.reverse());
    }
}

proptest! {
    #[test]
    fn fixed_add_matches_f64_when_exact(
        int_bits in 2i32..20,
        a in -1000i64..1000,
        b in -1000i64..1000,
    ) {
        // Halves are exactly representable for any frac >= 1.
        let width = (int_bits + 12) as u32;
        let x = DynFixed::from_f64(width, int_bits + 11, true, a as f64 / 2.0);
        let y = DynFixed::from_f64(width, int_bits + 11, true, b as f64 / 2.0);
        // Only check when both inputs survived the wrap intact.
        if x.to_f64() == a as f64 / 2.0 && y.to_f64() == b as f64 / 2.0 {
            prop_assert_eq!(x.add(y).to_f64(), (a + b) as f64 / 2.0);
        }
    }

    #[test]
    fn fixed_mul_commutes(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        let x = DynFixed::from_f64(32, 17, true, a);
        let y = DynFixed::from_f64(32, 17, true, b);
        prop_assert_eq!(x.mul(y).raw(), y.mul(x).raw());
    }

    #[test]
    fn fixed_neg_is_involution(a in -1000.0f64..1000.0) {
        let x = DynFixed::from_f64(32, 17, true, a);
        prop_assert_eq!(x.neg().neg().raw(), x.raw());
    }

    #[test]
    fn fixed_resize_widen_is_lossless(a in -100.0f64..100.0) {
        let x = DynFixed::from_f64(32, 17, true, a);
        let wide = x.resize(64, 40, true);
        prop_assert_eq!(wide.to_f64(), x.to_f64());
        prop_assert_eq!(wide.resize(32, 17, true).raw(), x.raw());
    }

    #[test]
    fn fixed_div_by_self_is_one(a in 1.0f64..1000.0) {
        let x = DynFixed::from_f64(32, 17, true, a);
        prop_assert_eq!(x.div(x).to_f64(), 1.0);
    }
}
