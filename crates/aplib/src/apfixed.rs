//! Const-generic `ap_fixed<W,I>` / `ap_ufixed<W,I>` for host-side Rust code.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::DynFixed;

macro_rules! ap_fixed_type {
    ($(#[$doc:meta])* $name:ident, $signed:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name<const W: u32, const I: i32> {
            raw: u128,
        }

        impl<const W: u32, const I: i32> $name<W, I> {
            /// Creates a value from its raw scaled bit pattern.
            ///
            /// # Panics
            ///
            /// Panics if `W` is zero or exceeds [`crate::MAX_WIDTH`].
            pub fn from_raw(raw: u128) -> Self {
                Self { raw: DynFixed::from_raw(W, I, $signed, raw).raw() }
            }

            /// Creates a value by rounding an `f64` to the nearest
            /// representable value.
            pub fn from_f64(value: f64) -> Self {
                Self { raw: DynFixed::from_f64(W, I, $signed, value).raw() }
            }

            /// Creates a value from an integer.
            pub fn from_int(value: i128) -> Self {
                Self { raw: DynFixed::from_int(W, I, $signed, value).raw() }
            }

            /// The raw scaled bit pattern.
            pub fn raw(self) -> u128 {
                self.raw
            }

            /// Converts to `f64`.
            pub fn to_f64(self) -> f64 {
                self.dyn_value().to_f64()
            }

            /// Converts to the width-as-value representation.
            pub fn dyn_value(self) -> DynFixed {
                DynFixed::from_raw(W, I, $signed, self.raw)
            }

            fn from_dyn(d: DynFixed) -> Self {
                Self { raw: d.resize(W, I, $signed).raw() }
            }
        }

        impl<const W: u32, const I: i32> From<DynFixed> for $name<W, I> {
            fn from(d: DynFixed) -> Self {
                Self::from_dyn(d)
            }
        }

        impl<const W: u32, const I: i32> Add for $name<W, I> {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self::from_dyn(self.dyn_value().add(rhs.dyn_value()))
            }
        }
        impl<const W: u32, const I: i32> Sub for $name<W, I> {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self::from_dyn(self.dyn_value().sub(rhs.dyn_value()))
            }
        }
        impl<const W: u32, const I: i32> Mul for $name<W, I> {
            type Output = Self;
            fn mul(self, rhs: Self) -> Self {
                Self::from_dyn(self.dyn_value().mul(rhs.dyn_value()))
            }
        }
        impl<const W: u32, const I: i32> Div for $name<W, I> {
            type Output = Self;
            fn div(self, rhs: Self) -> Self {
                Self::from_dyn(self.dyn_value().div(rhs.dyn_value()))
            }
        }
        impl<const W: u32, const I: i32> Neg for $name<W, I> {
            type Output = Self;
            fn neg(self) -> Self {
                Self::from_dyn(self.dyn_value().neg())
            }
        }

        impl<const W: u32, const I: i32> PartialOrd for $name<W, I> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<const W: u32, const I: i32> Ord for $name<W, I> {
            fn cmp(&self, other: &Self) -> Ordering {
                self.dyn_value().cmp_value(&other.dyn_value())
            }
        }

        impl<const W: u32, const I: i32> fmt::Debug for $name<W, I> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.dyn_value(), f)
            }
        }
        impl<const W: u32, const I: i32> fmt::Display for $name<W, I> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.dyn_value(), f)
            }
        }
    };
}

ap_fixed_type!(
    /// Signed fixed-point number, mirroring Xilinx `ap_fixed<W,I>`.
    ///
    /// `I` counts integer bits including the sign bit; `W - I` bits hold the
    /// fraction. Assignment truncates (`AP_TRN`) and wraps (`AP_WRAP`).
    ///
    /// # Examples
    ///
    /// ```
    /// use aplib::ApFixed;
    /// let a: ApFixed<32, 17> = ApFixed::from_f64(-2.5);
    /// assert_eq!((a * a).to_f64(), 6.25);
    /// ```
    ApFixed,
    true
);

ap_fixed_type!(
    /// Unsigned fixed-point number, mirroring Xilinx `ap_ufixed<W,I>`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aplib::ApUfixed;
    /// let a: ApUfixed<16, 8> = ApUfixed::from_f64(0.5);
    /// assert_eq!((a + a).to_f64(), 1.0);
    /// ```
    ApUfixed,
    false
);

#[cfg(test)]
mod tests {
    use super::*;

    type Fx = ApFixed<32, 17>;

    #[test]
    fn arithmetic() {
        let a = Fx::from_f64(12.5);
        let b = Fx::from_f64(-0.75);
        assert_eq!((a + b).to_f64(), 11.75);
        assert_eq!((a - b).to_f64(), 13.25);
        assert_eq!((a * b).to_f64(), -9.375);
        assert_eq!((a / Fx::from_f64(2.0)).to_f64(), 6.25);
        assert_eq!((-a).to_f64(), -12.5);
    }

    #[test]
    fn precision_truncation_on_assignment() {
        // 1/3 is not representable; check it truncates, not rounds up.
        let third = Fx::from_f64(1.0) / Fx::from_f64(3.0);
        let eps = (15.0f64).exp2().recip();
        assert!(third.to_f64() <= 1.0 / 3.0);
        assert!(1.0 / 3.0 - third.to_f64() < eps);
    }

    #[test]
    fn ordering() {
        assert!(Fx::from_f64(-1.0) < Fx::from_f64(0.25));
        assert!(ApUfixed::<8, 4>::from_f64(15.0) > ApUfixed::<8, 4>::from_f64(0.5));
    }

    #[test]
    fn unsigned_fixed() {
        let a: ApUfixed<16, 8> = ApUfixed::from_f64(128.5);
        assert_eq!(a.to_f64(), 128.5);
        assert_eq!((a + a).to_f64(), 1.0); // wraps: 257 mod 256 = 1
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Fx::default().to_f64(), 0.0);
    }
}
