//! Incremental compilation: rebuild only what changed.
//!
//! "We develop a standard Makefile configuration so only the pages with
//! changing logic must be recompiled" (paper Sec. 6). The [`BuildCache`]
//! keys each operator by a content hash of its kernel source and resolved
//! target; a subsequent compile of an edited application recompiles only
//! the dirty operators and re-links everything with configuration packets —
//! the whole point of separate compilation.

use dfg::{extract, Graph};
use fabric::PageId;
use std::collections::HashMap;

use crate::artifact::{Xclbin, XclbinKind};
use crate::flow::{
    assign_pages_with, build_driver, compile_operator_job, fnv, source_hash, CompileError,
    CompileOptions, CompiledApp, CompiledOperator, JobProduct, OptLevel,
};
use crate::vtime::PhaseTimes;

struct CacheEntry {
    hash: u64,
    operator: CompiledOperator,
    artifact: Xclbin,
}

/// A persistent (in-memory) build cache across compiles of the same
/// application.
#[derive(Default)]
pub struct BuildCache {
    entries: HashMap<String, CacheEntry>,
    /// Operators reused from cache across all compiles.
    pub hits: u64,
    /// Operators recompiled across all compiles.
    pub misses: u64,
}

impl BuildCache {
    /// Creates an empty cache.
    pub fn new() -> BuildCache {
        BuildCache::default()
    }

    /// Number of cached operators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compiles a graph, reusing cached artifacts for unchanged operators.
    ///
    /// Only the paged levels are cacheable; an `-O3` request falls back to a
    /// full [`crate::compile`] (monolithic designs have no separately
    /// reusable parts — exactly the paper's complaint).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(
        &mut self,
        graph: &Graph,
        options: &CompileOptions,
    ) -> Result<CompiledApp, CompileError> {
        if options.level == OptLevel::O3 {
            return crate::flow::compile(graph, options);
        }
        let t0 = std::time::Instant::now();
        let force_riscv = options.level == OptLevel::O0;
        let pages = assign_pages_with(graph, &options.floorplan, force_riscv, options.page_assign)?;
        let ir = extract(graph);

        let mut artifacts = vec![Xclbin {
            name: "overlay.xclbin".into(),
            kind: XclbinKind::Overlay,
            hash: 0,
        }];
        let mut operators = Vec::with_capacity(graph.operators.len());
        let mut serial = PhaseTimes::default();
        let mut parallel = PhaseTimes::default();

        for (op, (target, page)) in graph.operators.iter().zip(&pages) {
            let hash = source_hash(&op.kernel, *target);
            let cached = self
                .entries
                .get(&op.name)
                .filter(|e| e.hash == hash && e.operator.page == Some(*page));
            if let Some(entry) = cached {
                self.hits += 1;
                let mut reused = entry.operator.clone();
                // Reused artifacts cost nothing this build.
                reused.vtime = PhaseTimes::default();
                reused.wall_seconds = 0.0;
                reused.artifact = Some(artifacts.len());
                artifacts.push(entry.artifact.clone());
                operators.push(reused);
                continue;
            }
            self.misses += 1;
            let seed = options.seed ^ fnv(op.name.as_bytes());
            let page_rect = options.floorplan.pages[page.0 as usize].rect;
            let product = compile_operator_job(
                &op.kernel,
                &op.name,
                *target,
                page_rect,
                &options.floorplan.device,
                &options.vtime,
                seed,
            )?;
            let idx = artifacts.len();
            let (hls, timing, soft, vtime, artifact) = match product {
                JobProduct::Hw {
                    report,
                    timing,
                    bitstream,
                    vtime,
                } => {
                    let h = bitstream.payload_hash ^ hash;
                    let x = Xclbin {
                        name: format!("{}.xclbin", op.name),
                        kind: XclbinKind::Page {
                            page: *page,
                            bitstream,
                        },
                        hash: h,
                    };
                    (Some(report), Some(timing), None, vtime, x)
                }
                JobProduct::Soft { binary, vtime } => {
                    let packed = binary.pack(page.0);
                    let h = fnv(&packed
                        .records
                        .iter()
                        .flat_map(|(_, b)| b.clone())
                        .collect::<Vec<u8>>());
                    let x = Xclbin {
                        name: format!("{}.elf.xclbin", op.name),
                        kind: XclbinKind::Softcore {
                            page: *page,
                            binary: packed,
                        },
                        hash: h,
                    };
                    (None, None, Some(binary), vtime, x)
                }
            };
            serial = serial.add(&vtime);
            parallel = parallel.parallel_max(&vtime);
            let compiled = CompiledOperator {
                name: op.name.clone(),
                target: *target,
                page: Some(*page),
                artifact: Some(idx),
                hls,
                timing,
                soft,
                vtime,
                wall_seconds: 0.0,
                source_hash: hash,
            };
            self.entries.insert(
                op.name.clone(),
                CacheEntry {
                    hash,
                    operator: compiled.clone(),
                    artifact: artifact.clone(),
                },
            );
            artifacts.push(artifact);
            operators.push(compiled);
        }

        let n_pages = options.floorplan.pages.len() as u16;
        let driver = build_driver(&ir, &pages, &artifacts, n_pages);

        Ok(CompiledApp {
            graph: graph.clone(),
            level: options.level,
            floorplan: options.floorplan.clone(),
            operators,
            artifacts,
            driver,
            ir,
            monolithic: None,
            vtime_serial: serial,
            vtime_parallel: parallel,
            wall_seconds: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Marks which operators changed between two versions of a graph (by
/// content hash) — what a `make`-style dependency check would report.
pub fn dirty_set(old: &Graph, new: &Graph) -> Vec<String> {
    let old_hashes: HashMap<&str, u64> = old
        .operators
        .iter()
        .map(|o| (o.name.as_str(), source_hash(&o.kernel, o.target)))
        .collect();
    new.operators
        .iter()
        .filter(|o| old_hashes.get(o.name.as_str()) != Some(&source_hash(&o.kernel, o.target)))
        .map(|o| o.name.clone())
        .collect()
}

/// Convenience: the pages whose artifacts a new compile would rewrite.
pub fn dirty_pages(app: &CompiledApp, new: &Graph) -> Vec<PageId> {
    let dirty = dirty_set(&app.graph, new);
    app.operators
        .iter()
        .filter(|o| dirty.contains(&o.name))
        .filter_map(|o| o.page)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn stage(name: &str, addend: i64) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..32,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    }

    fn pipeline(addends: [i64; 3]) -> Graph {
        let mut b = GraphBuilder::new("pipe");
        let a = b.add("a", stage("a", addends[0]), Target::hw(0));
        let c = b.add("c", stage("c", addends[1]), Target::hw(1));
        let d = b.add("d", stage("d", addends[2]), Target::hw(2));
        b.ext_input("Input_1", a, "in");
        b.connect("l1", a, "out", c, "in");
        b.connect("l2", c, "out", d, "in");
        b.ext_output("Output_1", d, "out");
        b.build().unwrap()
    }

    #[test]
    fn second_identical_build_is_all_hits() {
        let g = pipeline([1, 2, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        let first = cache.compile(&g, &opts).unwrap();
        assert_eq!(cache.misses, 3);
        let second = cache.compile(&g, &opts).unwrap();
        assert_eq!(cache.hits, 3);
        // Rebuild costs nothing; linking information identical.
        assert_eq!(second.vtime_parallel.total(), 0.0);
        assert_eq!(first.driver, second.driver);
    }

    #[test]
    fn editing_one_operator_recompiles_one() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        let full = cache.compile(&g1, &opts).unwrap();
        let incr = cache.compile(&g2, &opts).unwrap();
        assert_eq!(cache.misses, 4);
        assert_eq!(cache.hits, 2);
        // The incremental build's cost is one page compile, well below the
        // three-page full build.
        assert!(incr.vtime_serial.total() < full.vtime_serial.total() * 0.6);
        // Unchanged artifacts are bit-identical.
        assert_eq!(incr.artifacts[1].hash, full.artifacts[1].hash); // a
        assert_ne!(incr.artifacts[2].hash, full.artifacts[2].hash); // c changed
        assert_eq!(incr.artifacts[3].hash, full.artifacts[3].hash); // d
    }

    #[test]
    fn dirty_set_detects_changes() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        assert!(dirty_set(&g1, &g1).is_empty());
        assert_eq!(dirty_set(&g1, &g2), vec!["c".to_string()]);
    }

    #[test]
    fn retarget_is_a_change() {
        // Flipping a pragma HW -> RISCV recompiles that operator only.
        let g1 = pipeline([1, 2, 3]);
        let mut b = GraphBuilder::new("pipe");
        let a = b.add("a", stage("a", 1), Target::hw(0));
        let c = b.add("c", stage("c", 2), Target::riscv(1));
        let d = b.add("d", stage("d", 3), Target::hw(2));
        b.ext_input("Input_1", a, "in");
        b.connect("l1", a, "out", c, "in");
        b.connect("l2", c, "out", d, "in");
        b.ext_output("Output_1", d, "out");
        let g2 = b.build().unwrap();

        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O1);
        cache.compile(&g1, &opts).unwrap();
        let app2 = cache.compile(&g2, &opts).unwrap();
        assert_eq!(cache.misses, 4);
        assert!(app2.operators[1].soft.is_some());
        // The retargeted compile is a seconds-scale -O0 job.
        assert!(app2.vtime_serial.total() < 10.0);
    }

    #[test]
    fn dirty_pages_map_to_floorplan() {
        let g1 = pipeline([1, 2, 3]);
        let g2 = pipeline([1, 99, 3]);
        let mut cache = BuildCache::new();
        let app = cache
            .compile(&g1, &CompileOptions::new(OptLevel::O1))
            .unwrap();
        assert_eq!(dirty_pages(&app, &g2), vec![PageId(1)]);
    }
}
