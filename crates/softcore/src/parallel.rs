//! Deterministic fork-join shard pool: the host-thread engine under the
//! parallel cosim.
//!
//! The parallel `-O0` engine shards softcore cores across host worker
//! threads and advances each shard through a bounded window of cycles
//! between barriers (the BEE thesis: emulation performance from massive
//! parallelism over processor-based emulation). This module owns the
//! host-thread mechanics and nothing else: a pool of long-lived workers
//! that, once per *phase*, each receive their shard (moved through a
//! channel), run one user-supplied work function over it, and move it
//! back. Between phases the driver thread owns every shard outright —
//! there is no shared mutable state, no locks around the payloads, and
//! nothing for the scheduler to reorder.
//!
//! Determinism is by construction, not by discipline:
//!
//! * the work function sees exactly one shard plus a per-phase context
//!   value — shard-mates cannot observe each other within a phase;
//! * the driver inspects shards only between phases, in shard order;
//! * therefore the sequence of (phase context, shard states) is a pure
//!   function of the initial shards and the driver's logic, regardless of
//!   how many OS threads execute the phases or how they interleave.
//!
//! With `threads <= 1` no worker threads (or channels) are created at
//! all: [`ShardPool::phase`] runs every shard inline on the caller's
//! thread through the *same* code path the workers use. The single-thread
//! cosim is literally the parallel engine at `threads = 1`, not a second
//! implementation.

use std::sync::mpsc;

/// Iterations to spin on an empty channel before parking in a blocking
/// `recv`. Phase hand-offs are short relative to a window of simulated
/// cycles; spinning briefly avoids paying a futex sleep/wake per barrier.
const SPIN: u32 = 1 << 14;

/// `recv` with a bounded spin prefix (see [`SPIN`]).
fn recv_spin<X>(rx: &mpsc::Receiver<X>) -> Result<X, mpsc::RecvError> {
    for _ in 0..SPIN {
        match rx.try_recv() {
            Ok(x) => return Ok(x),
            Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(mpsc::TryRecvError::Disconnected) => return Err(mpsc::RecvError),
        }
    }
    rx.recv()
}

/// A pool of shards, optionally backed by worker threads, advanced in
/// lock-step phases. Created by [`with_shard_pool`]; driven by calling
/// [`ShardPool::phase`] and inspecting [`ShardPool::shards_mut`] between
/// phases.
pub struct ShardPool<'a, T, C> {
    work: &'a (dyn Fn(&C, &mut T) + Sync),
    /// Shard `k` lives here whenever it is not in flight during `phase`.
    shards: Vec<Option<T>>,
    /// Per-worker dispatch channels; empty in inline (single-thread) mode.
    /// Shards stripe across `workers + 1` lanes — lane 0 is the driver
    /// thread itself (which would otherwise idle at the barrier), so shard
    /// `k` goes to worker `(k % lanes) - 1` unless `k % lanes == 0`.
    txs: Vec<mpsc::Sender<(C, usize, T)>>,
    done: Option<mpsc::Receiver<(usize, T)>>,
}

impl<T, C: Clone> ShardPool<'_, T, C> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads backing the pool (0 = inline mode).
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Runs one phase: every shard is advanced once by the work function
    /// with `ctx`, in parallel across the pool's threads (or inline, with
    /// identical semantics, when there are none). Returns after *all*
    /// shards finish — the barrier. On return the driver again owns every
    /// shard.
    pub fn phase(&mut self, ctx: C) {
        if self.txs.is_empty() {
            for shard in self.shards.iter_mut() {
                (self.work)(&ctx, shard.as_mut().expect("shard in place"));
            }
            return;
        }
        let lanes = self.txs.len() + 1;
        let mut sent = 0;
        for k in 0..self.shards.len() {
            if k % lanes != 0 {
                let shard = self.shards[k].take().expect("shard in place");
                self.txs[k % lanes - 1]
                    .send((ctx.clone(), k, shard))
                    .expect("worker alive");
                sent += 1;
            }
        }
        for k in (0..self.shards.len()).step_by(lanes) {
            (self.work)(&ctx, self.shards[k].as_mut().expect("shard in place"));
        }
        let done = self.done.as_ref().expect("pooled mode has a receiver");
        for _ in 0..sent {
            let (k, shard) = recv_spin(done).expect("worker alive");
            self.shards[k] = Some(shard);
        }
    }

    /// Mutable access to every shard, in shard order (between phases the
    /// driver owns them all).
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.shards
            .iter_mut()
            .map(|s| s.as_mut().expect("shard in place"))
    }
}

/// Builds a [`ShardPool`] over `shards` backed by `threads` host threads
/// (including the caller's: `threads - 1` workers are spawned, and shard 0
/// runs on the caller's thread inside [`ShardPool::phase`]), runs `drive`
/// with it, tears the workers down, and returns `drive`'s result.
///
/// `threads <= 1` — or a single shard — spawns nothing and runs every
/// phase inline. More threads than shards are clamped to the shard count.
pub fn with_shard_pool<T, C, R>(
    threads: usize,
    shards: Vec<T>,
    work: &(dyn Fn(&C, &mut T) + Sync),
    drive: impl FnOnce(&mut ShardPool<'_, T, C>) -> R,
) -> R
where
    T: Send,
    C: Send + Clone,
{
    let n_workers = threads
        .saturating_sub(1)
        .min(shards.len().saturating_sub(1));
    let shards: Vec<Option<T>> = shards.into_iter().map(Some).collect();
    if n_workers == 0 {
        let mut pool = ShardPool {
            work,
            shards,
            txs: Vec::new(),
            done: None,
        };
        return drive(&mut pool);
    }
    std::thread::scope(|s| {
        let (done_tx, done_rx) = mpsc::channel::<(usize, T)>();
        let mut txs = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let (tx, rx) = mpsc::channel::<(C, usize, T)>();
            txs.push(tx);
            let done = done_tx.clone();
            s.spawn(move || {
                while let Ok((ctx, k, mut shard)) = recv_spin(&rx) {
                    work(&ctx, &mut shard);
                    if done.send((k, shard)).is_err() {
                        break;
                    }
                }
            });
        }
        let mut pool = ShardPool {
            work,
            shards,
            txs,
            done: Some(done_rx),
        };
        let out = drive(&mut pool);
        // Dropping the pool closes the dispatch channels; the workers'
        // `recv` fails and they exit, letting the scope join them.
        drop(pool);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sum(threads: usize, shards: Vec<Vec<u64>>, phases: u64) -> Vec<Vec<u64>> {
        let work = |ctx: &u64, shard: &mut Vec<u64>| {
            for v in shard.iter_mut() {
                *v = v.wrapping_mul(31).wrapping_add(*ctx);
            }
        };
        with_shard_pool(threads, shards, &work, |pool| {
            for p in 0..phases {
                pool.phase(p);
            }
            pool.shards_mut().map(|s| s.clone()).collect()
        })
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let shards: Vec<Vec<u64>> = (0..7).map(|k| (k * 10..k * 10 + 5).collect()).collect();
        let golden = run_sum(1, shards.clone(), 20);
        for threads in [2, 3, 4, 8, 32] {
            assert_eq!(run_sum(threads, shards.clone(), 20), golden, "{threads}");
        }
    }

    #[test]
    fn inline_mode_spawns_no_workers() {
        let work = |_: &(), _: &mut u32| {};
        with_shard_pool(1, vec![1u32, 2, 3], &work, |pool| {
            assert_eq!(pool.workers(), 0);
            assert_eq!(pool.shard_count(), 3);
            pool.phase(());
        });
    }

    #[test]
    fn workers_clamped_to_shards() {
        let work = |_: &(), s: &mut u32| *s += 1;
        with_shard_pool(16, vec![0u32, 0], &work, |pool| {
            assert_eq!(pool.workers(), 1);
            pool.phase(());
            let vals: Vec<u32> = pool.shards_mut().map(|s| *s).collect();
            assert_eq!(vals, vec![1, 1]);
        });
    }

    #[test]
    fn driver_owns_shards_between_phases() {
        let work = |ctx: &u32, s: &mut u32| *s += ctx;
        with_shard_pool(4, vec![0u32; 4], &work, |pool| {
            pool.phase(5);
            for s in pool.shards_mut() {
                assert_eq!(*s, 5);
                *s = 100; // driver-side mutation must stick
            }
            pool.phase(1);
            for s in pool.shards_mut() {
                assert_eq!(*s, 101);
            }
        });
    }
}
