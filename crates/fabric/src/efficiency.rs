//! The page-sizing efficiency model: Eq. 1 of the paper (Sec. 4.1).
//!
//! ```text
//!             Σ (operator page use)
//! Eff. = ────────────────────────────────────────────
//!        Σ (page size + leaf interface) + linking net
//! ```
//!
//! "Our network interfaces run about 500 LUTs and the current linking network
//! needs about 500 LUTs per endpoint. As such, we choose about 18,000-LUT
//! pages so that we have around 95% efficiency before considering
//! fragmentation." The `page_sizing` bench regenerates that trade-off curve.

use serde::{Deserialize, Serialize};

/// Cost parameters of the overlay, in LUTs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyParams {
    /// LUTs of one leaf interface (paper: ~500).
    pub leaf_interface_luts: u64,
    /// Linking-network LUTs per endpoint (paper: ~500).
    pub linking_net_luts_per_endpoint: u64,
}

impl Default for EfficiencyParams {
    fn default() -> Self {
        EfficiencyParams {
            leaf_interface_luts: 500,
            linking_net_luts_per_endpoint: 500,
        }
    }
}

/// Evaluates Eq. 1 for a uniform page size.
///
/// `operator_luts` lists each operator's logic demand; every operator
/// occupies `ceil(demand / page_luts)` pages (an operator bigger than a page
/// must be split, each fragment paying a leaf interface).
///
/// Returns the efficiency in `[0, 1]`.
///
/// # Panics
///
/// Panics if `page_luts` is zero.
pub fn page_efficiency(operator_luts: &[u64], page_luts: u64, params: &EfficiencyParams) -> f64 {
    assert!(page_luts > 0, "page size must be positive");
    let mut use_sum = 0u64;
    let mut denom = 0u64;
    let mut endpoints = 0u64;
    for &demand in operator_luts {
        let pages = demand.div_ceil(page_luts).max(1);
        use_sum += demand;
        denom += pages * (page_luts + params.leaf_interface_luts);
        endpoints += pages;
    }
    denom += endpoints * params.linking_net_luts_per_endpoint;
    if denom == 0 {
        return 0.0;
    }
    use_sum as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_is_about_95_percent() {
        // Operators that fill their pages (the paper's "before considering
        // fragmentation" assumption): one operator per 18k-LUT page.
        let ops = vec![18_000u64; 20];
        let eff = page_efficiency(&ops, 18_000, &EfficiencyParams::default());
        assert!((eff - 0.947).abs() < 0.01, "eff = {eff}");
    }

    #[test]
    fn small_pages_pay_more_overhead() {
        let ops = vec![18_000u64; 20];
        let params = EfficiencyParams::default();
        let small = page_efficiency(&ops, 2_000, &params);
        let big = page_efficiency(&ops, 18_000, &params);
        assert!(small < big);
        assert!(
            small < 0.70,
            "2k pages should be badly inefficient, got {small}"
        );
    }

    #[test]
    fn oversized_pages_fragment_internally() {
        // 6k-LUT operators on 18k pages: two thirds of every page idle.
        let ops = vec![6_000u64; 20];
        let eff = page_efficiency(&ops, 18_000, &EfficiencyParams::default());
        assert!(
            eff < 0.35,
            "internal fragmentation should dominate, got {eff}"
        );
    }

    #[test]
    fn efficiency_bounded_by_one() {
        for page in [1_000u64, 6_000, 18_000, 72_000] {
            let eff = page_efficiency(&[17_000, 9_000, 22_000], page, &EfficiencyParams::default());
            assert!((0.0..=1.0).contains(&eff));
        }
    }

    #[test]
    fn zero_overhead_perfect_packing_is_lossless() {
        let params = EfficiencyParams {
            leaf_interface_luts: 0,
            linking_net_luts_per_endpoint: 0,
        };
        let eff = page_efficiency(&[10_000, 10_000], 10_000, &params);
        assert_eq!(eff, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_page_size_rejected() {
        page_efficiency(&[1], 0, &EfficiencyParams::default());
    }
}
