//! Multi-tenant serving integration: many apps on one fabric, admission
//! backpressure, LRU eviction with re-admission, and hot-swap downtime
//! strictly below a full-app reload — plus the fleet layer on top of it:
//! cross-device placement, QoS eviction classes, async admission tickets,
//! and bit-identical live migration.

use dfg::{Graph, GraphBuilder, Target};
use fabric::Floorplan;
use kir::types::Value;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{BuildCache, CompileOptions, OptLevel};
use pld_runtime::{
    DeviceId, EvictClass, Executor, Fleet, FleetError, FleetEvent, QosSpec, Runtime, RuntimeEvent,
    TenantId,
};
use proptest::prelude::*;

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..8,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

/// A linear pipeline of `n` operators, each adding `addend`.
fn pipeline(name: &str, n: usize, addend: i64) -> Graph {
    let mut b = GraphBuilder::new(name);
    let mut prev = None;
    for i in 0..n {
        let id = b.add(
            format!("s{i}"),
            stage(&format!("s{i}"), addend),
            Target::riscv_auto(),
        );
        match prev {
            None => b.ext_input("Input_1", id, "in"),
            Some(p) => {
                b.connect(format!("l{i}"), p, "out", id, "in");
            }
        }
        prev = Some(id);
    }
    b.ext_output("Output_1", prev.unwrap(), "out");
    b.build().unwrap()
}

fn words(values: std::ops::Range<u32>) -> Vec<Value> {
    values
        .map(|v| Value::Int(aplib::DynInt::from_raw(32, false, v as u128)))
        .collect()
}

fn to_u32s(values: &[Value]) -> Vec<u32> {
    values.iter().map(|v| v.raw() as u32).collect()
}

fn compile_o0(graph: &Graph) -> pld::CompiledApp {
    pld::compile(graph, &CompileOptions::new(OptLevel::O0)).unwrap()
}

#[test]
fn admission_queue_pushes_back_at_its_bound() {
    let mut rt = Runtime::with_queue_bound(Floorplan::u50(), 2);
    rt.submit("a", compile_o0(&pipeline("a", 2, 1))).unwrap();
    rt.submit("b", compile_o0(&pipeline("b", 2, 2))).unwrap();
    // Third submission before any scheduling pass: refused, app returned.
    let refused = rt
        .submit("c", compile_o0(&pipeline("c", 2, 3)))
        .unwrap_err();
    assert_eq!(refused.app.graph.name, "c");
    assert_eq!(rt.stats().rejected, 1);
    assert_eq!(rt.stats().queue_depth, 2);

    // After draining, the refused app is admissible.
    let events = rt.poll();
    assert_eq!(events.len(), 2);
    let id_c = rt.submit("c", *refused.app).unwrap();
    let events = rt.poll();
    assert!(
        matches!(&events[..], [RuntimeEvent::Admitted { id, .. }] if *id == id_c),
        "{events:?}"
    );
}

#[test]
fn serving_many_tenants_with_eviction_and_readmission() {
    let fp = Floorplan::u50(); // 22 pages
    let mut rt = Runtime::with_queue_bound(fp, 8);

    // Three 7-page tenants: 21 of 22 pages occupied.
    let mut ids = Vec::new();
    for (i, name) in ["alpha", "beta", "gamma"].iter().enumerate() {
        let id = rt
            .submit(name, compile_o0(&pipeline(name, 7, i as i64 + 1)))
            .unwrap();
        ids.push(id);
    }
    let events = rt.poll();
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, RuntimeEvent::Admitted { .. }))
            .count(),
        3
    );
    let stats = rt.stats();
    assert_eq!(stats.pages_occupied, 21);
    assert!((stats.occupancy() - 21.0 / 22.0).abs() < 1e-12);
    assert!(stats.cumulative_downtime_seconds > 0.0);

    // Serve requests so LRU order is gamma-fresh, alpha-stale.
    let input = words(0..8);
    for &id in &ids[1..] {
        let out = rt.run(id, &[("Input_1", input.clone())]).unwrap();
        assert_eq!(out["Output_1"].len(), 8);
    }
    assert_eq!(rt.stats().requests, 2);

    // A fourth 7-page tenant does not fit in the 1 free page: the
    // least-recently-used tenant (alpha) is evicted to make room.
    let id_d = rt
        .submit("delta", compile_o0(&pipeline("delta", 7, 9)))
        .unwrap();
    let events = rt.poll();
    assert_eq!(events.len(), 2, "{events:?}");
    assert_eq!(
        events[0],
        RuntimeEvent::Evicted {
            id: ids[0],
            name: "alpha".into()
        }
    );
    assert!(matches!(&events[1], RuntimeEvent::Admitted { id, .. } if *id == id_d));
    assert!(!rt.is_resident(ids[0]));
    assert_eq!(rt.stats().evicted, 1);

    // Serving the evicted tenant fails until it is re-admitted; the
    // re-admission replays its loads and is charged downtime again.
    assert!(rt.run(ids[0], &[("Input_1", input.clone())]).is_err());
    let downtime_before = rt.stats().cumulative_downtime_seconds;
    let id_a2 = rt
        .submit("alpha", compile_o0(&pipeline("alpha", 7, 1)))
        .unwrap();
    let events = rt.poll();
    // Re-admitting 7 pages with 1 free evicts again (beta is LRU now).
    assert!(events
        .iter()
        .any(|e| matches!(e, RuntimeEvent::Evicted { id, .. } if *id == ids[1])));
    assert!(events
        .iter()
        .any(|e| matches!(e, RuntimeEvent::Admitted { id, .. } if *id == id_a2)));
    assert!(rt.stats().cumulative_downtime_seconds > downtime_before);

    // The re-admitted tenant serves correctly.
    let out = rt.run(id_a2, &[("Input_1", input)]).unwrap();
    let expected: Vec<u32> = (0..8).map(|v| v + 7).collect(); // 7 stages × +1
    assert_eq!(to_u32s(&out["Output_1"]), expected);
}

#[test]
fn unplaceable_apps_are_rejected_not_queued_forever() {
    let mut rt = Runtime::with_queue_bound(Floorplan::u50(), 8);
    // An -O3 monolith has no per-page artifacts: it cannot share a fabric
    // and is rejected outright instead of evicting tenants forever.
    let graph = pipeline("monolith", 2, 1);
    let app = pld::compile(&graph, &CompileOptions::new(OptLevel::O3)).unwrap();
    let id = rt.submit("monolith", app).unwrap();
    let events = rt.poll();
    assert!(
        matches!(&events[..], [RuntimeEvent::Rejected { id: rid, .. }] if *rid == id),
        "{events:?}"
    );
    assert_eq!(rt.stats().rejected, 1);
    assert_eq!(rt.stats().pages_occupied, 0);
}

#[test]
fn hot_swap_downtime_beats_full_reload() {
    let mut cache = BuildCache::new();
    let opts = CompileOptions::new(OptLevel::O0);
    let graph = pipeline("editme", 4, 2);
    let app = cache.compile(&graph, &opts).unwrap();
    let homes: Vec<u32> = app
        .operators
        .iter()
        .filter_map(|o| o.page.map(|p| p.0))
        .collect();

    let mut rt = Runtime::with_queue_bound(Floorplan::u50(), 4);
    // A second tenant shares the fabric; its routes must survive the swap.
    let other = rt
        .submit("bystander", compile_o0(&pipeline("bystander", 3, 5)))
        .unwrap();
    let id = rt.submit("editme", app).unwrap();
    rt.poll();
    assert!(rt.is_resident(other) && rt.is_resident(id));
    let bystander_out_before =
        rt.run(other, &[("Input_1", words(0..8))]).unwrap()["Output_1"].clone();

    // The edit: re-pin one operator to a page the app does not use —
    // exactly the pragma flip of the paper's development loop.
    // Pin the tail stage: earlier stages' assignments don't depend on it,
    // so exactly one operator is dirtied.
    let mut edited = graph.clone();
    let spare = (0..22u32).rev().find(|p| !homes.contains(p)).unwrap();
    edited.operators[3].target = Target::riscv(spare);

    let report = rt.hot_swap(id, &edited, &mut cache, &opts).unwrap();
    assert_eq!(report.recompiled, vec!["s3".to_string()]);
    assert_eq!(report.swapped_pages.len(), 1);
    assert!(report.artifact_seconds > 0.0);
    assert!(report.link_packets > 0);
    assert!(
        report.downtime_seconds < report.full_reload_seconds,
        "hot-swap {}s must beat full reload {}s",
        report.downtime_seconds,
        report.full_reload_seconds
    );

    // The swapped app still serves, and so does the bystander.
    let out = rt.run(id, &[("Input_1", words(0..8))]).unwrap();
    assert_eq!(to_u32s(&out["Output_1"]), (8..16).collect::<Vec<u32>>()); // 4 stages × +2
    let bystander_out = rt.run(other, &[("Input_1", words(0..8))]).unwrap()["Output_1"].clone();
    assert_eq!(bystander_out, bystander_out_before);

    let stats = rt.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.requests, 3);
    assert!(stats
        .latencies
        .values()
        .any(|l| l.name == "editme" && l.histogram.count() == 1));
}

#[test]
fn threaded_engine_serves_identical_results_and_records_latency() {
    let mut rt = Runtime::new(Floorplan::u50());
    let id = rt
        .submit("kpn", compile_o0(&pipeline("kpn", 4, 3)))
        .unwrap();
    rt.poll();

    let input = words(0..8);
    let seq = rt.run(id, &[("Input_1", input.clone())]).unwrap();
    let par = rt.run_threaded(id, &[("Input_1", input)]).unwrap();
    assert_eq!(seq, par); // Kahn: engine choice never changes tokens.
    assert_eq!(to_u32s(&par["Output_1"]), (12..20).collect::<Vec<u32>>());

    let stats = rt.stats();
    assert_eq!(stats.requests, 2);
    assert!(stats
        .latencies
        .values()
        .any(|l| l.name == "kpn" && l.histogram.count() == 2));
}

#[test]
fn cosim_serving_matches_functional_serving() {
    let mut rt = Runtime::new(Floorplan::u50());
    let id = rt
        .submit("pipe", compile_o0(&pipeline("pipe", 3, 5)))
        .unwrap();
    rt.poll();

    let inputs = vec![("Input_1", words(0..8))];
    let functional = rt.run(id, &inputs).unwrap();

    // Opt into cycle-accurate serving: requests now drive the resident
    // app's page softcores through the sharded parallel cosim engine.
    // Kahn determinacy: same tokens out, whatever executes them.
    rt.set_cosim_serving(Some(4));
    assert_eq!(rt.cosim_serving(), Some(4));
    let cosim = rt.run(id, &inputs).unwrap();
    assert_eq!(cosim, functional);
    assert_eq!(to_u32s(&cosim["Output_1"]), (15..23).collect::<Vec<u32>>());

    rt.set_cosim_serving(None);
    assert_eq!(rt.stats().requests, 2);
}

#[test]
fn fleet_packs_best_fit_then_spills_to_the_next_device() {
    let fp = Floorplan::u50();
    let mut fleet = Fleet::new(2, &fp);
    let t = TenantId(0);
    let mut ids = Vec::new();
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        ids.push(
            fleet
                .submit(t, name, compile_o0(&pipeline(name, 7, i as i64 + 1)))
                .unwrap(),
        );
    }
    let events = fleet.pump();
    assert!(
        events
            .iter()
            .all(|e| matches!(e, FleetEvent::Admitted { .. })),
        "{events:?}"
    );
    // Best-fit packs dev0 to 21 of 22 pages; the fourth 7-page app
    // spills to dev1 instead of evicting anyone.
    for &id in &ids[..3] {
        assert_eq!(fleet.locate(id).unwrap().0, DeviceId(0));
    }
    assert_eq!(fleet.locate(ids[3]).unwrap().0, DeviceId(1));
    assert_eq!(fleet.stats().evicted, 0);

    // Serving routes to the right device.
    let out = fleet.run(ids[3], &[("Input_1", words(0..8))]).unwrap();
    let expected: Vec<u32> = (0..8).map(|v| v + 7 * 4).collect();
    assert_eq!(to_u32s(&out["Output_1"]), expected);
}

#[test]
fn placement_prefers_the_device_with_cached_bitstreams() {
    let fp = Floorplan::u50();
    // dev1 has hosted this app before, so its artifacts are cached
    // on-card; dev0 has not. Both are empty — best-fit and index order
    // both say dev0, so only the artifact cache can say dev1.
    let dev0 = Runtime::new(fp.clone());
    let mut dev1 = Runtime::new(fp.clone());
    let app = compile_o0(&pipeline("warm", 4, 9));
    let seeded = dev1.admit_direct("warm", Box::new(app.clone())).unwrap();
    dev1.take_resident(seeded.id).unwrap();

    let mut fleet = Fleet::from_devices(vec![dev0, dev1]);
    let id = fleet.submit(TenantId(0), "warm", app).unwrap();
    fleet.pump();
    assert_eq!(
        fleet.locate(id).unwrap().0,
        DeviceId(1),
        "cache affinity must beat index order"
    );
}

#[test]
fn qos_classes_bound_who_a_tenant_may_evict() {
    let fp = Floorplan::u50();
    let mut fleet = Fleet::new(1, &fp);
    let (tg, ts, tr) = (TenantId(0), TenantId(1), TenantId(2));
    fleet.set_tenant(
        tg,
        QosSpec {
            weight: 1,
            evict: EvictClass::Guaranteed,
        },
    );
    fleet.set_tenant(
        ts,
        QosSpec {
            weight: 1,
            evict: EvictClass::Standard,
        },
    );
    fleet.set_tenant(
        tr,
        QosSpec {
            weight: 1,
            evict: EvictClass::Revocable,
        },
    );

    // Three 7-page tenants fill 21 of 22 pages.
    let g = fleet
        .submit(tg, "g", compile_o0(&pipeline("g", 7, 1)))
        .unwrap();
    let s = fleet
        .submit(ts, "s", compile_o0(&pipeline("s", 7, 2)))
        .unwrap();
    let r = fleet
        .submit(tr, "r", compile_o0(&pipeline("r", 7, 3)))
        .unwrap();
    fleet.pump();
    // Touch the revocable app so it is most-recently-used: the QoS class
    // must outrank recency in victim selection.
    fleet.run(r, &[("Input_1", words(0..8))]).unwrap();

    // A revocable tenant may only reclaim revocable pages: `r` goes,
    // even though `g` and `s` are staler.
    let r2 = fleet
        .submit(tr, "r2", compile_o0(&pipeline("r2", 7, 4)))
        .unwrap();
    let events = fleet.pump();
    assert!(
        matches!(events[0], FleetEvent::Evicted { app, .. } if app == r),
        "{events:?}"
    );
    assert!(matches!(events[1], FleetEvent::Admitted { app, .. } if app == r2));
    assert!(fleet.is_resident(g) && fleet.is_resident(s));

    // A standard tenant reclaims the lowest class first: r2, not s.
    let s2 = fleet
        .submit(ts, "s2", compile_o0(&pipeline("s2", 7, 5)))
        .unwrap();
    let events = fleet.pump();
    assert!(
        matches!(events[0], FleetEvent::Evicted { app, .. } if app == r2),
        "{events:?}"
    );
    assert!(matches!(events[1], FleetEvent::Admitted { app, .. } if app == s2));

    // No revocable pages left on the card: a revocable tenant is
    // rejected rather than touching guaranteed or standard residents.
    let r3 = fleet
        .submit(tr, "r3", compile_o0(&pipeline("r3", 7, 6)))
        .unwrap();
    let events = fleet.pump();
    assert!(
        matches!(&events[..], [FleetEvent::Rejected { app, reason, .. }]
            if *app == r3 && reason.contains("class")),
        "{events:?}"
    );
    assert!(fleet.is_resident(g) && fleet.is_resident(s) && fleet.is_resident(s2));
}

#[test]
fn async_tickets_park_until_a_scheduling_pass() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let fp = Floorplan::u50();
    let fleet = Rc::new(RefCell::new(Fleet::new(1, &fp)));
    let mut pool = Executor::new();
    let results = Rc::new(RefCell::new(Vec::new()));
    for (name, addend) in [("x", 1), ("y", 2)] {
        let ticket = fleet
            .borrow_mut()
            .submit_async(TenantId(0), name, compile_o0(&pipeline(name, 2, addend)))
            .unwrap();
        let results = Rc::clone(&results);
        pool.spawn(async move {
            let adm = ticket.await.expect("admitted");
            results.borrow_mut().push((adm.app, adm.device));
        });
    }
    // No scheduling pass yet: the futures park instead of busy-waiting.
    assert_eq!(pool.run_until_stalled(), 0);
    assert_eq!(pool.pending(), 2);
    assert!(results.borrow().is_empty());

    let events = fleet.borrow_mut().pump();
    assert_eq!(events.len(), 2, "{events:?}");
    assert_eq!(pool.run_until_stalled(), 2);
    assert_eq!(pool.pending(), 0);
    let got = results.borrow();
    assert_eq!(got.len(), 2);
    assert!(got.iter().all(|(_, d)| *d == DeviceId(0)));
}

#[test]
fn retire_releases_pages_without_counting_as_an_eviction() {
    let fp = Floorplan::u50();
    let mut fleet = Fleet::new(1, &fp);
    let id = fleet
        .submit(TenantId(0), "tmp", compile_o0(&pipeline("tmp", 12, 1)))
        .unwrap();
    fleet.pump();
    assert!(fleet.is_resident(id));

    fleet.retire(id).unwrap();
    assert!(!fleet.is_resident(id));
    assert_eq!(fleet.name_of(id), Some("tmp"));
    assert_eq!(fleet.stats().evicted, 0, "retirement is not QoS pressure");
    assert!(matches!(fleet.retire(id), Err(FleetError::NotResident(_))));

    // The pages are genuinely free: a 12-page app fits again without
    // evicting anyone.
    let id2 = fleet
        .submit(TenantId(0), "next", compile_o0(&pipeline("next", 12, 2)))
        .unwrap();
    let events = fleet.pump();
    assert!(
        matches!(&events[..], [FleetEvent::Admitted { app, .. }] if *app == id2),
        "{events:?}"
    );
}

#[test]
fn unplaceable_fleet_submissions_carry_per_device_deficits() {
    let fp = Floorplan::u50();
    let mut fleet = Fleet::new(3, &fp);
    // An -O3 monolith has no per-page artifacts: no device could ever
    // host it, and the refusal itemizes why for each one.
    let graph = pipeline("monolith", 2, 1);
    let app = pld::compile(&graph, &CompileOptions::new(OptLevel::O3)).unwrap();
    match fleet.submit(TenantId(0), "monolith", app) {
        Err(FleetError::Unplaceable { name, deficits }) => {
            assert_eq!(name, "monolith");
            assert_eq!(deficits.len(), 3);
            let devices: Vec<usize> = deficits.iter().map(|(d, _)| d.0).collect();
            assert_eq!(devices, vec![0, 1, 2]);
        }
        other => panic!("expected Unplaceable, got {other:?}"),
    }
    assert_eq!(fleet.stats().rejected, 1);
    assert_eq!(fleet.queue_depth(), 0, "unplaceable apps never queue");
}

#[test]
fn build_batch_matches_serial_builds_and_merges_the_store() {
    let opts = CompileOptions::new(OptLevel::O0);
    let graphs: Vec<Graph> = (0..6)
        .map(|i| pipeline(&format!("b{i}"), 2, i as i64 + 1))
        .collect();
    let mut batch_store = pld::ArtifactStore::new();
    let batch = pld::build_batch(&graphs, &opts, &mut batch_store, 3);
    assert_eq!(batch.len(), 6);
    for (graph, result) in graphs.iter().zip(&batch) {
        let (app, _) = result.as_ref().expect("batch job succeeds");
        let mut solo_store = pld::ArtifactStore::new();
        let (solo, _) = pld::build(graph, &opts, &mut solo_store).expect("serial build");
        // Content addressing: the concurrent build produces bit-identical
        // artifacts to the serial one.
        let batch_hashes: Vec<u64> = app.artifacts.iter().map(|x| x.hash).collect();
        let solo_hashes: Vec<u64> = solo.artifacts.iter().map(|x| x.hash).collect();
        assert_eq!(batch_hashes, solo_hashes);
        // And every stage product landed in the merged store.
        assert!(batch_store.len() >= solo_store.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Live migration is invisible to tenants: serving an app that has
    /// been bounced across devices by LoadOp-replay re-admission is
    /// bit-identical to serving the same app on a fleet that never
    /// migrates, after every hop of an arbitrary itinerary.
    #[test]
    fn migrated_serving_is_bit_identical_to_never_migrating(
        stages in 1usize..4,
        addend in 1i64..40,
        hops in proptest::collection::vec(0usize..3, 1..5),
    ) {
        let fp = Floorplan::u50();
        let app = compile_o0(&pipeline("m", stages, addend));
        let input = words(0..8);

        let mut still = Fleet::new(1, &fp);
        let still_id = still.submit(TenantId(0), "m", app.clone()).unwrap();
        still.pump();
        let reference = still.run(still_id, &[("Input_1", input.clone())]).unwrap();
        let expected: Vec<u32> = (0..8).map(|v| v + (addend * stages as i64) as u32).collect();
        prop_assert_eq!(&to_u32s(&reference["Output_1"]), &expected);

        let mut roaming = Fleet::new(3, &fp);
        let id = roaming.submit(TenantId(0), "m", app).unwrap();
        roaming.pump();
        let out = roaming.run(id, &[("Input_1", input.clone())]).unwrap();
        prop_assert_eq!(&out, &reference);
        for &to in &hops {
            roaming.migrate(id, DeviceId(to)).unwrap();
            prop_assert_eq!(roaming.locate(id).unwrap().0, DeviceId(to));
            let out = roaming.run(id, &[("Input_1", input.clone())]).unwrap();
            prop_assert_eq!(&out, &reference);
        }
    }
}
