//! The compile flows: `-O0`, `-O1`, `-O3` from one source graph.

use dfg::{DfgIr, Graph, IrLink, Target};
use fabric::{Floorplan, PageId, Rect};
use hlsim::HlsReport;
use netlist::{CellKind, Netlist};
use noc::PortAddr;
use pnr::{place_and_route, PnrOptions, TimingReport};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::artifact::{Driver, LinkOp, LoadOp, Xclbin, XclbinKind};
use crate::vtime::{PhaseTimes, VtimeModel};

/// The compiler optimization levels of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Everything on softcores: compile in seconds.
    O0,
    /// Separate compilation per pragma: `HW` operators each get their own
    /// page compile, `RISCV` operators a softcore binary; minutes.
    O1,
    /// Monolithic: all operators stitched with hardware FIFOs and compiled
    /// as one design; hours.
    O3,
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "-O0"),
            OptLevel::O1 => write!(f, "-O1"),
            OptLevel::O3 => write!(f, "-O3"),
        }
    }
}

/// Automatic page-assignment policy for operators without a `p_num` pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageAssign {
    /// First free page in floorplan order (the baseline a Makefile-driven
    /// flow would use).
    FirstFit,
    /// Communication affinity: pick the free page minimizing butterfly-fat-
    /// tree distance to already-placed neighbours, so linked operators share
    /// low subtrees of the network — automation in the spirit of the
    /// paper's Sec. 9 mapping-tool extensions.
    #[default]
    Affinity,
}

/// Hop distance between two leaves of the binary BFT (up to the common
/// ancestor and back down).
pub fn bft_distance(a: u32, b: u32) -> u32 {
    if a == b {
        0
    } else {
        2 * (32 - (a ^ b).leading_zeros())
    }
}

/// How the `-O3` kernel generator connects operators (paper Sec. 7.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkStyle {
    /// Hardware stream FIFOs, the paper's default. Robust (deep elastic
    /// buffering) but BRAM-hungry: Tab. 4 blames the FIFOs for `-O3`'s area
    /// overhead.
    #[default]
    StreamFifo,
    /// Relay stations: two-register elastic pipeline stages. Far cheaper
    /// ("one promising solution is to use Relay Station to connect operators
    /// together, instead of stream FIFOs") but, as the paper cautions, the
    /// shallow buffering "requires care to set the buffer sizes appropriately
    /// to avoid introducing deadlock"; acyclic graphs like the Rosetta suite
    /// are safe.
    RelayStation,
}

/// Multi-seed P&R racing policy.
///
/// P&R quality is seed-dependent, and the build farm usually has spare
/// width while the critical-path page compiles (Sec. 6.2: compile time "is
/// determined by the longest individual one"). With `attempts > 1` every
/// missing [`crate::store::StageKind::PlaceRoute`] stage fans that many
/// seed attempts out across the farm; an attempt whose timing meets
/// `target_fmax_mhz` cancels all higher-indexed attempts. The winner is the
/// best-cost attempt within the race's deterministic horizon (ties to the
/// lowest seed index), a rule independent of worker count, so artifacts,
/// stage keys and virtual times come out identical on a laptop and on a
/// wide farm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedRace {
    /// Seed attempts to race per PlaceRoute stage (1 = no racing).
    pub attempts: u32,
    /// Timing target in MHz that triggers early cancellation of
    /// higher-indexed attempts (0 = no target: race every attempt to
    /// completion and keep the best).
    pub target_fmax_mhz: f64,
}

impl Default for SeedRace {
    fn default() -> SeedRace {
        SeedRace {
            attempts: 1,
            target_fmax_mhz: 0.0,
        }
    }
}

/// Options for one compile invocation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Optimization level / flow selection.
    pub level: OptLevel,
    /// Parallel build-farm width (the paper's Slurm cluster analogue).
    pub jobs: usize,
    /// Deterministic seed for placement and routing.
    pub seed: u64,
    /// Target floorplan; defaults to the paper's 22-page U50 decomposition.
    pub floorplan: Floorplan,
    /// Virtual-time calibration.
    pub vtime: VtimeModel,
    /// `-O3` inter-operator link implementation.
    pub link_style: LinkStyle,
    /// Automatic page-assignment policy.
    pub page_assign: PageAssign,
    /// Multi-seed P&R racing policy (default: no racing).
    pub race: SeedRace,
    /// Warm-start incremental P&R (default: off). When on, every executed
    /// `PlaceRoute` stage also files a [`crate::store::StageKind::PnrHints`]
    /// product keyed by the operator's *lineage* (name + page rect, not
    /// source), and a later compile of an edited version of that operator
    /// fetches the hint as an optimization input: placement is warm-started
    /// from the prior assignment and only ripped-up nets re-route, with a
    /// quality guard falling back to a cold run if wirelength or fmax
    /// regress more than 5% against the hint's cold estimates. Hints fold
    /// into the `PlaceRoute` stage key, so warm and cold products never
    /// collide. Ignored while seed racing (`race.attempts > 1`): a race
    /// explores the seed space on purpose and must not be anchored to one
    /// prior layout.
    pub incremental_pnr: bool,
    /// KPN optimizer configuration; `None` compiles the graph exactly as
    /// written. When set, the build runs a content-addressed
    /// [`crate::store::StageKind::KpnOptimize`] stage first — `max_operators`
    /// and `page_array_bits` are clamped to the floorplan — and every
    /// downstream stage compiles the *optimized* graph.
    pub optimize: Option<dfg::OptimizerConfig>,
}

impl CompileOptions {
    /// Default options at the given level.
    pub fn new(level: OptLevel) -> CompileOptions {
        CompileOptions {
            level,
            jobs: 8,
            seed: 1,
            floorplan: Floorplan::u50(),
            vtime: VtimeModel::default(),
            link_style: LinkStyle::default(),
            page_assign: PageAssign::default(),
            race: SeedRace::default(),
            incremental_pnr: false,
            optimize: None,
        }
    }
}

/// Per-operator compile product.
#[derive(Debug, Clone)]
pub struct CompiledOperator {
    /// Operator instance name.
    pub name: String,
    /// Resolved target (page pinned).
    pub target: Target,
    /// The page hosting the operator (`None` under `-O3`).
    pub page: Option<PageId>,
    /// Index of this operator's artifact in [`CompiledApp::artifacts`]
    /// (`None` under `-O3`, where there is a single kernel artifact).
    pub artifact: Option<usize>,
    /// HLS report (hardware flows only).
    pub hls: Option<HlsReport>,
    /// Post-P&R timing for the operator's page (hardware `-O1` only).
    pub timing: Option<TimingReport>,
    /// Softcore binary (softcore-mapped operators only).
    pub soft: Option<softcore::SoftBinary>,
    /// Virtual compile time per phase.
    pub vtime: PhaseTimes,
    /// Measured wall-clock seconds for this operator's compile job.
    pub wall_seconds: f64,
    /// Content hash of (kernel, target) for incremental builds.
    pub source_hash: u64,
}

/// Results of the monolithic (`-O3` / Vitis-style) implementation.
#[derive(Debug, Clone)]
pub struct MonolithicInfo {
    /// Post-P&R timing of the *fused* baseline (the paper's "Vitis Flow"
    /// row): the same design with the inter-operator stream interfaces
    /// collapsed into combinational glue, so operator-crossing wires land on
    /// the critical path — the long-wire/SLR effect Sec. 7.4 blames for the
    /// original designs' clock rates. `None` if the fused baseline was not
    /// modelled.
    pub fused_timing: Option<TimingReport>,
    /// Virtual compile time of the fused baseline (the Tab. 2 "Vitis Flow"
    /// column), when modelled.
    pub fused_vtime: Option<PhaseTimes>,
    /// The stitched kernel netlist (kept for emulation-mode experiments).
    pub netlist: Netlist,
    /// Post-P&R timing of the whole design.
    pub timing: TimingReport,
    /// P&R work units.
    pub work_units: u64,
}

/// What the optimizer stage did to a compiled app's graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptSummary {
    /// Fused operators the passes created.
    pub fused: Vec<String>,
    /// Operators split into head/tail pairs.
    pub fissioned: Vec<String>,
    /// Jain fairness of per-operator work before optimizing.
    pub balance_before: f64,
    /// Jain fairness after optimizing.
    pub balance_after: f64,
}

/// A fully compiled application.
#[derive(Debug, Clone)]
pub struct CompiledApp {
    /// The compiled graph — the source graph as written, or the optimizer's
    /// rewrite of it when [`CompileOptions::optimize`] is set.
    pub graph: Graph,
    /// Level this app was compiled at.
    pub level: OptLevel,
    /// The floorplan used.
    pub floorplan: Floorplan,
    /// Per-operator products, in graph operator order.
    pub operators: Vec<CompiledOperator>,
    /// All artifacts (overlay first).
    pub artifacts: Vec<Xclbin>,
    /// The generated load-and-link driver.
    pub driver: Driver,
    /// The extracted dataflow IR.
    pub ir: DfgIr,
    /// Monolithic results (`-O3` only).
    pub monolithic: Option<MonolithicInfo>,
    /// Serial virtual compile time (single build machine).
    pub vtime_serial: PhaseTimes,
    /// Parallel virtual compile time (unbounded farm: slowest job).
    pub vtime_parallel: PhaseTimes,
    /// Measured wall-clock of the whole compile.
    pub wall_seconds: f64,
    /// Per-edge FIFO depths solved by the optimizer, indexed like
    /// `graph.edges` (`None` when the optimizer did not run). The host
    /// runtime plumbs these into the threaded engine's channels.
    pub edge_depths: Option<Vec<usize>>,
    /// Optimizer pass summary (`None` when the optimizer did not run).
    pub opt: Option<OptSummary>,
}

impl CompiledApp {
    /// Total virtual seconds when pages compile in parallel, as the paper
    /// reports `-O1` (Sec. 6.2: "the compilation time is determined by the
    /// longest individual one").
    pub fn compile_seconds(&self) -> f64 {
        match self.level {
            OptLevel::O1 | OptLevel::O0 => self.vtime_parallel.total(),
            OptLevel::O3 => self.vtime_serial.total(),
        }
    }

    /// The leaf index used by the DMA input engine.
    pub fn dma_in_leaf(&self) -> u16 {
        self.floorplan.pages.len() as u16
    }

    /// The leaf index used by the DMA output engine.
    pub fn dma_out_leaf(&self) -> u16 {
        self.floorplan.pages.len() as u16 + 1
    }
}

/// Compile failures.
#[derive(Debug)]
pub enum CompileError {
    /// No page can host the operator (resources or availability).
    #[allow(missing_docs)]
    PageAssignment { op: String, reason: String },
    /// HLS rejected the operator.
    #[allow(missing_docs)]
    Hls { op: String, error: kir::CheckError },
    /// Place-and-route failed.
    #[allow(missing_docs)]
    Pnr { op: String, error: pnr::PnrError },
    /// The softcore compiler rejected the operator.
    #[allow(missing_docs)]
    Softcore {
        op: String,
        error: softcore::CcError,
    },
    /// The operator's compile job panicked on the build farm.
    #[allow(missing_docs)]
    JobPanicked { op: String, message: String },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PageAssignment { op, reason } => {
                write!(f, "cannot place operator `{op}`: {reason}")
            }
            CompileError::Hls { op, error } => write!(f, "HLS failed for `{op}`: {error}"),
            CompileError::Pnr { op, error } => write!(f, "P&R failed for `{op}`: {error}"),
            CompileError::Softcore { op, error } => {
                write!(f, "softcore compile failed for `{op}`: {error}")
            }
            CompileError::JobPanicked { op, message } => {
                write!(f, "compile job for `{op}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Stable content hash of (kernel, target) for incremental builds.
pub(crate) fn source_hash(kernel: &kir::Kernel, target: Target) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{kernel:?}").hash(&mut h);
    format!("{target:?}").hash(&mut h);
    h.finish()
}

/// The leaf-interface overhead wrapped around every page operator
/// (Sec. 4.1: "Our network interfaces run about 500 LUTs").
pub fn wrap_with_leaf_interface(netlist: &Netlist) -> Netlist {
    let mut wrapped = netlist.clone();
    let leaf = wrapped.add_cell("leaf_iface", CellKind::Logic { width: 800 });
    let fifo = wrapped.add_cell(
        "leaf_fifo",
        CellKind::FifoBuf {
            width: 32,
            depth: 64,
        },
    );
    wrapped.add_net(leaf, vec![fifo], 32);
    // Hook every stream interface through the leaf logic.
    let stream_cells: Vec<_> = wrapped
        .cells_where(|k| matches!(k, CellKind::StreamIn { .. } | CellKind::StreamOut { .. }))
        .collect();
    for s in stream_cells {
        if s != leaf && s != fifo {
            wrapped.add_net(fifo, vec![s], 32);
        }
    }
    wrapped
}

/// Assigns every operator a page, honouring pins.
/// Assigns every operator a page under the chosen policy, honouring pins.
pub fn assign_pages_with(
    graph: &Graph,
    floorplan: &Floorplan,
    force_riscv: bool,
    policy: PageAssign,
) -> Result<Vec<(Target, PageId)>, CompileError> {
    let n_pages = floorplan.pages.len() as u32;
    let mut taken = vec![false; n_pages as usize];
    let mut out = Vec::with_capacity(graph.operators.len());

    // First pass: pins.
    for op in &graph.operators {
        if let Some(p) = op.target.page() {
            if p >= n_pages {
                return Err(CompileError::PageAssignment {
                    op: op.name.clone(),
                    reason: format!("pinned to page {p}, but the floorplan has {n_pages} pages"),
                });
            }
            if taken[p as usize] {
                return Err(CompileError::PageAssignment {
                    op: op.name.clone(),
                    reason: format!("page {p} already occupied"),
                });
            }
            taken[p as usize] = true;
        }
    }
    // Second pass: allocation.
    let mut assigned: Vec<Option<u32>> = vec![None; graph.operators.len()];
    for (i, op) in graph.operators.iter().enumerate() {
        let mut target = if force_riscv {
            Target::riscv_auto()
        } else {
            op.target
        };
        if let Some(p) = op.target.page() {
            if force_riscv {
                target = Target::riscv(p);
            }
            assigned[i] = Some(p);
            out.push((target, PageId(p)));
            continue;
        }
        // Pages already chosen for operators this one communicates with.
        let neighbour_pages: Vec<u32> = graph
            .edges
            .iter()
            .filter_map(|e| {
                if e.from.0 .0 == i {
                    assigned[e.to.0 .0]
                } else if e.to.0 .0 == i {
                    assigned[e.from.0 .0]
                } else {
                    None
                }
            })
            .collect();
        let chosen = match policy {
            PageAssign::FirstFit => (0..n_pages).find(|&p| !taken[p as usize]),
            PageAssign::Affinity => (0..n_pages)
                .filter(|&p| !taken[p as usize])
                .min_by_key(|&p| {
                    let cost: u32 = neighbour_pages.iter().map(|&q| bft_distance(p, q)).sum();
                    (cost, p)
                }),
        };
        match chosen {
            Some(p) => {
                taken[p as usize] = true;
                assigned[i] = Some(p);
                out.push((target.with_page(p), PageId(p)));
            }
            None => {
                return Err(CompileError::PageAssignment {
                    op: op.name.clone(),
                    reason: "no free pages left".into(),
                })
            }
        }
    }
    Ok(out)
}

/// Builds the driver: load everything, then link the dataflow graph with
/// configuration packets.
pub(crate) fn build_driver(
    ir: &DfgIr,
    pages: &[(Target, PageId)],
    artifacts: &[Xclbin],
    n_pages: u16,
) -> Driver {
    let mut driver = Driver {
        loads: vec![LoadOp::Overlay],
        links: Vec::new(),
    };
    for (i, artifact) in artifacts.iter().enumerate() {
        match artifact.kind {
            XclbinKind::Page { .. } => driver.loads.push(LoadOp::PageBitstream { artifact: i }),
            XclbinKind::Softcore { .. } => driver.loads.push(LoadOp::SoftcoreImage { artifact: i }),
            _ => {}
        }
    }
    let dma_in = n_pages;
    let dma_out = n_pages + 1;
    let leaf_of = |op: u32| -> u16 {
        if op == IrLink::HOST {
            dma_in
        } else {
            pages[op as usize].1 .0 as u16
        }
    };
    for link in &ir.links {
        let (src_leaf, stream) = if link.from.0 == IrLink::HOST {
            (dma_in, link.from.1 as u8)
        } else {
            (leaf_of(link.from.0), link.from.1 as u8)
        };
        let dest = if link.to.0 == IrLink::HOST {
            PortAddr {
                leaf: dma_out,
                port: link.to.1 as u8,
            }
        } else {
            PortAddr {
                leaf: leaf_of(link.to.0),
                port: link.to.1 as u8,
            }
        };
        driver.links.push(LinkOp {
            src_leaf,
            stream,
            dest,
        });
    }
    driver
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Compiles a graph at the requested level.
///
/// This is a thin driver over the staged build graph ([`mod@crate::build`])
/// with an ephemeral [`crate::ArtifactStore`]: every stage executes, exactly
/// as a from-scratch compile should. Use [`crate::build::build`] (or
/// [`crate::BuildCache`]) with a long-lived store to reuse stages across
/// compiles.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile(graph: &Graph, options: &CompileOptions) -> Result<CompiledApp, CompileError> {
    let mut store = crate::store::ArtifactStore::new();
    crate::build::build(graph, options, &mut store).map(|(app, _)| app)
}

/// The whole-device user region compiled by the monolithic flow.
pub fn monolithic_region(floorplan: &Floorplan) -> Rect {
    let d = &floorplan.device;
    Rect::new(2, 0, d.width - 2, d.height)
}

pub(crate) fn compile_monolithic<C: crate::cache::CacheBackend>(
    graph: &Graph,
    ir: DfgIr,
    options: &CompileOptions,
    t0: std::time::Instant,
    store: &mut C,
    report: &mut crate::build::BuildReport,
) -> Result<CompiledApp, CompileError> {
    // HLS every operator — through the shared store, so a netlist already
    // lowered for a paged compile is reused here — then stitch with hardware
    // FIFOs (the kernel generator of Fig. 7). The monolithic P&R itself has
    // no separately reusable parts: exactly the paper's complaint.
    let mut kernel_netlist = Netlist::new(format!("{}_kernel", graph.name));
    let mut offsets = Vec::new();
    let mut operators = Vec::with_capacity(graph.operators.len());
    let mut hls_executed = 0.0;
    let mut hls_fresh = 0.0;
    let mut reports = Vec::new();

    for op in &graph.operators {
        let key = crate::build::hls_key(crate::build::kernel_hash(&op.kernel));
        let (product, hit) = match store.fetch_hls(key.hash) {
            Some(p) => (p, true),
            None => {
                let hls = hlsim::compile(&op.kernel).map_err(|error| CompileError::Hls {
                    op: op.name.clone(),
                    error,
                })?;
                let p = crate::store::HlsProduct {
                    netlist: hls.netlist,
                    report: hls.report,
                };
                store.put(key, crate::store::StageProduct::Hls(p.clone()));
                (p, false)
            }
        };
        report.record(crate::store::StageKind::HlsLower, hit);
        report.operators.push(crate::build::OperatorStages {
            name: op.name.clone(),
            hits: hit as u64,
            executions: !hit as u64,
        });
        let seconds = options.vtime.hls_seconds(product.report.hls_work);
        hls_fresh += seconds;
        if !hit {
            hls_executed += seconds;
        }
        offsets.push(kernel_netlist.absorb(&product.netlist));
        reports.push(product.report);
    }

    // FIFO per internal link, wired between the stream interface cells.
    for edge in &graph.edges {
        let from_off = offsets[edge.from.0 .0];
        let to_off = offsets[edge.to.0 .0];
        let out_name = format!("out_{}", edge.from.1);
        let in_name = format!("in_{}", edge.to.1);
        let from_cell = kernel_netlist
            .cells
            .iter()
            .enumerate()
            .position(|(i, c)| i >= from_off && c.name == out_name)
            .map(netlist::CellId);
        let to_cell = kernel_netlist
            .cells
            .iter()
            .enumerate()
            .position(|(i, c)| i >= to_off && c.name == in_name)
            .map(netlist::CellId);
        if let (Some(f), Some(t)) = (from_cell, to_cell) {
            let w = edge.elem.width();
            match options.link_style {
                LinkStyle::StreamFifo => {
                    let fifo = kernel_netlist.add_cell(
                        format!("fifo_{}", edge.name),
                        CellKind::FifoBuf {
                            width: w,
                            depth: 512,
                        },
                    );
                    kernel_netlist.add_net(f, vec![fifo], w);
                    kernel_netlist.add_net(fifo, vec![t], w);
                }
                LinkStyle::RelayStation => {
                    // Two elastic registers: same isolation, no BRAM.
                    let r1 = kernel_netlist.add_cell(
                        format!("relay_{}_a", edge.name),
                        CellKind::Register { width: w },
                    );
                    let r2 = kernel_netlist.add_cell(
                        format!("relay_{}_b", edge.name),
                        CellKind::Register { width: w },
                    );
                    kernel_netlist.add_net(f, vec![r1], w);
                    kernel_netlist.add_net(r1, vec![r2], w);
                    kernel_netlist.add_net(r2, vec![t], w);
                }
            }
        }
    }

    let region = monolithic_region(&options.floorplan);
    let opts = PnrOptions {
        seed: options.seed,
        abstract_shell: true,
        effort: 1.0,
    };
    let result = place_and_route(&kernel_netlist, &options.floorplan.device, region, &opts)
        .map_err(|error| CompileError::Pnr {
            op: graph.name.clone(),
            error,
        })?;

    // The fused baseline: identical logic, but linked ports become
    // combinational glue instead of registered stream interfaces, so
    // inter-operator wires join the timing paths (the original
    // undecomposed designs of Tab. 3's "Vitis Flow" row).
    let mut fused = kernel_netlist.clone();
    for edge in &graph.edges {
        let from_off = offsets[edge.from.0 .0];
        let to_off = offsets[edge.to.0 .0];
        let out_name = format!("out_{}", edge.from.1);
        let in_name = format!("in_{}", edge.to.1);
        for (i, cell) in fused.cells.iter_mut().enumerate() {
            let linked =
                (i >= from_off && cell.name == out_name) || (i >= to_off && cell.name == in_name);
            if linked {
                cell.kind = CellKind::Logic {
                    width: edge.elem.width(),
                };
            }
        }
    }
    // FIFO/relay cells between linked ports also fuse to wiring.
    for cell in fused.cells.iter_mut() {
        if cell.name.starts_with("fifo_") || cell.name.starts_with("relay_") {
            cell.kind = CellKind::Logic { width: 1 };
        }
    }
    let fused_result = place_and_route(&fused, &options.floorplan.device, region, &opts).ok();
    let fused_timing = fused_result.as_ref().map(|r| r.timing.clone());
    // The fused baseline models a from-scratch Vitis build, so it is always
    // billed the full (fresh) HLS time.
    let fused_vtime = fused_result.map(|r| PhaseTimes {
        hls: hls_fresh,
        syn: options.vtime.syn_seconds(fused.cell_count() as u64),
        pnr: options.vtime.pnr_seconds(r.work_units),
        bit: options.vtime.bit_seconds(r.bitstream.config_bits),
        riscv: 0.0,
    });

    // Executed cost: HLS stages served from the store are free; the
    // monolithic synthesis, P&R and bitgen always run.
    let vtime = PhaseTimes {
        hls: hls_executed,
        syn: options
            .vtime
            .syn_seconds(kernel_netlist.cell_count() as u64),
        pnr: options.vtime.pnr_seconds(result.work_units),
        bit: options.vtime.bit_seconds(result.bitstream.config_bits),
        riscv: 0.0,
    };
    report.record(crate::store::StageKind::PlaceRoute, false);
    report.record(crate::store::StageKind::BitstreamPack, false);
    report.critical_path_seconds = vtime.total();
    report.fresh_vtime_serial = PhaseTimes {
        hls: hls_fresh,
        ..vtime
    };
    report.fresh_vtime_parallel = report.fresh_vtime_serial;

    for (op, report) in graph.operators.iter().zip(reports) {
        operators.push(CompiledOperator {
            name: op.name.clone(),
            target: op.target,
            page: None,
            artifact: None,
            hls: Some(report),
            timing: None,
            soft: None,
            vtime: PhaseTimes::default(),
            wall_seconds: 0.0,
            source_hash: source_hash(&op.kernel, op.target),
        });
    }

    let bitstream_hash = result.bitstream.payload_hash;
    let artifacts = vec![Xclbin {
        name: "kernel.xclbin".into(),
        kind: XclbinKind::Kernel {
            bitstream: result.bitstream,
        },
        hash: bitstream_hash,
    }];

    Ok(CompiledApp {
        graph: graph.clone(),
        level: OptLevel::O3,
        floorplan: options.floorplan.clone(),
        operators,
        artifacts,
        driver: Driver {
            loads: vec![LoadOp::PageBitstream { artifact: 0 }],
            links: Vec::new(),
        },
        ir,
        monolithic: Some(MonolithicInfo {
            fused_timing,
            fused_vtime,
            netlist: kernel_netlist,
            timing: result.timing,
            work_units: result.work_units,
        }),
        vtime_serial: vtime,
        vtime_parallel: vtime,
        wall_seconds: t0.elapsed().as_secs_f64(),
        edge_depths: None,
        opt: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfg::GraphBuilder;
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn stage(name: &str, addend: i64) -> kir::Kernel {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..64,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    }

    fn three_stage(targets: [Target; 3]) -> Graph {
        let mut b = GraphBuilder::new("pipe");
        let a = b.add("a", stage("a", 1), targets[0]);
        let c = b.add("c", stage("c", 2), targets[1]);
        let d = b.add("d", stage("d", 3), targets[2]);
        b.ext_input("Input_1", a, "in");
        b.connect("l1", a, "out", c, "in");
        b.connect("l2", c, "out", d, "in");
        b.ext_output("Output_1", d, "out");
        b.build().unwrap()
    }

    #[test]
    fn o0_compiles_everything_to_softcores() {
        let g = three_stage([Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O0)).unwrap();
        assert_eq!(app.operators.len(), 3);
        assert!(app.operators.iter().all(|o| o.soft.is_some()));
        assert!(app.vtime_parallel.total() < 10.0, "-O0 compiles in seconds");
        // Driver: overlay + 3 softcore loads; 4 links (2 DMA + 2 internal).
        assert_eq!(app.driver.loads.len(), 4);
        assert_eq!(app.driver.link_packets(), 4);
    }

    #[test]
    fn o1_respects_pragmas_and_is_parallel() {
        let g = three_stage([Target::hw(0), Target::riscv(1), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        assert!(app.operators[0].hls.is_some());
        assert!(app.operators[1].soft.is_some());
        assert_eq!(app.operators[0].page, Some(PageId(0)));
        assert_eq!(app.operators[1].page, Some(PageId(1)));
        // Auto page skips occupied 0 and 1.
        assert_eq!(app.operators[2].page, Some(PageId(2)));
        // Parallel virtual time is below serial (several jobs overlap).
        assert!(app.vtime_parallel.total() <= app.vtime_serial.total());
        // Timing closed at FPGA-plausible frequency.
        let t = app.operators[0].timing.as_ref().unwrap();
        assert!(t.fmax_mhz > 100.0);
    }

    #[test]
    fn o3_builds_one_kernel() {
        let g = three_stage([Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]);
        let app = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        assert_eq!(app.artifacts.len(), 1);
        let mono = app.monolithic.as_ref().unwrap();
        // Stitched netlist contains all three operators plus link FIFOs.
        let fifo_count = mono
            .netlist
            .cells_where(|k| matches!(k, CellKind::FifoBuf { .. }))
            .count();
        assert!(fifo_count >= 2);
        assert!(
            app.driver.links.is_empty(),
            "monolithic needs no linking packets"
        );
    }

    #[test]
    fn o1_beats_o3_compile_time() {
        // The headline result, on a small pipeline.
        let g = three_stage([Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]);
        let o1 = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        let o3 = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        assert!(
            o1.compile_seconds() < o3.compile_seconds(),
            "O1 {} vs O3 {}",
            o1.compile_seconds(),
            o3.compile_seconds()
        );
        let o0 = compile(&g, &CompileOptions::new(OptLevel::O0)).unwrap();
        assert!(o0.compile_seconds() < o1.compile_seconds());
    }

    #[test]
    fn pin_conflicts_rejected() {
        let g = three_stage([Target::hw(3), Target::hw(3), Target::hw_auto()]);
        let err = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap_err();
        assert!(matches!(err, CompileError::PageAssignment { .. }));
    }

    #[test]
    fn bad_pin_rejected() {
        let g = three_stage([Target::hw(99), Target::hw_auto(), Target::hw_auto()]);
        let err = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap_err();
        assert!(matches!(err, CompileError::PageAssignment { .. }));
    }

    #[test]
    fn bft_distance_is_a_metric() {
        assert_eq!(bft_distance(3, 3), 0);
        assert_eq!(bft_distance(0, 1), 2); // siblings share the level-1 switch
        assert_eq!(bft_distance(0, 2), 4);
        assert_eq!(bft_distance(0, 16), 10); // cross a 32-leaf root
        for (a, b) in [(0u32, 5), (7, 19), (2, 3)] {
            assert_eq!(bft_distance(a, b), bft_distance(b, a));
        }
    }

    #[test]
    fn affinity_places_neighbours_in_the_same_subtree() {
        // Pin the first operator deep into the page array; affinity should
        // cluster the rest around it while first-fit runs back to page 0.
        let g = three_stage([Target::hw(16), Target::hw_auto(), Target::hw_auto()]);
        let aff = compile(
            &g,
            &CompileOptions {
                page_assign: PageAssign::Affinity,
                ..CompileOptions::new(OptLevel::O1)
            },
        )
        .unwrap();
        let fit = compile(
            &g,
            &CompileOptions {
                page_assign: PageAssign::FirstFit,
                ..CompileOptions::new(OptLevel::O1)
            },
        )
        .unwrap();
        let pages = |app: &CompiledApp| -> Vec<u32> {
            app.operators.iter().map(|o| o.page.unwrap().0).collect()
        };
        let chain_cost =
            |p: &[u32]| -> u32 { p.windows(2).map(|w| bft_distance(w[0], w[1])).sum() };
        let aff_pages = pages(&aff);
        let fit_pages = pages(&fit);
        assert_eq!(fit_pages, vec![16, 0, 1]);
        assert!(
            chain_cost(&aff_pages) < chain_cost(&fit_pages),
            "affinity {aff_pages:?} vs first-fit {fit_pages:?}"
        );
    }

    #[test]
    fn relay_stations_save_bram_over_fifos() {
        let g = three_stage([Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]);
        let fifo = compile(&g, &CompileOptions::new(OptLevel::O3)).unwrap();
        let relay = compile(
            &g,
            &CompileOptions {
                link_style: LinkStyle::RelayStation,
                ..CompileOptions::new(OptLevel::O3)
            },
        )
        .unwrap();
        let fr = fifo.monolithic.as_ref().unwrap().netlist.resources();
        let rr = relay.monolithic.as_ref().unwrap().netlist.resources();
        assert!(rr.bram18 < fr.bram18, "relay {rr} vs fifo {fr}");
        assert!(rr.ffs > fr.ffs, "relay stations trade FFs for BRAM");
    }

    #[test]
    fn deterministic_artifacts() {
        let g = three_stage([Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]);
        let a = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        let b = compile(&g, &CompileOptions::new(OptLevel::O1)).unwrap();
        let hashes = |app: &CompiledApp| app.artifacts.iter().map(|x| x.hash).collect::<Vec<_>>();
        assert_eq!(hashes(&a), hashes(&b));
    }
}
