//! Simulated-annealing placement with VPR-style incremental net costs.
//!
//! The hot loop evaluates one candidate move per iteration. Instead of
//! rescanning every pin of every touched net (the classic textbook form,
//! kept below as a `#[cfg(test)]` reference), the placer maintains one
//! `NetBox` per net — the net's bounding box plus the number of pins
//! sitting on each of its four boundaries — so a move's delta cost is
//! O(touched nets): each box shifts in O(1) unless the moved cell held the
//! last pin on a shrinking boundary, which triggers a single-net rescan.
//! All scratch storage is hoisted out of the loop, so steady-state move
//! evaluation performs no heap allocation. Results are bit-identical to the
//! reference implementation for any seed: the incremental path reproduces
//! the reference's floating-point summation order exactly (asserted by the
//! A/B tests at the bottom of this file).

use fabric::{ColumnKind, Device, Rect};
use netlist::{CellKind, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{PnrError, PnrOptions};

/// A legal assignment of every cell to a tile.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Tile coordinates per cell, indexed by cell id.
    pub assignment: Vec<(u32, u32)>,
    /// Final wirelength cost (sum of per-net half-perimeter wirelengths,
    /// weighted by bus width).
    pub cost: f64,
    /// Total annealing moves evaluated (a compile-effort measure).
    pub moves_evaluated: u64,
}

/// The tile kind a cell must sit on, and its demand against that tile's
/// primary capacity.
///
/// A multiplier binds to a DSP column, an array to a BRAM column, everything
/// else to CLB fabric; the secondary LUT slice of DSP/BRAM macros is small
/// and folded into the primary demand, keeping legality one-dimensional per
/// tile (documented model simplification).
pub(crate) fn site_requirements(kind: &CellKind) -> (ColumnKind, u64) {
    let r = kind.resources();
    if r.dsp > 0 {
        (ColumnKind::Dsp, r.dsp)
    } else if r.bram18 > 0 {
        (ColumnKind::Bram, r.bram18)
    } else {
        // LUT-equivalents: FFs pack two per LUT site in this model.
        (ColumnKind::Clb, r.luts.max(r.ffs / 2).max(1))
    }
}

pub(crate) fn tile_capacity(kind: ColumnKind) -> u64 {
    match kind {
        ColumnKind::Clb => kind.tile_resources().luts,
        ColumnKind::Bram => kind.tile_resources().bram18,
        ColumnKind::Dsp => kind.tile_resources().dsp,
    }
}

/// Remaining tile capacities inside the placement region. The candidate-site
/// lists per column kind live outside (see [`survey`]) so the annealing loop
/// can borrow them while mutating capacities.
struct Grid {
    /// Remaining capacity per tile (indexed by region-local x, y).
    free: Vec<u64>,
}

/// A candidate tile: its device coordinates plus its precomputed slot in
/// [`Grid::free`], so the move loop never redoes the index arithmetic.
#[derive(Clone, Copy)]
struct Site {
    x: u32,
    y: u32,
    slot: u32,
}

/// Scans the region once, returning the capacity grid and the candidate-site
/// list per column kind. The site lists are built exactly once per placement
/// run and only borrowed afterwards — the annealing loop never clones or
/// reallocates them.
fn survey(device: &Device, region: Rect) -> (Grid, [Vec<Site>; 3]) {
    let mut sites: [Vec<Site>; 3] = Default::default();
    let mut free = vec![0u64; (region.w * region.h) as usize];
    for x in region.x0..region.x0 + region.w {
        for y in region.y0..region.y0 + region.h {
            if device.is_reserved_col(x) {
                continue;
            }
            let kind = device.columns[x as usize];
            let slot = Grid::local_index(&region, x, y);
            sites[kind_index(kind)].push(Site {
                x,
                y,
                slot: slot as u32,
            });
            free[slot] = tile_capacity(kind);
        }
    }
    (Grid { free }, sites)
}

impl Grid {
    fn local_index(region: &Rect, x: u32, y: u32) -> usize {
        ((x - region.x0) * region.h + (y - region.y0)) as usize
    }

    fn free_slot(&self, slot: u32) -> u64 {
        self.free[slot as usize]
    }

    fn take_slot(&mut self, slot: u32, amount: u64) {
        self.free[slot as usize] -= amount;
    }

    fn give_slot(&mut self, slot: u32, amount: u64) {
        self.free[slot as usize] += amount;
    }
}

/// Uniform index in `0..n` from a single generator word via a widening
/// multiply (Lemire's method). The annealing loop draws two indices per
/// move; `gen_range` would cost two generator words plus a 128-bit modulo
/// per draw, which dominates the move evaluation itself once net costs are
/// incremental. Used by both the incremental and reference paths, so the
/// shared RNG stream (and therefore the A/B bit-identity) is unaffected.
#[inline]
fn draw_index(rng: &mut StdRng, n: usize) -> usize {
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as usize
}

/// Uphill moves costing more than this many temperatures are rejected
/// without evaluating `exp` or drawing an acceptance random: their accept
/// probability (`< exp(-20)` ≈ 2e-9) is below one in a billion moves.
const UPHILL_CUTOFF: f64 = 20.0;

fn kind_index(kind: ColumnKind) -> usize {
    match kind {
        ColumnKind::Clb => 0,
        ColumnKind::Bram => 1,
        ColumnKind::Dsp => 2,
    }
}

fn net_hpwl(assignment: &[(u32, u32)], net: &netlist::Net) -> f64 {
    let (dx, dy) = assignment[net.driver.0];
    let mut min_x = dx;
    let mut max_x = dx;
    let mut min_y = dy;
    let mut max_y = dy;
    for s in &net.sinks {
        let (x, y) = assignment[s.0];
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let weight = 1.0 + (net.width as f64).log2() / 8.0;
    ((max_x - min_x) + (max_y - min_y)) as f64 * weight
}

/// A net's bounding box with per-boundary pin counts (VPR's incremental
/// bounding-box structure). The counts let a pin move update the box in O(1)
/// in every case except shrinking past the last pin on a boundary.
#[derive(Debug, Clone, Copy)]
struct NetBox {
    min_x: u32,
    max_x: u32,
    min_y: u32,
    max_y: u32,
    on_min_x: u32,
    on_max_x: u32,
    on_min_y: u32,
    on_max_y: u32,
}

impl NetBox {
    fn new(x: u32, y: u32) -> NetBox {
        NetBox {
            min_x: x,
            max_x: x,
            min_y: y,
            max_y: y,
            on_min_x: 1,
            on_max_x: 1,
            on_min_y: 1,
            on_max_y: 1,
        }
    }

    fn add(&mut self, x: u32, y: u32) {
        if x < self.min_x {
            self.min_x = x;
            self.on_min_x = 1;
        } else if x == self.min_x {
            self.on_min_x += 1;
        }
        if x > self.max_x {
            self.max_x = x;
            self.on_max_x = 1;
        } else if x == self.max_x {
            self.on_max_x += 1;
        }
        if y < self.min_y {
            self.min_y = y;
            self.on_min_y = 1;
        } else if y == self.min_y {
            self.on_min_y += 1;
        }
        if y > self.max_y {
            self.max_y = y;
            self.on_max_y = 1;
        } else if y == self.max_y {
            self.on_max_y += 1;
        }
    }

    /// Builds the box from a net's pins, with the moved cell's pins read at
    /// the candidate position instead of the committed assignment.
    fn scan(pins: &[u32], assignment: &[(u32, u32)], moved: u32, to: (u32, u32)) -> NetBox {
        let coord = |p: u32| {
            if p == moved {
                to
            } else {
                assignment[p as usize]
            }
        };
        let (x0, y0) = coord(pins[0]);
        let mut b = NetBox::new(x0, y0);
        for &p in &pins[1..] {
            let (x, y) = coord(p);
            b.add(x, y);
        }
        b
    }

    /// Half-perimeter wirelength. Uses the same expression as [`net_hpwl`]
    /// so cached values stay bit-identical to a fresh recompute.
    fn hpwl(&self, weight: f64) -> f64 {
        ((self.max_x - self.min_x) + (self.max_y - self.min_y)) as f64 * weight
    }

    /// Moves `m` coincident pins from `old` to `new` along one axis.
    /// Returns `false` when the last pins leave a shrinking boundary, in
    /// which case the box is stale and the caller must [`NetBox::scan`].
    fn shift_x(&mut self, old: u32, new: u32, m: u32) -> bool {
        shift_axis(
            &mut self.min_x,
            &mut self.max_x,
            &mut self.on_min_x,
            &mut self.on_max_x,
            old,
            new,
            m,
        )
    }

    fn shift_y(&mut self, old: u32, new: u32, m: u32) -> bool {
        shift_axis(
            &mut self.min_y,
            &mut self.max_y,
            &mut self.on_min_y,
            &mut self.on_max_y,
            old,
            new,
            m,
        )
    }
}

fn shift_axis(
    min: &mut u32,
    max: &mut u32,
    on_min: &mut u32,
    on_max: &mut u32,
    old: u32,
    new: u32,
    m: u32,
) -> bool {
    if old == new {
        return true;
    }
    // Grow first: a new extreme replaces the boundary outright, landing on
    // an existing boundary joins it.
    if new < *min {
        *min = new;
        *on_min = m;
    } else if new == *min {
        *on_min += m;
    }
    if new > *max {
        *max = new;
        *on_max = m;
    } else if new == *max {
        *on_max += m;
    }
    // Shrink second. If the moved pins were alone on the boundary the new
    // extreme is unknown without a rescan.
    if old == *min {
        if *on_min <= m {
            return false;
        }
        *on_min -= m;
    }
    if old == *max {
        if *on_max <= m {
            return false;
        }
        *on_max -= m;
    }
    true
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable content-derived identity per macro-cell: a hash of the cell's
/// name and kind. Identities survive unrelated edits elsewhere in the
/// kernel — HLS regenerates unchanged cells with the same names and kinds —
/// so a prior placement can be replayed onto the matching cells of the
/// edited netlist (the warm-start diff of [`place_incremental`]).
pub fn cell_identities(netlist: &Netlist) -> Vec<u64> {
    netlist
        .cells
        .iter()
        .map(|c| fnv(c.name.as_bytes()) ^ fnv(format!("{:?}", c.kind).as_bytes()).rotate_left(1))
        .collect()
}

/// Pairs each cell of the new netlist with a prior coordinate by identity.
/// Duplicate identities match occurrence-by-occurrence (k-th new occurrence
/// to k-th prior occurrence), so the pairing is injective and deterministic.
fn match_prior(
    ids: &[u64],
    prior_ids: &[u64],
    prior_assignment: &[(u32, u32)],
) -> Vec<Option<(u32, u32)>> {
    use std::collections::HashMap;
    let mut pool: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, &id) in prior_ids.iter().enumerate() {
        pool.entry(id).or_default().push(i);
    }
    let mut taken: HashMap<u64, usize> = HashMap::new();
    ids.iter()
        .map(|id| {
            let occurrences = pool.get(id)?;
            let k = taken.entry(*id).or_insert(0);
            if *k < occurrences.len() {
                let coord = prior_assignment[occurrences[*k]];
                *k += 1;
                Some(coord)
            } else {
                None
            }
        })
        .collect()
}

/// One adjacency entry: a net touching a cell.
///
/// `other` is the opposite endpoint's cell id when the net has exactly two
/// pins on two distinct cells — the overwhelmingly common case in macro
/// netlists — and `u32::MAX` otherwise. Two-pin nets take a branch-light
/// fast path in the move loop: their HPWL is just the Manhattan distance
/// between the endpoints, no bounding-box bookkeeping needed. A net is
/// two-pin-distinct for *all* cells touching it or for none, so the
/// `boxes` entry of a fast-path net is never read and may go stale.
#[derive(Clone, Copy)]
struct Adj {
    net: u32,
    /// How many of the net's pins belong to the cell (a cell can appear as
    /// driver and sink, or as a repeated sink).
    mult: u32,
    other: u32,
}

/// Per-run placement state shared by the incremental and reference paths:
/// everything the move loop needs, prepared once before annealing starts.
struct PlacerState {
    assignment: Vec<(u32, u32)>,
    /// Primary-capacity demand per cell; `u64::MAX` marks a pinned
    /// multi-tile macro the annealer must not move.
    cell_demand: Vec<u64>,
    /// Site-list index (per [`kind_index`]) per cell, precomputed so the
    /// move loop never re-derives resource requirements.
    cell_kind: Vec<u8>,
    /// Each cell's current slot in [`Grid::free`], so capacity bookkeeping
    /// on accepted moves needs no coordinate-to-index arithmetic.
    cell_slot: Vec<u32>,
    /// Flattened adjacency: `adj_data[adj_off[c]..adj_off[c+1]]` are the
    /// nets touching cell `c`, net ids ascending.
    adj_off: Vec<u32>,
    adj_data: Vec<Adj>,
    /// Flat pin list per net (driver first, then sinks) via `pin_off`.
    pins: Vec<u32>,
    pin_off: Vec<u32>,
    /// Per-net bus-width weight, precomputed once.
    weights: Vec<f64>,
    /// Incremental state: bounding box and cached weighted HPWL per net.
    boxes: Vec<NetBox>,
    cached: Vec<f64>,
}

impl PlacerState {
    fn net_pins(&self, ni: usize) -> &[u32] {
        &self.pins[self.pin_off[ni] as usize..self.pin_off[ni + 1] as usize]
    }
}

/// Adjacency index and flat pin lists. Pin occurrences are kept in the
/// net's declaration order (driver, then sinks) because the cost sums
/// add one term per occurrence; collapsing duplicates into a multiply
/// would change floating-point rounding versus the reference.
#[allow(clippy::type_complexity)]
fn build_net_index(netlist: &Netlist) -> (Vec<u32>, Vec<Adj>, Vec<u32>, Vec<u32>, Vec<f64>) {
    let n_nets = netlist.nets.len();
    let mut adj: Vec<Vec<Adj>> = vec![Vec::new(); netlist.cells.len()];
    let mut pins: Vec<u32> = Vec::new();
    let mut pin_off: Vec<u32> = Vec::with_capacity(n_nets + 1);
    pin_off.push(0);
    for (ni, net) in netlist.nets.iter().enumerate() {
        for c in std::iter::once(net.driver).chain(net.sinks.iter().copied()) {
            pins.push(c.0 as u32);
            let v = &mut adj[c.0];
            match v.last_mut() {
                Some(a) if a.net == ni as u32 => a.mult += 1,
                _ => v.push(Adj {
                    net: ni as u32,
                    mult: 1,
                    other: u32::MAX,
                }),
            }
        }
        // Mark two-pin nets on distinct cells for the fast path.
        let np = &pins[pin_off[ni] as usize..];
        if let &[a, b] = np {
            if a != b {
                adj[a as usize].last_mut().unwrap().other = b;
                adj[b as usize].last_mut().unwrap().other = a;
            }
        }
        pin_off.push(pins.len() as u32);
    }
    let mut adj_off: Vec<u32> = Vec::with_capacity(netlist.cells.len() + 1);
    let mut adj_data: Vec<Adj> = Vec::with_capacity(pins.len());
    adj_off.push(0);
    for v in &adj {
        adj_data.extend_from_slice(v);
        adj_off.push(adj_data.len() as u32);
    }
    let weights: Vec<f64> = netlist
        .nets
        .iter()
        .map(|n| 1.0 + (n.width as f64).log2() / 8.0)
        .collect();
    (adj_off, adj_data, pins, pin_off, weights)
}

/// Places `netlist` into `region` by simulated annealing.
///
/// # Errors
///
/// Returns [`PnrError::DoesNotFit`] if any resource class of the design
/// exceeds the region's capacity.
pub fn place(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    options: &PnrOptions,
) -> Result<Placement, PnrError> {
    place_impl::<false>(netlist, device, region, options)
}

/// The pre-optimization placer: full per-net HPWL recompute on every move.
/// Kept as the ground truth the incremental path is A/B-tested against;
/// both paths share the proposal loop and RNG stream, so for any seed the
/// outputs must be bit-identical.
#[cfg(test)]
pub(crate) fn place_reference(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    options: &PnrOptions,
) -> Result<Placement, PnrError> {
    place_impl::<true>(netlist, device, region, options)
}

fn place_impl<const REFERENCE: bool>(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    options: &PnrOptions,
) -> Result<Placement, PnrError> {
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x706c_6163);
    let (mut grid, site_lists) = survey(device, region);

    // Feasibility check per resource class.
    let demand = netlist.resources();
    let capacity = device.region_resources(&region);
    if !demand.fits_in(&capacity) {
        return Err(PnrError::DoesNotFit {
            what: format!("demand {demand} exceeds region capacity {capacity}"),
        });
    }

    // Greedy initial placement: scan sites of the right kind.
    let mut assignment = vec![(0u32, 0u32); netlist.cells.len()];
    let mut cell_demand = vec![0u64; netlist.cells.len()];
    let mut cell_kind = vec![0u8; netlist.cells.len()];
    let mut cell_slot = vec![0u32; netlist.cells.len()];
    for (i, cell) in netlist.cells.iter().enumerate() {
        let (kind, amount) = site_requirements(&cell.kind);
        cell_demand[i] = amount;
        cell_kind[i] = kind_index(kind) as u8;
        let sites = &site_lists[kind_index(kind)];
        if sites.is_empty() {
            return Err(PnrError::DoesNotFit {
                what: format!("region has no {kind:?} sites for cell `{}`", cell.name),
            });
        }
        let start = rng.gen_range(0..sites.len());
        if amount <= tile_capacity(kind) {
            let mut placed = false;
            for probe in 0..sites.len() {
                let s = sites[(start + probe) % sites.len()];
                if grid.free_slot(s.slot) >= amount {
                    grid.take_slot(s.slot, amount);
                    assignment[i] = (s.x, s.y);
                    cell_slot[i] = s.slot;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PnrError::DoesNotFit {
                    what: format!("no site with {amount} free units for cell `{}`", cell.name),
                });
            }
        } else {
            // A macro wider than one tile (iterative dividers, the leaf
            // interface, wide unrolled datapaths) spreads across several
            // sites; its primary coordinate anchors timing and wiring, and
            // the annealer leaves it pinned.
            let mut remaining = amount;
            let mut anchor = None;
            for probe in 0..sites.len() {
                let s = sites[(start + probe) % sites.len()];
                let free = grid.free_slot(s.slot);
                if free == 0 {
                    continue;
                }
                let take = free.min(remaining);
                grid.take_slot(s.slot, take);
                if anchor.is_none() {
                    anchor = Some((s.x, s.y));
                    cell_slot[i] = s.slot;
                }
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
            match anchor {
                Some(a) if remaining == 0 => assignment[i] = a,
                _ => {
                    return Err(PnrError::DoesNotFit {
                        what: format!(
                            "multi-tile cell `{}` needs {amount} units, {remaining} unplaced",
                            cell.name
                        ),
                    })
                }
            }
            // Multi-tile cells never move; exclude them from annealing by
            // zeroing their demand marker.
            cell_demand[i] = u64::MAX;
        }
    }

    let n_nets = netlist.nets.len();
    let (adj_off, adj_data, pins, pin_off, weights) = build_net_index(netlist);

    let mut st = PlacerState {
        assignment,
        cell_demand,
        cell_kind,
        cell_slot,
        adj_off,
        adj_data,
        pins,
        pin_off,
        weights,
        boxes: Vec::with_capacity(n_nets),
        cached: Vec::with_capacity(n_nets),
    };

    // Initial boxes, cached HPWLs, and total cost — summed in net order,
    // matching the reference's `Iterator::sum` over `net_hpwl`.
    let mut cost = 0.0f64;
    for ni in 0..n_nets {
        let b = NetBox::scan(st.net_pins(ni), &st.assignment, u32::MAX, (0, 0));
        let h = b.hpwl(st.weights[ni]);
        st.boxes.push(b);
        st.cached.push(h);
        cost += h;
    }
    let mut moves_evaluated = 0u64;

    // Annealing schedule: effort scales superlinearly with cell count, the
    // behaviour Sec. 2.2 attributes to production placers. Without the
    // abstract shell the placer drags the whole device context through every
    // temperature step (Sec. 4.1), modelled as a context sweep per step.
    let n_cells = netlist.cells.len().max(2);
    let moves_per_temp = ((n_cells as f64).powf(4.0 / 3.0) * 8.0 * options.effort).ceil() as u64;
    let context_tiles = if options.abstract_shell {
        0u64
    } else {
        (device.width * device.height) as u64
    };

    let mut temperature = (cost / netlist.nets.len().max(1) as f64).max(1.0) * 2.0;
    let min_temp = 0.005;
    // Scratch for the move under evaluation, hoisted out of the loop:
    // steady-state evaluation allocates nothing.
    let mut touched: Vec<(u32, NetBox, f64)> = Vec::with_capacity(8);
    let mut touched_pair: Vec<(u32, f64)> = Vec::with_capacity(8);
    while temperature > min_temp {
        for _ in 0..moves_per_temp {
            moves_evaluated += 1;
            let cell = draw_index(&mut rng, netlist.cells.len());
            let amount = st.cell_demand[cell];
            if amount == u64::MAX {
                continue; // pinned multi-tile macro
            }
            let sites = &site_lists[st.cell_kind[cell] as usize];
            let s = sites[draw_index(&mut rng, sites.len())];
            let (nx, ny) = (s.x, s.y);
            let (ox, oy) = st.assignment[cell];
            if (nx, ny) == (ox, oy) || grid.free_slot(s.slot) < amount {
                continue;
            }
            let entries = st.adj_off[cell] as usize..st.adj_off[cell + 1] as usize;
            // Delta cost over touched nets.
            let delta = if REFERENCE {
                // Ground truth: rescan every pin of every touched net,
                // before and after a trial mutation of the assignment.
                let mut before = 0.0f64;
                for i in entries.clone() {
                    let a = st.adj_data[i];
                    for _ in 0..a.mult {
                        before += net_hpwl(&st.assignment, &netlist.nets[a.net as usize]);
                    }
                }
                st.assignment[cell] = (nx, ny);
                let mut after = 0.0f64;
                for i in entries {
                    let a = st.adj_data[i];
                    for _ in 0..a.mult {
                        after += net_hpwl(&st.assignment, &netlist.nets[a.net as usize]);
                    }
                }
                after - before
            } else {
                touched.clear();
                touched_pair.clear();
                let mut before = 0.0f64;
                let mut after = 0.0f64;
                for i in entries {
                    let a = st.adj_data[i];
                    let niu = a.net as usize;
                    if a.other != u32::MAX {
                        // Two-pin net: HPWL is the Manhattan distance to the
                        // fixed endpoint; no box bookkeeping.
                        let (bx, by) = st.assignment[a.other as usize];
                        let h = (nx.abs_diff(bx) + ny.abs_diff(by)) as f64 * st.weights[niu];
                        before += st.cached[niu];
                        after += h;
                        touched_pair.push((a.net, h));
                        continue;
                    }
                    let mut nb = st.boxes[niu];
                    let ok = nb.shift_x(ox, nx, a.mult) && nb.shift_y(oy, ny, a.mult);
                    if !ok {
                        nb = NetBox::scan(st.net_pins(niu), &st.assignment, cell as u32, (nx, ny));
                    }
                    let h = nb.hpwl(st.weights[niu]);
                    // One term per pin occurrence, matching the reference's
                    // summation order bit for bit.
                    for _ in 0..a.mult {
                        before += st.cached[niu];
                        after += h;
                    }
                    touched.push((a.net, nb, h));
                }
                after - before
            };
            // Uphill moves beyond the cutoff have acceptance probability
            // below exp(-UPHILL_CUTOFF) ~ 2e-9: reject outright and skip
            // both the exp and the acceptance draw.
            let accept = delta <= 0.0
                || (delta < temperature * UPHILL_CUTOFF
                    && rng.gen::<f64>() < (-delta / temperature).exp());
            if accept {
                grid.give_slot(st.cell_slot[cell], amount);
                grid.take_slot(s.slot, amount);
                st.cell_slot[cell] = s.slot;
                cost += delta;
                st.assignment[cell] = (nx, ny);
                if !REFERENCE {
                    for &(ni, h) in &touched_pair {
                        st.cached[ni as usize] = h;
                    }
                    for &(ni, nb, h) in &touched {
                        st.boxes[ni as usize] = nb;
                        st.cached[ni as usize] = h;
                    }
                }
            } else if REFERENCE {
                st.assignment[cell] = (ox, oy);
            }
        }
        // Full-context carry cost: touch every tile of the device once per
        // temperature step when the abstract shell is off.
        moves_evaluated += context_tiles;
        temperature *= 0.88;
    }

    Ok(Placement {
        assignment: st.assignment,
        cost: cost.max(0.0),
        moves_evaluated,
    })
}

/// Chebyshev radius of the candidate-site neighbourhood the warm-start
/// refinement may move a cell within. Unchanged cells start where the prior
/// run left them, so only local cleanup is needed; bounding the move space
/// keeps refinement cost proportional to the edit, not the page.
const LOCALITY_RADIUS: u32 = 6;

/// Warm-starts placement from a prior run's assignment.
///
/// Cells are matched to the prior netlist by content-derived identity
/// ([`cell_identities`]); matched single-tile cells are seeded at their
/// prior coordinates, unmatched (new or changed) cells and multi-tile
/// macros are placed greedily, and a short low-temperature annealing pass
/// refines only the *dirty* cells (unmatched cells plus every cell sharing
/// a net with one) within [`LOCALITY_RADIUS`] of their seed position.
/// `moves_evaluated` therefore scales with the edit size, not the design.
///
/// The result is deterministic for a given (netlist, options, hint) and
/// independent of any parallelism in the surrounding build.
///
/// # Errors
///
/// Returns [`PnrError::DoesNotFit`] exactly as [`place`] would.
pub fn place_incremental(
    netlist: &Netlist,
    device: &Device,
    region: Rect,
    options: &PnrOptions,
    prior_ids: &[u64],
    prior_assignment: &[(u32, u32)],
) -> Result<Placement, PnrError> {
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x706c_6163 ^ 0x7761_726d);
    let (mut grid, site_lists) = survey(device, region);

    let demand = netlist.resources();
    let capacity = device.region_resources(&region);
    if !demand.fits_in(&capacity) {
        return Err(PnrError::DoesNotFit {
            what: format!("demand {demand} exceeds region capacity {capacity}"),
        });
    }

    let ids = cell_identities(netlist);
    let matched = match_prior(&ids, prior_ids, prior_assignment);

    let n_cells = netlist.cells.len();
    let mut assignment = vec![(0u32, 0u32); n_cells];
    let mut cell_demand = vec![0u64; n_cells];
    let mut cell_kind = vec![0u8; n_cells];
    let mut cell_slot = vec![0u32; n_cells];
    let mut seeded = vec![false; n_cells];

    // Pass 1: replay matched single-tile cells at their prior coordinates
    // when the slot is still the right kind and has capacity. The prior
    // assignment was legal and matching is injective, so replay conflicts
    // only arise against cells placed greedily below — checked per slot.
    for (i, cell) in netlist.cells.iter().enumerate() {
        let (kind, amount) = site_requirements(&cell.kind);
        cell_demand[i] = amount;
        cell_kind[i] = kind_index(kind) as u8;
        if amount > tile_capacity(kind) {
            continue; // multi-tile macro: greedy pass
        }
        let Some((x, y)) = matched[i] else { continue };
        if !region.contains(x, y) || device.is_reserved_col(x) || device.columns[x as usize] != kind
        {
            continue;
        }
        let slot = Grid::local_index(&region, x, y) as u32;
        if grid.free_slot(slot) < amount {
            continue;
        }
        grid.take_slot(slot, amount);
        assignment[i] = (x, y);
        cell_slot[i] = slot;
        seeded[i] = true;
    }

    // Pass 2: greedy placement for everything the replay could not seat —
    // the same probe scheme as the cold path's initial placement.
    let mut dirty_cells: Vec<u32> = Vec::new();
    for (i, cell) in netlist.cells.iter().enumerate() {
        if seeded[i] {
            continue;
        }
        let (kind, amount) = site_requirements(&cell.kind);
        let sites = &site_lists[kind_index(kind)];
        if sites.is_empty() {
            return Err(PnrError::DoesNotFit {
                what: format!("region has no {kind:?} sites for cell `{}`", cell.name),
            });
        }
        let start = rng.gen_range(0..sites.len());
        if amount <= tile_capacity(kind) {
            let mut placed = false;
            for probe in 0..sites.len() {
                let s = sites[(start + probe) % sites.len()];
                if grid.free_slot(s.slot) >= amount {
                    grid.take_slot(s.slot, amount);
                    assignment[i] = (s.x, s.y);
                    cell_slot[i] = s.slot;
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(PnrError::DoesNotFit {
                    what: format!("no site with {amount} free units for cell `{}`", cell.name),
                });
            }
            dirty_cells.push(i as u32);
        } else {
            let mut remaining = amount;
            let mut anchor = None;
            for probe in 0..sites.len() {
                let s = sites[(start + probe) % sites.len()];
                let free = grid.free_slot(s.slot);
                if free == 0 {
                    continue;
                }
                let take = free.min(remaining);
                grid.take_slot(s.slot, take);
                if anchor.is_none() {
                    anchor = Some((s.x, s.y));
                    cell_slot[i] = s.slot;
                }
                remaining -= take;
                if remaining == 0 {
                    break;
                }
            }
            match anchor {
                Some(a) if remaining == 0 => assignment[i] = a,
                _ => {
                    return Err(PnrError::DoesNotFit {
                        what: format!(
                            "multi-tile cell `{}` needs {amount} units, {remaining} unplaced",
                            cell.name
                        ),
                    })
                }
            }
            cell_demand[i] = u64::MAX;
        }
    }

    let n_nets = netlist.nets.len();
    let (adj_off, adj_data, pins, pin_off, weights) = build_net_index(netlist);
    let mut st = PlacerState {
        assignment,
        cell_demand,
        cell_kind,
        cell_slot,
        adj_off,
        adj_data,
        pins,
        pin_off,
        weights,
        boxes: Vec::with_capacity(n_nets),
        cached: Vec::with_capacity(n_nets),
    };

    let mut cost = 0.0f64;
    for ni in 0..n_nets {
        let b = NetBox::scan(st.net_pins(ni), &st.assignment, u32::MAX, (0, 0));
        let h = b.hpwl(st.weights[ni]);
        st.boxes.push(b);
        st.cached.push(h);
        cost += h;
    }
    let mut moves_evaluated = 0u64;

    // Dirty set: greedily-placed cells plus every movable cell sharing a
    // net with one — the locality frontier the refinement may touch.
    let mut in_dirty = vec![false; n_cells];
    for &c in &dirty_cells {
        in_dirty[c as usize] = true;
    }
    for &c in &dirty_cells.clone() {
        let entries = st.adj_off[c as usize] as usize..st.adj_off[c as usize + 1] as usize;
        for i in entries {
            let ni = st.adj_data[i].net as usize;
            for &p in st.net_pins(ni) {
                if !in_dirty[p as usize] && st.cell_demand[p as usize] != u64::MAX {
                    in_dirty[p as usize] = true;
                    dirty_cells.push(p);
                }
            }
        }
    }
    dirty_cells.sort_unstable();
    dirty_cells.retain(|&c| st.cell_demand[c as usize] != u64::MAX);

    if !dirty_cells.is_empty() {
        // Candidate sites per dirty cell: its kind's sites within
        // LOCALITY_RADIUS of the seed position.
        let candidates: Vec<Vec<Site>> = dirty_cells
            .iter()
            .map(|&c| {
                let (cx, cy) = st.assignment[c as usize];
                site_lists[st.cell_kind[c as usize] as usize]
                    .iter()
                    .filter(|s| {
                        s.x.abs_diff(cx) <= LOCALITY_RADIUS && s.y.abs_diff(cy) <= LOCALITY_RADIUS
                    })
                    .copied()
                    .collect()
            })
            .collect();

        // Short low-temperature schedule sized to the dirty set: a tenth of
        // the cold starting temperature, cooling fast.
        let d = dirty_cells.len().max(2);
        let moves_per_temp = ((d as f64).powf(4.0 / 3.0) * 8.0 * options.effort).ceil() as u64;
        let context_tiles = if options.abstract_shell {
            0u64
        } else {
            (device.width * device.height) as u64
        };
        let mut temperature = (cost / n_nets.max(1) as f64).max(1.0) * 0.2;
        let min_temp = 0.005;
        let mut touched: Vec<(u32, NetBox, f64)> = Vec::with_capacity(8);
        let mut touched_pair: Vec<(u32, f64)> = Vec::with_capacity(8);
        while temperature > min_temp {
            for _ in 0..moves_per_temp {
                moves_evaluated += 1;
                let di = draw_index(&mut rng, dirty_cells.len());
                let cell = dirty_cells[di] as usize;
                let amount = st.cell_demand[cell];
                let sites = &candidates[di];
                if sites.is_empty() {
                    continue;
                }
                let s = sites[draw_index(&mut rng, sites.len())];
                let (nx, ny) = (s.x, s.y);
                let (ox, oy) = st.assignment[cell];
                if (nx, ny) == (ox, oy) || grid.free_slot(s.slot) < amount {
                    continue;
                }
                let entries = st.adj_off[cell] as usize..st.adj_off[cell + 1] as usize;
                touched.clear();
                touched_pair.clear();
                let mut before = 0.0f64;
                let mut after = 0.0f64;
                for i in entries {
                    let a = st.adj_data[i];
                    let niu = a.net as usize;
                    if a.other != u32::MAX {
                        let (bx, by) = st.assignment[a.other as usize];
                        let h = (nx.abs_diff(bx) + ny.abs_diff(by)) as f64 * st.weights[niu];
                        before += st.cached[niu];
                        after += h;
                        touched_pair.push((a.net, h));
                        continue;
                    }
                    let mut nb = st.boxes[niu];
                    let ok = nb.shift_x(ox, nx, a.mult) && nb.shift_y(oy, ny, a.mult);
                    if !ok {
                        nb = NetBox::scan(st.net_pins(niu), &st.assignment, cell as u32, (nx, ny));
                    }
                    let h = nb.hpwl(st.weights[niu]);
                    for _ in 0..a.mult {
                        before += st.cached[niu];
                        after += h;
                    }
                    touched.push((a.net, nb, h));
                }
                let delta = after - before;
                let accept = delta <= 0.0
                    || (delta < temperature * UPHILL_CUTOFF
                        && rng.gen::<f64>() < (-delta / temperature).exp());
                if accept {
                    grid.give_slot(st.cell_slot[cell], amount);
                    grid.take_slot(s.slot, amount);
                    st.cell_slot[cell] = s.slot;
                    cost += delta;
                    st.assignment[cell] = (nx, ny);
                    for &(ni, h) in &touched_pair {
                        st.cached[ni as usize] = h;
                    }
                    for &(ni, nb, h) in &touched {
                        st.boxes[ni as usize] = nb;
                        st.cached[ni as usize] = h;
                    }
                }
            }
            moves_evaluated += context_tiles;
            temperature *= 0.8;
        }
    }

    Ok(Placement {
        assignment: st.assignment,
        cost: cost.max(0.0),
        moves_evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::CellKind;

    fn small_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_cell("a", CellKind::StreamIn { width: 32 });
        let b = nl.add_cell("b", CellKind::Adder { width: 32 });
        let c = nl.add_cell("c", CellKind::Mult { width: 18 });
        let d = nl.add_cell("d", CellKind::BramPort { bits: 4096 });
        let e = nl.add_cell("e", CellKind::StreamOut { width: 32 });
        nl.add_net(a, vec![b], 32);
        nl.add_net(b, vec![c, d], 32);
        nl.add_net(c, vec![e], 32);
        nl.add_net(d, vec![e], 32);
        nl
    }

    fn page() -> (Device, Rect) {
        let fp = fabric::Floorplan::u50();
        (fp.device, fp.pages[0].rect)
    }

    #[test]
    fn placement_is_legal() {
        let (device, region) = page();
        let nl = small_netlist();
        let p = place(&nl, &device, region, &PnrOptions::default()).unwrap();
        // Every cell inside the region, on a tile of its kind.
        for (i, &(x, y)) in p.assignment.iter().enumerate() {
            assert!(
                region.contains(x, y),
                "cell {i} at ({x},{y}) outside region"
            );
            let (want, _) = site_requirements(&nl.cells[i].kind);
            assert_eq!(device.columns[x as usize], want, "cell {i}");
        }
    }

    #[test]
    fn capacity_respected_per_tile() {
        let (device, region) = page();
        let nl = small_netlist();
        let p = place(&nl, &device, region, &PnrOptions::default()).unwrap();
        let mut used: std::collections::HashMap<(u32, u32), u64> = Default::default();
        for (i, &(x, y)) in p.assignment.iter().enumerate() {
            let (_, amount) = site_requirements(&nl.cells[i].kind);
            *used.entry((x, y)).or_default() += amount;
        }
        for ((x, _y), amount) in used {
            let cap = tile_capacity(device.columns[x as usize]);
            assert!(amount <= cap, "tile overloaded: {amount} > {cap}");
        }
    }

    #[test]
    fn annealing_reduces_cost_vs_random_start() {
        // Build a chain: optimal placement keeps neighbours adjacent, so the
        // final cost must be far below a spread-out random placement's cost.
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_cell("c0", CellKind::Adder { width: 8 });
        for i in 1..60 {
            let c = nl.add_cell(format!("c{i}"), CellKind::Adder { width: 8 });
            nl.add_net(prev, vec![c], 8);
            prev = c;
        }
        let (device, region) = page();
        let p = place(&nl, &device, region, &PnrOptions::default()).unwrap();
        // 59 nets on a 10-tall page; a good placement keeps mean HPWL ~1-2.
        assert!(p.cost < 59.0 * 4.0, "cost {}", p.cost);
    }

    #[test]
    fn effort_scales_moves() {
        let (device, region) = page();
        let nl = small_netlist();
        let lo = place(
            &nl,
            &device,
            region,
            &PnrOptions {
                effort: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let hi = place(
            &nl,
            &device,
            region,
            &PnrOptions {
                effort: 2.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(hi.moves_evaluated > lo.moves_evaluated);
    }

    #[test]
    fn no_abstract_shell_costs_more_work() {
        let (device, region) = page();
        let nl = small_netlist();
        let fast = place(&nl, &device, region, &PnrOptions::default()).unwrap();
        let slow = place(
            &nl,
            &device,
            region,
            &PnrOptions {
                abstract_shell: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(slow.moves_evaluated > fast.moves_evaluated * 2);
    }

    #[test]
    fn missing_site_kind_reported() {
        // A region with no DSP columns cannot host a multiplier.
        let device = Device::xcu50();
        let region = Rect::new(2, 0, 3, 10); // cols 2-4: CLB only
        let mut nl = Netlist::new("m");
        let a = nl.add_cell("a", CellKind::Mult { width: 32 });
        let b = nl.add_cell("b", CellKind::Register { width: 32 });
        nl.add_net(a, vec![b], 32);
        let err = place(&nl, &device, region, &PnrOptions::default()).unwrap_err();
        assert!(matches!(err, PnrError::DoesNotFit { .. }));
    }

    /// Random netlists for the A/B test, adversarial on purpose: repeated
    /// sinks, driver-as-sink self loops, wide fanout, mixed cell kinds.
    fn random_netlist(rng: &mut StdRng, n_cells: usize, n_nets: usize) -> Netlist {
        let mut nl = Netlist::new("rand");
        let mut ids = Vec::with_capacity(n_cells);
        for i in 0..n_cells {
            let kind = match rng.gen_range(0..5) {
                0 => CellKind::Adder { width: 32 },
                1 => CellKind::Mult { width: 18 },
                2 => CellKind::Register { width: 32 },
                3 => CellKind::BramPort { bits: 4096 },
                _ => CellKind::Logic { width: 16 },
            };
            ids.push(nl.add_cell(format!("c{i}"), kind));
        }
        for _ in 0..n_nets {
            let driver = ids[rng.gen_range(0..n_cells)];
            let n_sinks = 1 + rng.gen_range(0..4usize);
            let mut sinks = Vec::with_capacity(n_sinks);
            for _ in 0..n_sinks {
                sinks.push(ids[rng.gen_range(0..n_cells)]);
            }
            let width = 1u32 << rng.gen_range(0..7u32);
            nl.add_net(driver, sinks, width);
        }
        nl
    }

    #[test]
    fn incremental_matches_reference_bit_for_bit() {
        let (device, region) = page();
        let mut gen = StdRng::seed_from_u64(0xab);
        for case in 0..12u64 {
            let n_cells = 4 + (case as usize % 5) * 7;
            let nl = random_netlist(&mut gen, n_cells, n_cells * 2);
            let opts = PnrOptions {
                seed: case * 7 + 1,
                effort: 0.5,
                ..Default::default()
            };
            let fast = place(&nl, &device, region, &opts).unwrap();
            let slow = place_reference(&nl, &device, region, &opts).unwrap();
            assert_eq!(fast.assignment, slow.assignment, "case {case}");
            assert_eq!(
                fast.cost.to_bits(),
                slow.cost.to_bits(),
                "case {case}: {} vs {}",
                fast.cost,
                slow.cost
            );
            assert_eq!(fast.moves_evaluated, slow.moves_evaluated, "case {case}");
        }
    }

    #[test]
    fn incremental_matches_reference_on_chain() {
        // The chain exercises long sequences of boundary-shrink rescans.
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_cell("c0", CellKind::Adder { width: 8 });
        for i in 1..40 {
            let c = nl.add_cell(format!("c{i}"), CellKind::Adder { width: 8 });
            nl.add_net(prev, vec![c], 8);
            prev = c;
        }
        let (device, region) = page();
        for seed in [1u64, 2, 99] {
            let opts = PnrOptions {
                seed,
                ..Default::default()
            };
            let fast = place(&nl, &device, region, &opts).unwrap();
            let slow = place_reference(&nl, &device, region, &opts).unwrap();
            assert_eq!(fast.assignment, slow.assignment, "seed {seed}");
            assert_eq!(fast.cost.to_bits(), slow.cost.to_bits(), "seed {seed}");
            assert_eq!(fast.moves_evaluated, slow.moves_evaluated);
        }
    }

    /// Assertion-free smoke measurement: prints the evaluated-moves-per-
    /// second rate so effort-accounting regressions are visible in test
    /// logs without making CI timing-sensitive.
    #[test]
    fn moves_per_sec_smoke() {
        let mut nl = Netlist::new("smoke");
        let mut prev = nl.add_cell("c0", CellKind::Adder { width: 32 });
        for i in 1..50 {
            let c = nl.add_cell(format!("c{i}"), CellKind::Adder { width: 32 });
            nl.add_net(prev, vec![c], 32);
            prev = c;
        }
        let (device, region) = page();
        let t0 = std::time::Instant::now();
        let p = place(&nl, &device, region, &PnrOptions::default()).unwrap();
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        println!(
            "placer smoke: {} moves in {:.3}s = {:.0} moves/sec",
            p.moves_evaluated,
            secs,
            p.moves_evaluated as f64 / secs
        );
    }
}
