//! Softcore binaries and the pre-linker/loader packing.
//!
//! The `-O0` flow (paper Sec. 6.1, Fig. 5) compiles each operator to "a
//! standalone binary in standard ELF format"; the pre-linker/loader (`pld`)
//! then "packs the binary with headers that indicate the final page number
//! and the memory address for each binary byte", and the generated driver
//! loads those bytes into the softcore memories over the linking network.

use serde::{Deserialize, Serialize};

use crate::cpu::Cpu;
use crate::firmware::Intrinsic;

/// A compiled operator binary (the ELF analogue).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftBinary {
    /// Operator name.
    pub name: String,
    /// Code words, loaded at address 0.
    pub code: Vec<u32>,
    /// Initialized data sections (address, bytes) — array ROMs.
    pub data_init: Vec<(u32, Vec<u8>)>,
    /// Unified memory the operator needs (code + data + stack).
    pub mem_bytes: u32,
    /// Firmware intrinsic table referenced by `ecall`s in the code.
    pub intrinsics: Vec<Intrinsic>,
    /// Number of input stream ports.
    pub in_ports: u32,
    /// Number of output stream ports.
    pub out_ports: u32,
    /// Entry point.
    pub entry: u32,
}

impl SoftBinary {
    /// Instantiates a softcore with this binary loaded — the paper's
    /// "loads the packed ELF binaries into the appropriate softcore
    /// memories".
    pub fn instantiate(&self) -> Cpu {
        let mut cpu = Cpu::new(self.mem_bytes, self.intrinsics.clone());
        // Write code words straight into the fresh memory image — no
        // intermediate byte buffer, no invalidation (the cache is empty).
        for (dst, w) in cpu.mem[..self.code.len() * 4]
            .chunks_exact_mut(4)
            .zip(&self.code)
        {
            dst.copy_from_slice(&w.to_le_bytes());
        }
        for (addr, bytes) in &self.data_init {
            cpu.load(*addr, bytes);
        }
        cpu.pc = self.entry;
        cpu
    }

    /// Total bytes the loader must move (code + initialized data): the
    /// quantity behind Sec. 5.2's "code and data footprint... typically
    /// 30–60 KB".
    pub fn load_bytes(&self) -> u64 {
        self.code.len() as u64 * 4
            + self
                .data_init
                .iter()
                .map(|(_, b)| b.len() as u64)
                .sum::<u64>()
    }

    /// BRAM18s the unified memory consumes.
    pub fn bram18s(&self) -> u64 {
        (self.mem_bytes as u64 * 8).div_ceil(18 * 1024)
    }

    /// Packs the binary for a page (the pre-linker/loader step).
    pub fn pack(&self, page: u32) -> PackedBinary {
        let mut records = vec![(
            0u32,
            self.code
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .collect::<Vec<u8>>(),
        )];
        records.extend(self.data_init.iter().cloned());
        PackedBinary {
            operator: self.name.clone(),
            page,
            records,
        }
    }
}

/// A binary packed with load headers: the `pld` output of Fig. 5.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedBinary {
    /// Operator name.
    pub operator: String,
    /// Destination page number.
    pub page: u32,
    /// Load records: (softcore memory address, bytes).
    pub records: Vec<(u32, Vec<u8>)>,
}

impl PackedBinary {
    /// Total payload bytes (what the driver streams over the NoC).
    pub fn payload_bytes(&self) -> u64 {
        self.records.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Applies the load records to a softcore.
    pub fn load_into(&self, cpu: &mut Cpu) {
        for (addr, bytes) in &self.records {
            cpu.load(*addr, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn tiny_binary() -> SoftBinary {
        SoftBinary {
            name: "t".into(),
            code: vec![Instr::Ebreak.encode()],
            data_init: vec![(0x100, vec![1, 2, 3, 4])],
            mem_bytes: 4096,
            intrinsics: vec![],
            in_ports: 1,
            out_ports: 1,
            entry: 0,
        }
    }

    #[test]
    fn instantiate_loads_code_and_data() {
        let cpu = tiny_binary().instantiate();
        assert_eq!(cpu.peek_word(0), Instr::Ebreak.encode());
        assert_eq!(cpu.peek_word(0x100), 0x04030201);
    }

    #[test]
    fn pack_roundtrip() {
        let bin = tiny_binary();
        let packed = bin.pack(7);
        assert_eq!(packed.page, 7);
        assert_eq!(packed.payload_bytes(), 8);
        let mut cpu = Cpu::new(4096, vec![]);
        packed.load_into(&mut cpu);
        assert_eq!(cpu.peek_word(0x100), 0x04030201);
    }

    #[test]
    fn footprint_accounting() {
        let bin = tiny_binary();
        assert_eq!(bin.load_bytes(), 8);
        assert_eq!(bin.bram18s(), 2); // 4 KiB = 32 Kib over 18 Kib BRAMs
    }
}
