//! Threaded Kahn-process-network stream links.
//!
//! Used by the host execution mode (the paper's "X86 g++" column in Tab. 3),
//! where each dataflow operator runs as an OS thread and the latency-
//! insensitive links become bounded channels: reads block on empty
//! (data presence) and writes block on full (backpressure).

use crossbeam::channel::{Receiver, RecvError, SendError, Sender};
use std::fmt;

/// Error returned by [`StreamReader::read`] when the stream is closed and
/// drained: every producer has finished and no tokens remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadError;

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream closed: producer finished and FIFO drained")
    }
}

impl std::error::Error for ReadError {}

/// Error returned by [`StreamWriter::write`] when the consumer side has hung
/// up, so the token can never be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteError;

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream closed: consumer hung up")
    }
}

impl std::error::Error for WriteError {}

/// Producer endpoint of a latency-insensitive stream link.
#[derive(Debug, Clone)]
pub struct StreamWriter<T> {
    tx: Sender<T>,
}

/// Consumer endpoint of a latency-insensitive stream link.
#[derive(Debug, Clone)]
pub struct StreamReader<T> {
    rx: Receiver<T>,
}

/// Creates a latency-insensitive stream link of the given FIFO depth.
///
/// # Panics
///
/// Panics if `capacity` is zero (a rendezvous channel is not a FIFO and can
/// deadlock a Kahn network that assumes at least one token of slack).
///
/// # Examples
///
/// ```
/// let (tx, rx) = listream::channel::<u32>(4);
/// std::thread::spawn(move || {
///     for i in 0..10 {
///         tx.write(i).unwrap();
///     }
/// });
/// let got: Vec<u32> = rx.iter().collect();
/// assert_eq!(got, (0..10).collect::<Vec<_>>());
/// ```
pub fn channel<T>(capacity: usize) -> (StreamWriter<T>, StreamReader<T>) {
    assert!(capacity > 0, "stream FIFO capacity must be at least 1");
    let (tx, rx) = crossbeam::channel::bounded(capacity);
    (StreamWriter { tx }, StreamReader { rx })
}

impl<T> StreamWriter<T> {
    /// Writes a token, blocking while the FIFO is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns [`WriteError`] if every reader has been dropped.
    pub fn write(&self, token: T) -> Result<(), WriteError> {
        self.tx.send(token).map_err(|SendError(_)| WriteError)
    }

    /// Attempts a non-blocking write. Returns the token back on failure,
    /// mirroring a hardware `full` rejection.
    pub fn try_write(&self, token: T) -> Result<(), T> {
        self.tx.try_send(token).map_err(|e| e.into_inner())
    }
}

impl<T> StreamReader<T> {
    /// Reads a token, blocking while the FIFO is empty (data presence).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] once all writers are dropped and the FIFO is
    /// drained — the stream's end-of-computation condition.
    pub fn read(&self) -> Result<T, ReadError> {
        self.rx.recv().map_err(|RecvError| ReadError)
    }

    /// Attempts a non-blocking read.
    pub fn try_read(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }

    /// Returns an iterator that drains the stream until it closes.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.rx.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn tokens_arrive_in_order() {
        let (tx, rx) = channel::<u32>(3);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.write(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_blocks_producer() {
        let (tx, rx) = channel::<u32>(1);
        tx.write(1).unwrap();
        // FIFO is full: non-blocking write must be rejected with the token.
        assert_eq!(tx.try_write(2), Err(2));
        assert_eq!(rx.try_read(), Some(1));
        assert_eq!(tx.try_write(2), Ok(()));
    }

    #[test]
    fn read_after_close_errors() {
        let (tx, rx) = channel::<u32>(2);
        tx.write(9).unwrap();
        drop(tx);
        assert_eq!(rx.read(), Ok(9));
        assert_eq!(rx.read(), Err(ReadError));
    }

    #[test]
    fn write_after_reader_gone_errors() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.write(1), Err(WriteError));
    }

    #[test]
    fn blocking_read_waits_for_data() {
        let (tx, rx) = channel::<u32>(1);
        let reader = thread::spawn(move || rx.read().unwrap());
        thread::sleep(Duration::from_millis(10));
        tx.write(42).unwrap();
        assert_eq!(reader.join().unwrap(), 42);
    }

    #[test]
    fn pipeline_of_three_stages_runs_to_completion() {
        // unpack -> double -> sum, the shape of the paper's Fig. 2 graph.
        let (tx0, rx0) = channel::<u32>(2);
        let (tx1, rx1) = channel::<u32>(2);
        let stage1 = thread::spawn(move || {
            while let Ok(v) = rx0.read() {
                tx1.write(v * 2).unwrap();
            }
        });
        let sum = thread::spawn(move || rx1.iter().map(u64::from).sum::<u64>());
        for i in 0..1000u32 {
            tx0.write(i).unwrap();
        }
        drop(tx0);
        stage1.join().unwrap();
        assert_eq!(sum.join().unwrap(), (0..1000u64).map(|i| i * 2).sum());
    }
}
