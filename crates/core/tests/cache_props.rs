//! Property tests for the persistent artifact cache: the on-disk codec
//! round-trips (current v3 format and the v2 compatibility path), corrupted
//! or truncated cache files degrade to a cold start instead of panicking,
//! concurrent writer instances never corrupt each other, and the eviction
//! order implements the saved-vtime-per-byte rule.

use dfg::{Graph, GraphBuilder, Target};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::cache::{eviction_order, EvictCandidate};
use pld::{
    build, ArtifactStore, CacheBackend, CompileOptions, Driver, LoadOp, OptLevel, StageKey,
    StageKind, StageProduct, TieredCache,
};
use proptest::prelude::*;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "pld-cache-props-{tag}-{}-{nanos}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..16,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

fn pipeline() -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let a = b.add("a", stage("a", 1), Target::hw_auto());
    let c = b.add("c", stage("c", 2), Target::riscv_auto());
    let d = b.add("d", stage("d", 3), Target::hw_auto());
    b.ext_input("Input_1", a, "in");
    b.connect("l1", a, "out", c, "in");
    b.connect("l2", c, "out", d, "in");
    b.ext_output("Output_1", d, "out");
    b.build().unwrap()
}

/// A store holding every product kind the real flow produces.
fn built_store() -> ArtifactStore {
    let mut store = ArtifactStore::new();
    build(&pipeline(), &CompileOptions::new(OptLevel::O1), &mut store).unwrap();
    store
}

fn driver_product(loads: &[u8]) -> StageProduct {
    StageProduct::Driver(Driver {
        loads: loads
            .iter()
            .map(|&i| match i % 3 {
                0 => LoadOp::Overlay,
                1 => LoadOp::PageBitstream {
                    artifact: i as usize,
                },
                _ => LoadOp::SoftcoreImage {
                    artifact: i as usize,
                },
            })
            .collect(),
        links: Vec::new(),
    })
}

fn driver_key(hash: u64) -> StageKey {
    StageKey {
        kind: StageKind::LinkDriver,
        hash,
    }
}

/// All real product kinds survive the v3 byte codec and the v2
/// compatibility reader bit-identically.
#[test]
fn built_store_round_trips_v3_and_v2() {
    let store = built_store();
    assert!(store.len() >= 7, "want all stage kinds represented");
    let v3 = ArtifactStore::from_bytes(&store.to_bytes()).unwrap();
    assert_eq!(v3.to_bytes(), store.to_bytes());
    let v2 = ArtifactStore::from_bytes(&store.to_bytes_v2()).unwrap();
    assert_eq!(v2.to_bytes(), store.to_bytes());
}

/// Cost-weighted eviction at the cache level: under a byte budget the
/// evicted drivers are exactly the fattest ones (equal recompute cost, so
/// saved-vtime-per-byte is inverse to size).
#[test]
fn budget_evicts_fattest_equal_cost_entries_first() {
    let dir = tmp_dir("budget-order");
    let mut cache = TieredCache::open_with(&dir, Some(100)).unwrap();
    for (hash, n_loads) in [(1u64, 1usize), (2, 400), (3, 2), (4, 200)] {
        cache.put(driver_key(hash), driver_product(&vec![1; n_loads]));
    }
    let mut evicted = cache.persist().unwrap();
    evicted.sort_by_key(|k| k.hash);
    let hashes: Vec<u64> = evicted.iter().map(|k| k.hash).collect();
    assert_eq!(hashes, vec![2, 4], "largest drivers evicted first");
    assert!(cache.contains(driver_key(1)));
    assert!(cache.contains(driver_key(3)));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random driver stores round-trip through both on-disk codecs.
    #[test]
    fn random_store_round_trips_both_formats(
        entries in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..6)), 0..8),
    ) {
        let mut store = ArtifactStore::new();
        for (i, (hash, loads)) in entries.iter().enumerate() {
            // Index-salted hash: duplicate random hashes would trip the
            // keep-first collision debug-assert with unequal products.
            store.insert(driver_key(hash ^ (i as u64) << 48), driver_product(loads));
        }
        let v3 = ArtifactStore::from_bytes(&store.to_bytes()).unwrap();
        prop_assert_eq!(v3.to_bytes(), store.to_bytes());
        let v2 = ArtifactStore::from_bytes(&store.to_bytes_v2()).unwrap();
        prop_assert_eq!(v2.to_bytes(), store.to_bytes());
    }

    /// Flipping or truncating any byte of any cache file never panics and
    /// never serves a wrong product: every key either hits with the
    /// original bytes or degrades to a miss, and the cache accepts new
    /// writes afterwards (cold start, not a wedge).
    #[test]
    fn corrupted_cache_files_degrade_to_cold_start(
        file_pick in any::<usize>(),
        pos in any::<usize>(),
        flip in any::<bool>(),
        bit in 0u8..8,
    ) {
        let dir = tmp_dir("corrupt");
        let products: Vec<(StageKey, StageProduct)> = (0u64..4)
            .map(|h| (driver_key(h), driver_product(&[h as u8; 3])))
            .collect();
        {
            let mut cache = TieredCache::open(&dir).unwrap();
            for (k, p) in &products {
                cache.put(*k, p.clone());
            }
            cache.persist().unwrap();
        }

        // Corrupt one cache file at an arbitrary position.
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        prop_assert!(!files.is_empty());
        let target = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(target).unwrap();
        if bytes.is_empty() {
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        }
        if flip {
            let at = pos % bytes.len();
            bytes[at] ^= 1 << bit;
        } else {
            bytes.truncate(pos % bytes.len());
        }
        std::fs::write(target, &bytes).unwrap();

        let mut cache = TieredCache::open(&dir).unwrap();
        for (k, p) in &products {
            // A miss is acceptable (degraded to cold start); a hit must be
            // the original product.
            if let Some(got) = cache.fetch(*k) {
                prop_assert_eq!(&got, p, "corruption served wrong product");
            }
        }
        // Still writable: re-put everything and a reopen sees it all.
        for (k, p) in &products {
            cache.put(*k, p.clone());
        }
        cache.persist().unwrap();
        drop(cache);
        let mut back = TieredCache::open(&dir).unwrap();
        for (k, p) in &products {
            let got = back.fetch(*k);
            prop_assert_eq!(got.as_ref(), Some(p));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two concurrent writer instances over one directory never corrupt
    /// each other: a fresh open sees the union of both write sets.
    #[test]
    fn concurrent_writers_preserve_both_write_sets(
        n_a in 1usize..6,
        n_b in 1usize..6,
        compact_after in any::<bool>(),
    ) {
        let dir = tmp_dir("writers");
        let write_set = |tag: u64, n: usize| -> Vec<(StageKey, StageProduct)> {
            (0..n as u64)
                .map(|h| (driver_key(tag << 32 | h), driver_product(&[h as u8, tag as u8])))
                .collect()
        };
        let set_a = write_set(1, n_a);
        let set_b = write_set(2, n_b);
        let spawn = |dir: std::path::PathBuf, set: Vec<(StageKey, StageProduct)>| {
            std::thread::spawn(move || {
                let mut cache = TieredCache::open(&dir).unwrap();
                for (k, p) in set {
                    cache.put(k, p);
                }
                cache.persist().unwrap();
            })
        };
        let ta = spawn(dir.clone(), set_a.clone());
        let tb = spawn(dir.clone(), set_b.clone());
        ta.join().unwrap();
        tb.join().unwrap();

        let mut cache = TieredCache::open(&dir).unwrap();
        if compact_after {
            prop_assert!(cache.compact().unwrap());
        }
        for (k, p) in set_a.iter().chain(&set_b) {
            let got = cache.fetch(*k);
            prop_assert_eq!(got.as_ref(), Some(p), "lost {}", k);
        }
        prop_assert_eq!(CacheBackend::len(&cache), n_a + n_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `eviction_order` is a permutation sorted by ascending saved-vtime-
    /// per-byte, with LRU (ascending last access) breaking value ties.
    #[test]
    fn eviction_order_matches_value_per_byte_rule(
        raw in proptest::collection::vec(
            (0.0f64..100.0, 0u64..10_000, 0u64..50), 1..20),
    ) {
        let cands: Vec<EvictCandidate> = raw
            .iter()
            .enumerate()
            .map(|(i, &(cost, bytes, last))| EvictCandidate {
                key: StageKey {
                    kind: StageKind::PlaceRoute,
                    hash: i as u64,
                },
                cost_seconds: cost,
                bytes,
                last_access: last,
            })
            .collect();
        let order = eviction_order(&cands);

        // Permutation: same multiset of keys.
        let mut got: Vec<u64> = order.iter().map(|c| c.key.hash).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..cands.len() as u64).collect();
        prop_assert_eq!(got, want);

        // Sortedness under the documented rule.
        for w in order.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.value_per_byte() <= b.value_per_byte(),
                "value order violated: {} > {}",
                a.value_per_byte(),
                b.value_per_byte()
            );
            if a.value_per_byte() == b.value_per_byte() {
                prop_assert!(a.last_access <= b.last_access, "LRU tiebreak violated");
            }
        }
    }
}
