//! Area accounting: the numbers behind the paper's Tab. 4.

use netlist::{CellKind, Resources};

use crate::flow::{CompiledApp, OptLevel};

/// An area summary for one flow (one row group of Tab. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaReport {
    /// Logic resources consumed.
    pub resources: Resources,
    /// Number of pages occupied (0 for monolithic flows).
    pub pages: usize,
}

/// Computes the area consumed by a compiled application, with the
/// flow-dependent accounting the paper uses:
///
/// * `-O1`: each operator's synthesized logic **plus** its leaf interface
///   (the FIFOs and synchronization the paper blames for the higher BRAM
///   and LUT counts);
/// * `-O0`: the full resources of every occupied page — the "single,
///   one-size-fits-all processor and memory organization" (Sec. 7.5);
/// * `-O3`: the stitched kernel netlist including inter-operator FIFOs.
pub fn area(app: &CompiledApp) -> AreaReport {
    match app.level {
        OptLevel::O3 => {
            let mono = app
                .monolithic
                .as_ref()
                .expect("O3 apps carry monolithic info");
            AreaReport {
                resources: mono.netlist.resources(),
                pages: 0,
            }
        }
        OptLevel::O1 => {
            let mut total = Resources::default();
            let mut pages = 0;
            for op in &app.operators {
                pages += 1;
                match (&op.hls, &op.soft) {
                    (Some(hls), _) => {
                        total += hls.resources;
                        total += leaf_interface_resources();
                    }
                    (None, Some(_)) => {
                        // A softcore-mapped operator occupies its whole page.
                        if let Some(page) = op.page {
                            total += app.floorplan.pages[page.0 as usize].resources;
                        }
                    }
                    (None, None) => {}
                }
            }
            AreaReport {
                resources: total,
                pages,
            }
        }
        OptLevel::O0 => {
            let mut total = Resources::default();
            let mut pages = 0;
            for op in &app.operators {
                if let Some(page) = op.page {
                    total += app.floorplan.pages[page.0 as usize].resources;
                    pages += 1;
                }
            }
            AreaReport {
                resources: total,
                pages,
            }
        }
    }
}

/// The per-operator leaf-interface overhead (Sec. 4.1: ~500 LUTs of network
/// interface plus the stream FIFO buffering).
pub fn leaf_interface_resources() -> Resources {
    let logic = CellKind::Logic { width: 800 }.resources();
    let fifo = CellKind::FifoBuf {
        width: 32,
        depth: 64,
    }
    .resources();
    logic + fifo
}

/// Estimated area of the original, undecomposed design (the paper's "Vitis
/// Flow" row): the operators' datapaths without the per-operator stream
/// interfaces and without inter-operator FIFOs.
pub fn vitis_baseline_area(app: &CompiledApp) -> Resources {
    let mut total = Resources::default();
    for op in &app.operators {
        if let Some(hls) = &op.hls {
            total += hls.resources;
        }
    }
    // Remove the per-operator stream interface pairs that a fused design
    // would not instantiate (keep one pair for the kernel's DMA boundary).
    let iface = CellKind::StreamIn { width: 32 }.resources()
        + CellKind::StreamOut { width: 32 }.resources();
    let n = app.operators.len().saturating_sub(1) as u64;
    Resources {
        luts: total.luts.saturating_sub(iface.luts * n),
        ffs: total.ffs.saturating_sub(iface.ffs * n),
        bram18: total.bram18,
        dsp: total.dsp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{compile, CompileOptions};
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn app(level: OptLevel) -> CompiledApp {
        let k = |name: &str| {
            KernelBuilder::new(name)
                .input("in", Scalar::uint(32))
                .output("out", Scalar::uint(32))
                .local("x", Scalar::uint(32))
                .body([Stmt::for_pipelined(
                    "i",
                    0..32,
                    [
                        Stmt::read("x", "in"),
                        Stmt::write("out", Expr::var("x").mul(Expr::cint(3))),
                    ],
                )])
                .build()
                .unwrap()
        };
        let mut b = GraphBuilder::new("g");
        let a = b.add("a", k("a"), Target::hw_auto());
        let c = b.add("c", k("c"), Target::hw_auto());
        b.ext_input("Input_1", a, "in");
        b.connect("l", a, "out", c, "in");
        b.ext_output("Output_1", c, "out");
        let g = b.build().unwrap();
        compile(&g, &CompileOptions::new(level)).unwrap()
    }

    #[test]
    fn o1_area_includes_leaf_interfaces() {
        let o1 = area(&app(OptLevel::O1));
        let vitis = vitis_baseline_area(&app(OptLevel::O1));
        assert!(
            o1.resources.luts > vitis.luts,
            "{} vs {}",
            o1.resources.luts,
            vitis.luts
        );
        assert_eq!(o1.pages, 2);
    }

    #[test]
    fn o0_area_is_whole_pages() {
        let o0 = area(&app(OptLevel::O0));
        // Two full pages: tens of thousands of LUTs (paper Tab. 4's point).
        assert!(o0.resources.luts > 30_000);
        assert_eq!(o0.pages, 2);
        let o1 = area(&app(OptLevel::O1));
        assert!(o0.resources.luts > o1.resources.luts * 5);
    }

    #[test]
    fn o3_area_counts_fifos() {
        let o3 = area(&app(OptLevel::O3));
        assert_eq!(o3.pages, 0);
        assert!(o3.resources.luts > 0);
        assert!(o3.resources.bram18 >= 1, "link FIFO should claim BRAM");
    }

    #[test]
    fn leaf_interface_is_paper_scale() {
        let r = leaf_interface_resources();
        // Sec. 4.1: "network interfaces run about 500 LUTs".
        assert!(r.luts >= 300 && r.luts <= 700, "{}", r.luts);
    }
}
