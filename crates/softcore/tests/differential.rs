//! Differential suite: the block-cached engine — and the superblock JIT
//! tier stacked on it — must be bit-identical to the decode-per-step
//! reference on random firmware images under random stream
//! stall/availability patterns — final registers, memory, cycle count,
//! instruction count, and emitted tokens all equal (the A/B discipline
//! behind shipping the pre-decoded engine as the default).

use proptest::prelude::*;
use softcore::cpu::{StepResult, StreamIo};
use softcore::isa::Instr;
use softcore::{firmware, Cpu};

const MEM_BYTES: u32 = 4096;
/// Scratch data region for random loads/stores (code sits below it).
const SCRATCH: i32 = 1024;
const CYCLE_BUDGET: u64 = 50_000;

/// Deterministic stream endpoint: availability is a function of the call
/// number alone, so two engines that issue the same architectural sequence
/// of port accesses observe the same stalls and the same tokens.
struct PatternIo {
    read_avail: Vec<bool>,
    write_avail: Vec<bool>,
    read_calls: usize,
    write_calls: usize,
    tokens_read: u32,
    written: Vec<u32>,
}

impl PatternIo {
    fn new(read_avail: Vec<bool>, write_avail: Vec<bool>) -> PatternIo {
        PatternIo {
            read_avail,
            write_avail,
            read_calls: 0,
            write_calls: 0,
            tokens_read: 0,
            written: Vec::new(),
        }
    }
}

impl StreamIo for PatternIo {
    fn read(&mut self, _port: u32) -> Option<u32> {
        let ok = self.read_avail[self.read_calls % self.read_avail.len()];
        self.read_calls += 1;
        if ok {
            self.tokens_read += 1;
            Some(self.tokens_read.wrapping_mul(0x9E37_79B9))
        } else {
            None
        }
    }

    fn write(&mut self, port: u32, word: u32) -> bool {
        let ok = self.write_avail[self.write_calls % self.write_avail.len()];
        self.write_calls += 1;
        if ok {
            self.written.push((port << 24) ^ word);
        }
        ok
    }
}

/// One random instruction from a compact recipe. Control flow only jumps
/// forward (backward branches come from a dedicated selector with a small
/// bounded hop, so loops re-enter recently executed code and exercise the
/// intra-block transfer path); the cycle budget bounds the runaway cases
/// identically in both engines.
fn instr(sel: u8, a: u8, b: u8, imm: i16, at: usize, len: usize) -> Instr {
    // x1..x12 are general scratch; x5 points at SCRATCH, x6/x7 at the
    // stream read/write windows (set up by the prelude).
    let rd = u32::from(a % 12) + 1;
    let rs1 = u32::from(b % 12) + 1;
    let rs2 = u32::from(a.wrapping_add(b) % 12) + 1;
    let word_off = i32::from(imm as u8 % 200) * 4;
    let fwd = 4 * (i32::from(b % 4) + 1);
    match sel % 18 {
        0 => Instr::Addi {
            rd,
            rs1,
            imm: i32::from(imm % 2048),
        },
        1 => Instr::Add { rd, rs1, rs2 },
        2 => Instr::Sub { rd, rs1, rs2 },
        3 => Instr::Mul { rd, rs1, rs2 },
        4 => Instr::Div { rd, rs1, rs2 },
        5 => Instr::Remu { rd, rs1, rs2 },
        6 => Instr::Xor { rd, rs1, rs2 },
        7 => Instr::Sltu { rd, rs1, rs2 },
        8 => Instr::Slli {
            rd,
            rs1,
            shamt: u32::from(b) % 32,
        },
        9 => Instr::Srai {
            rd,
            rs1,
            shamt: u32::from(a) % 32,
        },
        10 => Instr::Lw {
            rd,
            rs1: 5,
            imm: word_off,
        },
        11 => Instr::Lbu {
            rd,
            rs1: 5,
            imm: i32::from(imm as u8),
        },
        12 => Instr::Sw {
            rs1: 5,
            rs2,
            imm: word_off,
        },
        13 => Instr::Sb {
            rs1: 5,
            rs2,
            imm: i32::from(imm as u8),
        },
        // Stream read / write through the port windows.
        14 => Instr::Lw { rd, rs1: 6, imm: 0 },
        15 => Instr::Sw {
            rs1: 7,
            rs2,
            imm: 0,
        },
        16 => Instr::Bne { rs1, rs2, imm: fwd },
        _ => {
            // A short backward hop when there is room, else forward: a
            // bounded loop whose exit (or the cycle budget) both engines
            // hit at the same instruction.
            let back = 4 * (i32::from(b % 3) + 1);
            if at >= 4 && at + 1 < len {
                Instr::Beq {
                    rs1,
                    rs2: rs1,
                    imm: if a.is_multiple_of(4) { -back } else { fwd },
                }
            } else {
                Instr::Jal { rd: 1, imm: fwd }
            }
        }
    }
}

/// Assembles the prelude + random body + ebreak tail into a fresh core.
fn build_cpu(recipe: &[(u8, u8, u8, i16)]) -> Cpu {
    let mut code: Vec<Instr> = vec![
        // x5 = scratch base, x6 = stream read window, x7 = write window.
        Instr::Addi {
            rd: 5,
            rs1: 0,
            imm: SCRATCH,
        },
        Instr::Lui {
            rd: 6,
            imm: firmware::STREAM_READ_BASE as i32,
        },
        Instr::Lui {
            rd: 7,
            imm: firmware::STREAM_WRITE_BASE as i32,
        },
    ];
    let body_start = code.len();
    let body_len = recipe.len();
    for (i, &(sel, a, b, imm)) in recipe.iter().enumerate() {
        code.push(instr(sel, a, b, imm, i + body_start, body_start + body_len));
    }
    // Padding halts so every bounded forward hop lands on valid code.
    for _ in 0..6 {
        code.push(Instr::Ebreak);
    }
    let mut cpu = Cpu::new(MEM_BYTES, vec![]);
    let image: Vec<u8> = code.iter().flat_map(|i| i.encode().to_le_bytes()).collect();
    cpu.load(0, &image);
    cpu
}

#[derive(Clone, Copy)]
enum Mode {
    Reference,
    BlockCached,
    /// Block cache plus the superblock trace tier, promoted aggressively
    /// (threshold 2) so random firmware forms traces within the budget.
    Superblock,
}

/// Drives one core to halt/trap/budget and snapshots the architectural
/// state: (registers, memory, cycles, instructions, emitted tokens, halted).
fn run(
    mut cpu: Cpu,
    mut io: PatternIo,
    mode: Mode,
) -> ([u32; 32], Vec<u32>, u64, u64, Vec<u32>, bool) {
    if matches!(mode, Mode::Superblock) {
        cpu.set_superblock_threshold(2);
    }
    let mut halted = false;
    while cpu.cycles < CYCLE_BUDGET {
        let result = match mode {
            Mode::Reference => cpu.step(&mut io),
            Mode::BlockCached | Mode::Superblock => {
                cpu.step_then_run(&mut io, u64::MAX, CYCLE_BUDGET).0
            }
        };
        match result {
            StepResult::Ok | StepResult::Stall => {}
            StepResult::Halt => {
                halted = true;
                break;
            }
            StepResult::Trap { .. } => break,
        }
    }
    let mem: Vec<u32> = (0..MEM_BYTES / 4).map(|w| cpu.peek_word(w * 4)).collect();
    (
        cpu.regs,
        mem,
        cpu.cycles,
        cpu.instructions,
        io.written,
        halted,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn block_cached_matches_reference(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>()), 1..60),
        read_avail in proptest::collection::vec(any::<bool>(), 1..12),
        write_avail in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let io_a = PatternIo::new(read_avail.clone(), write_avail.clone());
        let io_b = PatternIo::new(read_avail, write_avail);
        let reference = run(build_cpu(&recipe), io_a, Mode::Reference);
        let cached = run(build_cpu(&recipe), io_b, Mode::BlockCached);
        prop_assert_eq!(&reference.0[..], &cached.0[..], "registers diverge");
        prop_assert_eq!(reference.1, cached.1, "memory diverges");
        prop_assert_eq!(reference.2, cached.2, "cycles diverge");
        prop_assert_eq!(reference.3, cached.3, "instructions diverge");
        prop_assert_eq!(reference.4, cached.4, "stream output diverges");
        prop_assert_eq!(reference.5, cached.5, "halt state diverges");
    }

    #[test]
    fn superblock_matches_reference(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>()), 1..60),
        read_avail in proptest::collection::vec(any::<bool>(), 1..12),
        write_avail in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let io_a = PatternIo::new(read_avail.clone(), write_avail.clone());
        let io_b = PatternIo::new(read_avail, write_avail);
        let reference = run(build_cpu(&recipe), io_a, Mode::Reference);
        let traced = run(build_cpu(&recipe), io_b, Mode::Superblock);
        prop_assert_eq!(&reference.0[..], &traced.0[..], "registers diverge");
        prop_assert_eq!(reference.1, traced.1, "memory diverges");
        prop_assert_eq!(reference.2, traced.2, "cycles diverge");
        prop_assert_eq!(reference.3, traced.3, "instructions diverge");
        prop_assert_eq!(reference.4, traced.4, "stream output diverges");
        prop_assert_eq!(reference.5, traced.5, "halt state diverges");
    }
}

/// A store into already-decoded instruction bytes must invalidate the
/// cached block and re-decode: both engines take the *new* instruction.
/// The patch lands *ahead of the pc inside the same straight-line block*
/// (blocks end at control transfers), so without invalidation the cached
/// engine would retire the stale pre-decoded micro-op.
#[test]
fn self_modifying_store_invalidates_the_decoded_block() {
    let patch = Instr::Addi {
        rd: 2,
        rs1: 2,
        imm: 100,
    }
    .encode();
    // x3 = patch word; x4 = address of the second increment below, which
    // starts as `addi x2, x2, 1` and is rewritten to `addi x2, x2, 100`
    // before execution reaches it.
    let mut code = softcore::isa::load_imm(3, patch as i32);
    let patch_addr = (code.len() as i32 + 3) * 4;
    code.push(Instr::Addi {
        rd: 4,
        rs1: 0,
        imm: patch_addr,
    });
    code.push(Instr::Sw {
        rs1: 4,
        rs2: 3,
        imm: 0,
    });
    code.push(Instr::Addi {
        rd: 2,
        rs1: 2,
        imm: 1,
    });
    // The patch target: originally +1, becomes +100 before it runs.
    code.push(Instr::Addi {
        rd: 2,
        rs1: 2,
        imm: 1,
    });
    code.push(Instr::Ebreak);
    let build = || {
        let mut cpu = Cpu::new(MEM_BYTES, vec![]);
        let image: Vec<u8> = code.iter().flat_map(|i| i.encode().to_le_bytes()).collect();
        cpu.load(0, &image);
        cpu
    };
    let reference = run(
        build(),
        PatternIo::new(vec![true], vec![true]),
        Mode::Reference,
    );
    let mut cached_cpu = build();
    let mut io = PatternIo::new(vec![true], vec![true]);
    let mut halted = false;
    while cached_cpu.cycles < CYCLE_BUDGET {
        match cached_cpu.step_then_run(&mut io, u64::MAX, CYCLE_BUDGET).0 {
            StepResult::Ok | StepResult::Stall => {}
            StepResult::Halt => {
                halted = true;
                break;
            }
            StepResult::Trap { .. } => break,
        }
    }
    assert!(halted, "self-modifying program must halt");
    // x2 = 1 (first pass) + 100 (patched second pass).
    assert_eq!(cached_cpu.regs[2], 101);
    assert_eq!(reference.0[2], 101, "reference agrees on the patched sum");
    assert_eq!(cached_cpu.cycles, reference.2, "cycle counts agree");
    assert_eq!(cached_cpu.instructions, reference.3);
    assert!(
        cached_cpu.icache_stats().invalidations > 0,
        "the store into decoded bytes must invalidate the block cache"
    );
}

/// Reloading firmware over a core that already decoded blocks — the
/// runtime hot-swap path, which reuses a live `Cpu` via `Cpu::load` —
/// must also invalidate, so the swapped-in binary never executes stale
/// micro-ops from its predecessor.
#[test]
fn firmware_reload_invalidates_decoded_blocks() {
    let image = |imm: i32| -> Vec<u8> {
        [Instr::Addi { rd: 2, rs1: 0, imm }, Instr::Ebreak]
            .iter()
            .flat_map(|i| i.encode().to_le_bytes())
            .collect()
    };
    let mut cpu = Cpu::new(MEM_BYTES, vec![]);
    cpu.load(0, &image(7));
    let mut io = PatternIo::new(vec![true], vec![true]);
    while cpu.step_then_run(&mut io, u64::MAX, CYCLE_BUDGET).0 != StepResult::Halt {}
    assert_eq!(cpu.regs[2], 7);
    let decoded_before = cpu.icache_stats().decoded;
    assert!(decoded_before > 0, "first run must have decoded a block");

    // Hot-swap: new firmware over the same bytes, pc rewound.
    cpu.load(0, &image(42));
    cpu.pc = 0;
    while cpu.step_then_run(&mut io, u64::MAX, CYCLE_BUDGET).0 != StepResult::Halt {}
    assert_eq!(cpu.regs[2], 42, "the swapped-in instruction must execute");
    assert!(
        cpu.icache_stats().invalidations > 0,
        "the reload must invalidate the predecessor's decoded blocks"
    );
    assert!(
        cpu.icache_stats().decoded > decoded_before,
        "re-decode happened"
    );
}

/// Two-pass loop whose body is hot enough to be promoted into a linked
/// superblock (head block → body block, re-entering the head), after which
/// the program *stores into the middle of the trace* — rewriting one
/// constituent instruction — and loops again with a new bound. The store
/// must tear down the superblock (its span was written) and the re-formed
/// trace must execute the patched instruction: final state bit-identical
/// to the decode-per-step reference.
#[test]
fn self_modifying_store_tears_down_linked_superblock() {
    let patch = Instr::Addi {
        rd: 4,
        rs1: 2,
        imm: 9,
    }
    .encode();
    let mut code = vec![
        Instr::Addi {
            rd: 2,
            rs1: 0,
            imm: 0,
        },
        Instr::Addi {
            rd: 3,
            rs1: 0,
            imm: 40,
        },
        // Loop head (word 2, addr 8): block A = { addi; beq }.
        Instr::Addi {
            rd: 2,
            rs1: 2,
            imm: 1,
        },
        Instr::Beq {
            rs1: 0,
            rs2: 0,
            imm: 8, // -> word 5
        },
        Instr::Ebreak, // word 4: jumped over, never runs
        // Word 5 (addr 20): block B = { addi x4; bne } — the patch target.
        Instr::Addi {
            rd: 4,
            rs1: 2,
            imm: 0,
        },
        Instr::Bne {
            rs1: 2,
            rs2: 3,
            imm: -16, // -> word 2, the superblock's jump-to-head edge
        },
    ];
    // Tail (runs after the loop exits): on the first exit x8 == 0, so fall
    // through, patch word 5 in place, raise the bound, and re-enter the
    // loop; on the second exit x8 == 1, branch straight to the ebreak.
    let tail_at = code.len();
    code.push(Instr::Bne {
        rs1: 8,
        rs2: 0,
        imm: 0, // rewritten below once `done` is known
    });
    code.extend(softcore::isa::load_imm(6, patch as i32));
    code.push(Instr::Addi {
        rd: 7,
        rs1: 0,
        imm: 20, // address of word 5
    });
    code.push(Instr::Sw {
        rs1: 7,
        rs2: 6,
        imm: 0,
    });
    code.push(Instr::Addi {
        rd: 3,
        rs1: 0,
        imm: 80,
    });
    code.push(Instr::Addi {
        rd: 8,
        rs1: 0,
        imm: 1,
    });
    let jal_at = code.len() as i32;
    code.push(Instr::Jal {
        rd: 1,
        imm: 8 - jal_at * 4, // back to the loop head
    });
    let done = code.len();
    code[tail_at] = Instr::Bne {
        rs1: 8,
        rs2: 0,
        imm: ((done - tail_at) as i32) * 4,
    };
    code.push(Instr::Ebreak);

    let build = || {
        let mut cpu = Cpu::new(MEM_BYTES, vec![]);
        let image: Vec<u8> = code.iter().flat_map(|i| i.encode().to_le_bytes()).collect();
        cpu.load(0, &image);
        cpu
    };
    let reference = run(
        build(),
        PatternIo::new(vec![true], vec![true]),
        Mode::Reference,
    );
    let mut cpu = build();
    cpu.set_superblock_threshold(4);
    let mut io = PatternIo::new(vec![true], vec![true]);
    let mut halted = false;
    while cpu.cycles < CYCLE_BUDGET {
        match cpu.step_then_run(&mut io, u64::MAX, CYCLE_BUDGET).0 {
            StepResult::Ok | StepResult::Stall => {}
            StepResult::Halt => {
                halted = true;
                break;
            }
            StepResult::Trap { .. } => break,
        }
    }
    assert!(halted, "two-pass loop must halt");
    // Pass 1 counts to 40 with `x4 = x2`; pass 2 counts to 80 with the
    // patched `x4 = x2 + 9`.
    assert_eq!(cpu.regs[2], 80);
    assert_eq!(
        cpu.regs[4], 89,
        "patched instruction executed inside the trace"
    );
    assert_eq!(&reference.0[..], &cpu.regs[..], "registers match reference");
    assert_eq!(reference.2, cpu.cycles, "cycles match reference");
    assert_eq!(
        reference.3, cpu.instructions,
        "instructions match reference"
    );
    let stats = cpu.icache_stats();
    assert!(
        stats.superblocks_formed >= 2,
        "trace formed before and after the patch (formed {})",
        stats.superblocks_formed
    );
    assert!(
        stats.invalidations > 0,
        "store into the trace span must invalidate"
    );
}

/// Runtime hot-swap (`Cpu::load` over a live core) landing while the pc is
/// parked *mid-superblock* — stalled on a stream read inside a promoted
/// trace — must drop the trace along with the block cache: the swapped-in
/// firmware runs from a clean slate, bit-identical to the reference
/// driven through the same reload.
#[test]
fn hot_swap_reload_mid_superblock_falls_back() {
    // Loop: bump x2, jump over a dead word, stream-read, repeat until
    // x2 == bound. Identical shape in both images; only the bound and the
    // increment differ.
    let image = |bound: i32, inc: i32| -> Vec<u8> {
        [
            Instr::Lui {
                rd: 6,
                imm: firmware::STREAM_READ_BASE as i32,
            },
            Instr::Addi {
                rd: 2,
                rs1: 0,
                imm: 0,
            },
            Instr::Addi {
                rd: 3,
                rs1: 0,
                imm: bound,
            },
            // Loop head (word 3, addr 12).
            Instr::Addi {
                rd: 2,
                rs1: 2,
                imm: inc,
            },
            Instr::Beq {
                rs1: 0,
                rs2: 0,
                imm: 8, // -> word 6
            },
            Instr::Ebreak, // jumped over
            Instr::Lw {
                rd: 5,
                rs1: 6,
                imm: 0, // stream read: the stall point
            },
            Instr::Bne {
                rs1: 2,
                rs2: 3,
                imm: -16, // -> word 3
            },
            Instr::Ebreak,
        ]
        .iter()
        .flat_map(|i| i.encode().to_le_bytes())
        .collect()
    };
    // Ten reads succeed (ten full iterations — plenty to promote at
    // threshold 2), then the eleventh stalls with the pc parked on the
    // `lw` in the middle of the linked trace.
    let avail = {
        let mut v = vec![true; 10];
        v.push(false);
        v
    };
    let drive = |cpu: &mut Cpu, io: &mut PatternIo, superblock: bool| -> StepResult {
        loop {
            let r = if superblock {
                cpu.step_then_run(io, u64::MAX, CYCLE_BUDGET).0
            } else {
                cpu.step(io)
            };
            match r {
                StepResult::Ok => {}
                other => return other,
            }
            assert!(cpu.cycles < CYCLE_BUDGET, "runaway");
        }
    };

    let mut cpu = Cpu::new(MEM_BYTES, vec![]);
    cpu.load(0, &image(100, 1));
    cpu.set_superblock_threshold(2);
    let mut io = PatternIo::new(avail.clone(), vec![true]);
    assert_eq!(drive(&mut cpu, &mut io, true), StepResult::Stall);
    let formed_before = cpu.icache_stats().superblocks_formed;
    assert!(
        formed_before > 0,
        "ten hot iterations must have promoted a superblock"
    );

    // Hot-swap new firmware over the stalled core, exactly as the runtime
    // reload path does, and run the replacement to completion.
    cpu.load(0, &image(35, 7));
    cpu.pc = 0;
    assert_eq!(drive(&mut cpu, &mut io, true), StepResult::Halt);
    assert_eq!(
        cpu.regs[2], 35,
        "swapped-in loop ran its own five iterations"
    );
    let stats = cpu.icache_stats();
    assert!(stats.invalidations > 0, "reload must invalidate the trace");
    assert!(
        stats.superblocks_formed > formed_before,
        "replacement loop re-promoted from scratch"
    );

    // The reference, driven through the identical stall + reload sequence,
    // must land on the same architectural state.
    let mut reference = Cpu::new(MEM_BYTES, vec![]);
    reference.load(0, &image(100, 1));
    let mut ref_io = PatternIo::new(avail, vec![true]);
    assert_eq!(drive(&mut reference, &mut ref_io, false), StepResult::Stall);
    reference.load(0, &image(35, 7));
    reference.pc = 0;
    assert_eq!(drive(&mut reference, &mut ref_io, false), StepResult::Halt);
    assert_eq!(&reference.regs[..], &cpu.regs[..], "registers diverge");
    assert_eq!(reference.cycles, cpu.cycles, "cycles diverge");
    assert_eq!(reference.instructions, cpu.instructions);
    assert_eq!(ref_io.read_calls, io.read_calls, "stream schedule diverges");
}
