//! Cross-device placement: feasibility screening and cache-aware
//! bin-packing.
//!
//! Ranking is lexicographic: prefer the device whose local bitstream
//! cache already holds the most of the app's artifacts (a returning
//! tenant lands where its pages were loaded before), then the tightest
//! fit (fewest free pages — classic best-fit bin packing, keeping big
//! holes open for big apps), then the lowest index for determinism.

use pld::CompiledApp;

use crate::allocator::{self, AllocError};
use crate::fleet::{Device, DeviceId};

/// The content hashes an app would transfer on admission — what the
/// cache-affinity score counts against each device.
pub(crate) fn artifact_hashes(app: &CompiledApp) -> Vec<u64> {
    app.artifacts.iter().map(|x| x.hash).collect()
}

/// Screens every device for feasibility-when-empty. `Ok` is the indices
/// that could ever host the app; `Err` is the per-device deficit table
/// for [`crate::fleet::FleetError::Unplaceable`].
pub(crate) fn feasible_devices<D: Device>(
    devices: &[D],
    app: &CompiledApp,
) -> Result<Vec<usize>, Vec<(DeviceId, AllocError)>> {
    let mut feasible = Vec::new();
    let mut deficits = Vec::new();
    for (i, dev) in devices.iter().enumerate() {
        match allocator::feasible(dev.floorplan(), app) {
            Ok(()) => feasible.push(i),
            Err(e) => deficits.push((DeviceId(i), e)),
        }
    }
    if feasible.is_empty() {
        Err(deficits)
    } else {
        Ok(feasible)
    }
}

/// Ranks `candidates` (device indices) for this app, best first:
/// cache hits descending, then free pages ascending, then index.
pub(crate) fn rank<D: Device>(
    devices: &[D],
    candidates: &[usize],
    app: &CompiledApp,
) -> Vec<usize> {
    let hashes = artifact_hashes(app);
    let mut ranked: Vec<usize> = candidates.to_vec();
    ranked.sort_by_key(|&i| {
        let cached = devices[i].cached_artifacts(&hashes);
        (usize::MAX - cached, devices[i].free_pages(), i)
    });
    ranked
}

/// The subset of `candidates` where the app places without any eviction,
/// in rank order.
pub(crate) fn fitting_now<D: Device>(
    devices: &[D],
    candidates: &[usize],
    app: &CompiledApp,
) -> Vec<usize> {
    rank(devices, candidates, app)
        .into_iter()
        .filter(|&i| devices[i].fits_now(app))
        .collect()
}
