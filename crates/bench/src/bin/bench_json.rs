//! Machine-readable KPIs: `BENCH_streaming.json`, `BENCH_build.json`, and
//! `BENCH_pnr.json`.
//!
//! Measures the three execution-engine throughput numbers this repo
//! tracks release-over-release — host KPN tokens/sec (chunked transport
//! vs its per-token baseline), `-O0` cosim simulated cycles per host
//! second, and linking-network delivered flits per cycle — plus the
//! staged-build-graph numbers (cache hit rate, critical-path virtual
//! seconds, rebuild wall time) and the per-page P&R numbers (annealer
//! moves/sec vs the full-recompute baseline, router relaxations per net,
//! seed-racing speedup) and writes them as JSON next to the working
//! directory.
//!
//! `cargo run --release -p pld-bench --bin bench_json`
//!
//! The JSON is hand-formatted: the workspace deliberately carries no JSON
//! serializer, and a flat report does not need one.

use std::time::Instant;

use dfg::{run_graph_threaded_with, Graph, GraphBuilder, Target, ThreadedConfig};
use kir::types::Value;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use noc::{BftNoc, PortAddr};
use pld::{
    build, compile, ArtifactStore, BuildCache, CompileOptions, CosimConfig, OptLevel, SeedRace,
};
use pnr::{place, route, PnrOptions};
use rosetta::Scale;

const KPN_TOKENS: i64 = 100_000;
const KPN_STAGES: usize = 6;

/// The decode-per-step cosim rate recorded in BENCH_streaming.json before
/// the block-cached engine landed — the fixed yardstick the ">= 3x" claim
/// is measured against.
const COSIM_RECORDED_BASELINE: f64 = 9_306_148.0;

fn word_values(n: u32) -> Vec<Value> {
    (0..n)
        .map(|w| Value::Int(aplib::DynInt::from_raw(32, false, w as u128)))
        .collect()
}

fn copy_pipeline(n_stages: usize, tokens: i64) -> Graph {
    let stage = |name: &str| {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..tokens,
                [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
            )])
            .build()
            .unwrap()
    };
    let mut b = GraphBuilder::new("copy_pipe");
    let ids: Vec<_> = (0..n_stages)
        .map(|i| b.add(format!("s{i}"), stage(&format!("s{i}")), Target::hw_auto()))
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n_stages - 1], "out");
    b.build().unwrap()
}

/// A pipeline of mul-heavy stages for the parallel cosim sweep: each token
/// costs ~`3 * inner` core instructions of private arithmetic between
/// stream accesses, so every core carries real work per loop cycle and the
/// sharded engine's windows amortize their barriers. Deliberately
/// coarse-grained where `copy_pipeline` is transport-bound.
fn mul_pipeline(n_stages: usize, tokens: i64, inner: i64) -> Graph {
    let stage = |name: &str, seed: i64| {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .local("acc", Scalar::uint(32))
            .body([Stmt::for_loop(
                "i",
                0..tokens,
                [
                    Stmt::read("x", "in"),
                    Stmt::assign("acc", Expr::var("x")),
                    Stmt::for_loop(
                        "j",
                        0..inner,
                        [Stmt::assign(
                            "acc",
                            Expr::var("acc")
                                .mul(Expr::cint(seed))
                                .add(Expr::var("j"))
                                .xor(Expr::var("x")),
                        )],
                    ),
                    Stmt::write("out", Expr::var("acc")),
                ],
            )])
            .build()
            .unwrap()
    };
    let mut b = GraphBuilder::new("mul_pipe");
    let ids: Vec<_> = (0..n_stages)
        .map(|i| {
            b.add(
                format!("m{i}"),
                stage(&format!("m{i}"), 3 + 2 * i as i64),
                Target::hw_auto(),
            )
        })
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n_stages - 1], "out");
    b.build().unwrap()
}

/// Best-of-`reps` tokens/sec for the copy pipeline at one chunk size.
fn kpn_tokens_per_sec(g: &Graph, inputs: &[(&str, Vec<Value>)], chunk: usize) -> f64 {
    let cfg = ThreadedConfig {
        chunk,
        ..ThreadedConfig::default()
    };
    let mut best = f64::MIN;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = run_graph_threaded_with(g, inputs, cfg.clone()).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(out["Output_1"].len(), KPN_TOKENS as usize);
        best = best.max(KPN_TOKENS as f64 / secs);
    }
    best
}

fn edit_pipeline(n: usize, edit: Option<(usize, i64)>) -> Graph {
    let stage = |name: &str, addend: i64| {
        KernelBuilder::new(name)
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..64,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
                ],
            )])
            .build()
            .unwrap()
    };
    let mut b = GraphBuilder::new("edit_pipe");
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let addend = match edit {
                Some((op, a)) if op == i => a,
                _ => i as i64,
            };
            b.add(
                format!("op{i}"),
                stage(&format!("op{i}"), addend),
                Target::hw(i as u32),
            )
        })
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for w in ids.windows(2) {
        b.connect(format!("l{:?}", w[0]), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[n - 1], "out");
    b.build().unwrap()
}

/// Staged build graph KPIs: cold build, edit-one rebuild, no-op rebuild on
/// an `-O1` pipeline — wall seconds, stage cache hit rate, and the
/// critical-path virtual seconds the report derives from stored work.
fn build_kpis() -> String {
    const N: usize = 8;
    let opts = CompileOptions::new(OptLevel::O1);
    let mut cache = BuildCache::new();

    let t0 = Instant::now();
    cache.compile(&edit_pipeline(N, None), &opts).expect("cold");
    let cold_wall = t0.elapsed().as_secs_f64();
    let cold_vtime = cache.last_report().unwrap().fresh_vtime_serial.total();

    let t0 = Instant::now();
    cache
        .compile(&edit_pipeline(N, Some((N / 2, 999))), &opts)
        .expect("edit");
    let edit_wall = t0.elapsed().as_secs_f64();
    let edit_report = cache.last_report().unwrap();
    let edit_hit_rate = edit_report.hit_rate();
    let edit_critical = edit_report.critical_path_seconds;

    let t0 = Instant::now();
    cache
        .compile(&edit_pipeline(N, Some((N / 2, 999))), &opts)
        .expect("noop");
    let noop_wall = t0.elapsed().as_secs_f64();
    let noop_report = cache.last_report().unwrap();
    assert_eq!(
        noop_report.total_executions(),
        0,
        "a no-op rebuild must execute nothing"
    );
    let noop_hit_rate = noop_report.hit_rate();

    let cache_json = cache_kpis();
    format!(
        "{{\n  \"build\": {{\n    \"operators\": {N},\n    \"cold_wall_seconds\": {cold_wall:.4},\n    \"cold_vtime_seconds\": {cold_vtime:.1},\n    \"edit_one_wall_seconds\": {edit_wall:.4},\n    \"edit_one_hit_rate\": {edit_hit_rate:.3},\n    \"edit_one_critical_path_seconds\": {edit_critical:.1},\n    \"noop_wall_seconds\": {noop_wall:.4},\n    \"noop_hit_rate\": {noop_hit_rate:.3},\n    \"noop_stage_executions\": 0\n  }},\n{cache_json}}}\n"
    )
}

/// Persistent shared-cache KPIs: a cold builder process populates a cache
/// directory, a second fresh process rebuilds the app with one operator
/// edited — entirely from the other process's segment files — plus the
/// speculative-compile hit rate on a reseed-after-edit session.
fn cache_kpis() -> String {
    const N: usize = 8;
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let opts = CompileOptions::new(OptLevel::O1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("pld-bench-cache-{}-{nanos}", std::process::id()));

    // Builder process 1: cold, persists, exits.
    let t0 = Instant::now();
    {
        let mut cache = BuildCache::open_dir(&dir).expect("open cache dir");
        cache.compile(&edit_pipeline(N, None), &opts).expect("cold");
        cache.persist().expect("persist");
    }
    let cold_wall = t0.elapsed().as_secs_f64();

    // Builder process 2: fresh instance, one operator edited; everything
    // else must come from the first process's on-disk segments.
    let t0 = Instant::now();
    let (warm_ops, total_ops, disk_products, disk_bytes) = {
        let mut cache = BuildCache::open_dir(&dir).expect("reopen cache dir");
        cache
            .compile(&edit_pipeline(N, Some((N / 2, 999))), &opts)
            .expect("warm edit");
        let report = cache.last_report().unwrap();
        let warm = report
            .operators
            .iter()
            .filter(|o| o.executions == 0)
            .count();
        (
            warm,
            report.operators.len(),
            cache.cache().disk_len(),
            cache.cache().disk_bytes(),
        )
    };
    let warm_wall = t0.elapsed().as_secs_f64();
    let warm_speedup = cold_wall / warm_wall;
    let persistent_hit_rate = warm_ops as f64 / total_ops as f64;
    std::fs::remove_dir_all(&dir).ok();

    // Speculation: edit one operator, let the background batch pre-compile
    // the seed ladder, then demand a reseeded rebuild that lands on it.
    let mut cache = BuildCache::new();
    cache.enable_speculation(pld::SpeculationConfig::default());
    cache.compile(&edit_pipeline(N, None), &opts).expect("base");
    cache
        .compile(&edit_pipeline(N, Some((N / 2, 999))), &opts)
        .expect("edit");
    cache.finish_speculation();
    let merged = cache.speculation_stats().unwrap().products_merged;
    let reseeded = CompileOptions {
        seed: opts.seed ^ GOLDEN,
        ..opts
    };
    cache
        .compile(&edit_pipeline(N, Some((N / 2, 999))), &reseeded)
        .expect("reseed");
    let spec_hit_rate = if merged == 0 {
        0.0
    } else {
        cache.speculative_hits() as f64 / merged as f64
    };

    assert!(
        persistent_hit_rate >= 0.8,
        "warm cross-process rebuild hit only {persistent_hit_rate:.2} of operators"
    );
    assert!(
        warm_speedup >= 2.0,
        "warm cross-process rebuild not even 2x faster: cold {cold_wall:.3}s vs warm {warm_wall:.3}s"
    );

    format!(
        "  \"cache\": {{\n    \"cold_process_wall_seconds\": {cold_wall:.4},\n    \"warm_process_wall_seconds\": {warm_wall:.4},\n    \"warm_process_speedup\": {warm_speedup:.2},\n    \"persistent_hit_rate\": {persistent_hit_rate:.3},\n    \"disk_products\": {disk_products},\n    \"disk_payload_bytes\": {disk_bytes},\n    \"speculated_products\": {merged},\n    \"speculative_hit_rate\": {spec_hit_rate:.3}\n  }}\n"
    )
}

/// KPN optimizer KPIs, measured as population statistics rather than a
/// single-app anecdote: every generator family × 2 replicates is run on the
/// threaded host engine with the optimizer off (source graph, default
/// channel depths) and on (fused/fissioned rewrite + solved per-edge
/// depths), best-of-3 per side. Alongside the tokens/sec speedups the
/// section records the stall-episode totals from the engine's per-edge
/// counters and the optimizer's own page-utilization balance (Jain index
/// over per-operator work) before and after rewriting. Both runs must
/// produce bit-identical token streams — the bench doubles as one more
/// differential check on real workload sizes.
fn optimizer_kpis() -> String {
    const REPLICATES: u64 = 2;
    let base = dfg::GenConfig {
        seed: 0x5eed,
        tokens: 8192,
        max_stages: 8,
    };
    let apps = dfg::generate::population(&base, REPLICATES);

    // Host profile: the threaded engine runs on however many cores the host
    // has, and this box has one. Fission exists to overlap two *pages* in
    // hardware (or two cores in cosim); on a single core its extra ring hop
    // is pure overhead (measured 0.93-0.96x), so the host profile turns it
    // off and leans on sizing + fusion. The fission pass itself is covered by
    // the dfg proptests and the floorplan-pressure unit tests.
    // A single core also means there is no critical path to protect: every
    // operator shares the one core, so total time is total work and merging
    // a near-bottleneck pair can only shed ring hops, never serialize work
    // that used to overlap. The profile therefore relaxes the two fusion
    // profitability guards that exist for spatial targets.
    let host_profile = dfg::OptimizerConfig {
        fission: false,
        fuse_ops_per_token: 512,
        fuse_util_percent: 10_000,
        ..dfg::OptimizerConfig::default()
    };

    let mut ln_sum = 0.0f64;
    let mut min_speedup = f64::MAX;
    let (mut blocks_base, mut blocks_opt) = (0u64, 0u64);
    let (mut bal_before, mut bal_after) = (0.0f64, 0.0f64);
    let mut rewritten = 0usize;

    for app in &apps {
        let inputs = app.input_refs();
        let optimized = dfg::optimize(&app.graph, &host_profile);
        if !optimized.report.fused.is_empty() || !optimized.report.fissioned.is_empty() {
            rewritten += 1;
        }
        bal_before += optimized.report.balance_before;
        bal_after += optimized.report.balance_after;

        // One timed run of one graph: tokens/sec plus stall episodes.
        let once = |graph: &dfg::Graph, depths: Option<&Vec<usize>>| {
            let cfg = ThreadedConfig {
                edge_depths: depths.cloned(),
                ..ThreadedConfig::default()
            };
            let t0 = Instant::now();
            let (out, stats) =
                dfg::run_graph_threaded_stats(graph, &inputs, cfg).expect("app runs");
            let secs = t0.elapsed().as_secs_f64();
            let tokens: usize = out.values().map(Vec::len).sum();
            (tokens as f64 / secs, stats.total_blocks(), out)
        };
        // Interleave baseline and optimized repetitions so slow drift on a
        // shared host (frequency, cache pressure from neighbours) hits both
        // sides equally; keep best-of-N tokens/sec and min-of-N stall
        // episodes — the stall counters are schedule-dependent, so the
        // quietest run is the engine's floor, the same way best-of-N wall
        // time is.
        let (mut base_rate, mut opt_rate) = (f64::MIN, f64::MIN);
        let (mut base_blk, mut opt_blk) = (u64::MAX, u64::MAX);
        let (mut base_out, mut opt_out) = (None, None);
        for _ in 0..4 {
            let (r, blk, out) = once(&app.graph, None);
            base_rate = base_rate.max(r);
            base_blk = base_blk.min(blk);
            base_out = Some(out);
            let (r, blk, out) = once(&optimized.graph, Some(&optimized.edge_depths));
            opt_rate = opt_rate.max(r);
            opt_blk = opt_blk.min(blk);
            opt_out = Some(out);
        }
        let (base_out, opt_out) = (base_out.unwrap(), opt_out.unwrap());
        assert_eq!(
            opt_out, base_out,
            "optimizer changed the token streams of {} ({})",
            app.graph.name, app.family
        );

        let speedup = opt_rate / base_rate;
        eprintln!(
            "optimizer: {:<24} {:<11} {:.2}x  ({:.0} -> {:.0} tok/s, stalls {} -> {}, fused {:?}, fissioned {:?})",
            app.graph.name,
            app.family,
            speedup,
            base_rate,
            opt_rate,
            base_blk,
            opt_blk,
            optimized.report.fused,
            optimized.report.fissioned,
        );
        ln_sum += speedup.ln();
        min_speedup = min_speedup.min(speedup);
        blocks_base += base_blk;
        blocks_opt += opt_blk;
    }

    let n = apps.len();
    let geomean = (ln_sum / n as f64).exp();
    let stall_reduction = if blocks_base == 0 {
        0.0
    } else {
        (1.0 - blocks_opt as f64 / blocks_base as f64).max(0.0)
    };
    let (bal_before, bal_after) = (bal_before / n as f64, bal_after / n as f64);

    assert!(
        geomean >= 1.3,
        "optimizer population geomean speedup fell below 1.3x: {geomean:.3}"
    );
    assert!(
        min_speedup >= 0.95,
        "an app regressed below 0.95x under the optimizer: {min_speedup:.3}"
    );

    format!(
        "  \"optimizer\": {{\n    \"apps\": {n},\n    \"families\": {},\n    \"rewritten_apps\": {rewritten},\n    \"geomean_speedup\": {geomean:.3},\n    \"min_speedup\": {min_speedup:.3},\n    \"stall_blocks_baseline\": {blocks_base},\n    \"stall_blocks_optimized\": {blocks_opt},\n    \"stall_reduction\": {stall_reduction:.3},\n    \"page_balance_before\": {bal_before:.3},\n    \"page_balance_after\": {bal_after:.3}\n  }},\n",
        dfg::generate::FAMILIES.len(),
    )
}

/// Warm-start incremental P&R KPIs on the same 8-page workload: for
/// 1/2/4-cell edits of every page, a cold full P&R of the edited netlist
/// vs a warm rerun seeded from the base layout's hints — virtual seconds,
/// wall seconds, and quality parity (warm wirelength / fmax against the
/// cold result of the *same* edited netlist, a stricter bar than the
/// guard's prior-cold estimate) — plus the lineage-keyed hint hit rate of
/// a build-level edit-one rebuild.
fn incremental_pnr_kpis(fp: &fabric::Floorplan, wrapped: &[netlist::Netlist]) -> String {
    let vt = pld::VtimeModel::default();
    let pnr_opts = PnrOptions::default();
    let hints: Vec<pnr::PnrHints> = wrapped
        .iter()
        .enumerate()
        .map(|(i, nl)| {
            let cold = pnr::place_and_route(nl, &fp.device, fp.pages[i].rect, &pnr_opts)
                .expect("base fits");
            pnr::extract_hints(nl, fp.pages[i].rect, &cold)
        })
        .collect();
    // A k-cell edit in the shape a developer makes one: append registers,
    // each fed from an existing cell, leaving the rest of the netlist
    // untouched.
    let edit = |nl: &netlist::Netlist, cells: usize| -> netlist::Netlist {
        let mut e = nl.clone();
        let n = e.cells.len();
        for k in 0..cells {
            let id = e.add_cell(
                format!("edit{k}"),
                netlist::CellKind::Register { width: 32 },
            );
            e.add_net(netlist::CellId((3 + 7 * k) % n), vec![id], 32);
        }
        e
    };

    let mut sections = String::new();
    let mut wl_ratio_max = 0.0f64;
    let mut fmax_ratio_min = f64::MAX;
    let mut fallbacks = 0u64;
    let mut edit1_gate = (0.0, 0.0);
    for &cells in &[1usize, 2, 4] {
        let edited: Vec<netlist::Netlist> = wrapped.iter().map(|nl| edit(nl, cells)).collect();
        // Wall: best-of-3 sweeps over all 8 pages, each side timed alone.
        let (mut cold_wall, mut warm_wall) = (f64::MAX, f64::MAX);
        for _ in 0..3 {
            let t0 = Instant::now();
            for (i, e) in edited.iter().enumerate() {
                pnr::place_and_route(e, &fp.device, fp.pages[i].rect, &pnr_opts).expect("fits");
            }
            cold_wall = cold_wall.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for (i, e) in edited.iter().enumerate() {
                pnr::place_and_route_incremental(
                    e,
                    &fp.device,
                    fp.pages[i].rect,
                    &pnr_opts,
                    &hints[i],
                    4,
                )
                .expect("fits");
            }
            warm_wall = warm_wall.min(t0.elapsed().as_secs_f64());
        }
        // Vtime + quality parity from one deterministic pass.
        let (mut cold_vt, mut warm_vt) = (0.0, 0.0);
        for (i, e) in edited.iter().enumerate() {
            let cold =
                pnr::place_and_route(e, &fp.device, fp.pages[i].rect, &pnr_opts).expect("fits");
            let (warm, report) = pnr::place_and_route_incremental(
                e,
                &fp.device,
                fp.pages[i].rect,
                &pnr_opts,
                &hints[i],
                4,
            )
            .expect("fits");
            cold_vt += vt.pnr_seconds(cold.work_units);
            if report.fell_back {
                fallbacks += 1;
                warm_vt += vt.pnr_seconds(warm.work_units);
            } else {
                warm_vt += vt.pnr_warm_seconds(warm.work_units);
                wl_ratio_max = wl_ratio_max
                    .max(warm.routed.wirelength as f64 / cold.routed.wirelength.max(1) as f64);
                fmax_ratio_min = fmax_ratio_min.min(warm.timing.fmax_mhz / cold.timing.fmax_mhz);
            }
        }
        let vtime_speedup = cold_vt / warm_vt;
        let wall_speedup = cold_wall / warm_wall;
        if cells == 1 {
            edit1_gate = (vtime_speedup, wall_speedup);
        }
        sections += &format!(
            "    \"edit{cells}_cold_pnr_vtime_seconds\": {cold_vt:.1},\n    \"edit{cells}_warm_pnr_vtime_seconds\": {warm_vt:.1},\n    \"edit{cells}_vtime_speedup\": {vtime_speedup:.2},\n    \"edit{cells}_cold_pnr_wall_seconds\": {cold_wall:.4},\n    \"edit{cells}_warm_pnr_wall_seconds\": {warm_wall:.4},\n    \"edit{cells}_wall_speedup\": {wall_speedup:.2},\n"
        );
    }

    // Build-level edit-one rebuild with the flag on: the edited operator's
    // seed-free lineage key must find the previous version's hints.
    let opts = CompileOptions {
        incremental_pnr: true,
        ..CompileOptions::new(OptLevel::O1)
    };
    let mut cache = BuildCache::new();
    cache.compile(&edit_pipeline(8, None), &opts).expect("base");
    cache
        .compile(&edit_pipeline(8, Some((4, 999))), &opts)
        .expect("edit");
    let report = cache.last_report().unwrap();
    let hint_hit_rate = report.hint_hits as f64 / report.hint_fetches.max(1) as f64;

    let (v1, w1) = edit1_gate;
    assert!(
        v1 >= 3.0 && w1 >= 3.0,
        "warm single-cell-edit P&R below the 3x bar: vtime {v1:.2}x, wall {w1:.2}x"
    );
    assert!(
        wl_ratio_max <= 1.05,
        "warm wirelength strayed more than 5% from cold: {wl_ratio_max:.3}x"
    );
    assert!(
        fmax_ratio_min >= 0.95,
        "warm fmax strayed more than 5% from cold: {fmax_ratio_min:.3}x"
    );
    assert!(
        report.hint_hits >= 1 && report.warm_pnr_ops >= 1,
        "edit-one rebuild never warm-started: hits {}, warm ops {}",
        report.hint_hits,
        report.warm_pnr_ops
    );

    format!(
        "  \"incremental_pnr\": {{\n    \"workload\": \"8 leaf-wrapped operator pages, k-cell edits\",\n{sections}    \"warm_fallbacks\": {fallbacks},\n    \"hint_hit_rate\": {hint_hit_rate:.3},\n    \"wirelength_ratio_max\": {wl_ratio_max:.3},\n    \"fmax_ratio_min\": {fmax_ratio_min:.3}\n  }}\n"
    )
}

/// Per-page P&R KPIs on the 8-operator page workload: annealer moves/sec
/// against the pre-incremental-cost baseline measured on the same workload,
/// router relaxations per net, and the wall-clock speedup of a 4-seed race
/// on the farm versus one worker.
fn pnr_kpis() -> String {
    // Full-recompute annealer costs and Dijkstra routing, measured on this
    // workload immediately before the incremental rewrite.
    const BASELINE_MOVES_PER_SEC: f64 = 13_067_167.0;
    const BASELINE_RELAX_PER_NET: f64 = 46.0;
    const RACE_ATTEMPTS: u32 = 4;

    let op = |i: usize| {
        KernelBuilder::new(format!("op{i}"))
            .input("in", Scalar::uint(32))
            .output("out", Scalar::uint(32))
            .local("x", Scalar::uint(32))
            .body([Stmt::for_pipelined(
                "i",
                0..64,
                [
                    Stmt::read("x", "in"),
                    Stmt::write("out", Expr::var("x").add(Expr::cint(i as i64))),
                ],
            )])
            .build()
            .unwrap()
    };
    let fp = fabric::Floorplan::u50();
    let wrapped: Vec<netlist::Netlist> = (0..8)
        .map(|i| {
            let hls = hlsim::compile(&op(i)).unwrap();
            pld::flow::wrap_with_leaf_interface(&hls.netlist)
        })
        .collect();

    // Placer throughput: warm up once, then 40 repetitions over fresh
    // seeds so the annealer cannot ride a lucky initial placement. The
    // reps are timed as 5 batches of 8 and the best batch wins — like the
    // KPN and cosim measurements above, one long timing on a shared host
    // measures transient load as much as the annealer.
    for (i, nl) in wrapped.iter().enumerate() {
        place(nl, &fp.device, fp.pages[i].rect, &PnrOptions::default()).expect("fits");
    }
    let mut moves_per_sec = f64::MIN;
    for batch in 0..5u64 {
        let t0 = Instant::now();
        let mut moves = 0u64;
        for rep in 0..8u64 {
            for (i, nl) in wrapped.iter().enumerate() {
                let opts = PnrOptions {
                    seed: 8 * batch + rep + 1,
                    ..Default::default()
                };
                moves += place(nl, &fp.device, fp.pages[i].rect, &opts)
                    .expect("fits")
                    .moves_evaluated;
            }
        }
        moves_per_sec = moves_per_sec.max(moves as f64 / t0.elapsed().as_secs_f64());
    }
    let placer_speedup = moves_per_sec / BASELINE_MOVES_PER_SEC;

    // Router effort: A* relaxations per net across the same pages, and
    // live relaxations/sec (best of 3 sweeps, placements precomputed so
    // only routing is timed).
    let placements: Vec<_> = wrapped
        .iter()
        .enumerate()
        .map(|(i, nl)| place(nl, &fp.device, fp.pages[i].rect, &PnrOptions::default()).unwrap())
        .collect();
    let (mut relaxed, mut nets) = (0u64, 0u64);
    let mut relax_per_sec = f64::MIN;
    for _ in 0..3 {
        let t0 = Instant::now();
        let (mut batch_relaxed, mut batch_nets) = (0u64, 0u64);
        for ((i, nl), p) in wrapped.iter().enumerate().zip(&placements) {
            let r = route(nl, &fp.device, fp.pages[i].rect, p, &PnrOptions::default()).unwrap();
            batch_relaxed += r.edges_relaxed;
            batch_nets += nl.nets.len() as u64;
        }
        relax_per_sec = relax_per_sec.max(batch_relaxed as f64 / t0.elapsed().as_secs_f64());
        (relaxed, nets) = (batch_relaxed, batch_nets);
    }
    let relax_per_net = relaxed as f64 / nets as f64;

    // Seed racing, in the virtual-time model (wall clock would measure the
    // host's core count, not the flow): racing K seeds is charged K-ish
    // times the serial P&R cost but overlaps on the farm, so the parallel
    // latency barely moves. The speedup is how much charged work the farm
    // hides.
    let graph = edit_pipeline(8, None);
    let (single, _) = build(
        &graph,
        &CompileOptions::new(OptLevel::O1),
        &mut ArtifactStore::new(),
    )
    .expect("single-seed build");
    let raced_opts = CompileOptions {
        race: SeedRace {
            attempts: RACE_ATTEMPTS,
            target_fmax_mhz: 0.0,
        },
        ..CompileOptions::new(OptLevel::O1)
    };
    let (raced, _) = build(&graph, &raced_opts, &mut ArtifactStore::new()).expect("raced build");
    let race_cost_x = raced.vtime_serial.pnr / single.vtime_serial.pnr;
    let race_latency_x = raced.vtime_parallel.pnr / single.vtime_parallel.pnr;
    let racing_speedup = race_cost_x / race_latency_x;

    assert!(
        placer_speedup >= 2.0,
        "incremental annealer regressed below 2x the full-recompute baseline: \
         {moves_per_sec:.0} moves/sec vs {BASELINE_MOVES_PER_SEC:.0}"
    );

    let incremental = incremental_pnr_kpis(&fp, &wrapped);
    format!(
        "{{\n  \"pnr\": {{\n    \"workload\": \"8 leaf-wrapped operator pages\",\n    \"placer_moves_per_sec\": {moves_per_sec:.0},\n    \"baseline_moves_per_sec\": {BASELINE_MOVES_PER_SEC:.0},\n    \"placer_speedup\": {placer_speedup:.2},\n    \"router_relaxations_per_net\": {relax_per_net:.1},\n    \"baseline_relaxations_per_net\": {BASELINE_RELAX_PER_NET:.1},\n    \"router_relaxations_per_sec\": {relax_per_sec:.0},\n    \"race_attempts\": {RACE_ATTEMPTS},\n    \"race_serial_cost_x\": {race_cost_x:.2},\n    \"race_farm_latency_x\": {race_latency_x:.2},\n    \"racing_speedup\": {racing_speedup:.2}\n  }},\n{incremental}}}\n"
    )
}

/// `bench_json check`: validates the three committed KPI files without
/// re-running the benchmarks — CI's guard against a stale, truncated, or
/// hand-mangled `BENCH_*.json` landing in a PR.
fn check_kpi_files() {
    const EXPECTED: &[(&str, &[&str])] = &[
        (
            "BENCH_streaming.json",
            &[
                "speedup",
                "simulated_cycles",
                "cycles_per_sec",
                "baseline_cycles_per_sec",
                "recorded_baseline_cycles_per_sec",
                "speedup_vs_recorded",
                "max_threads",
                "threads_1_cycles_per_sec",
                "threads_2_cycles_per_sec",
                "threads_4_cycles_per_sec",
                "best_cycles_per_sec",
                "parallel_speedup_vs_recorded",
                "geomean_speedup",
                "min_speedup",
                "stall_reduction",
                "page_balance_before",
                "page_balance_after",
                "flits_per_cycle",
            ],
        ),
        (
            "BENCH_build.json",
            &[
                "cold_wall_seconds",
                "edit_one_wall_seconds",
                "edit_one_hit_rate",
                "noop_hit_rate",
                "cold_process_wall_seconds",
                "warm_process_wall_seconds",
                "warm_process_speedup",
                "persistent_hit_rate",
                "speculative_hit_rate",
            ],
        ),
        (
            "BENCH_pnr.json",
            &[
                "placer_moves_per_sec",
                "placer_speedup",
                "router_relaxations_per_net",
                "router_relaxations_per_sec",
                "racing_speedup",
                "edit1_vtime_speedup",
                "edit1_wall_speedup",
                "hint_hit_rate",
                "wirelength_ratio_max",
                "fmax_ratio_min",
            ],
        ),
        // Written by `cargo run --release --example serving_fleet` (the
        // fleet-serving flagship), not by this binary.
        (
            "BENCH_serving.json",
            &[
                "devices",
                "submitted",
                "admitted",
                "migrations",
                "migration_downtime_ms",
                "p50_admission_ms",
                "p99_admission_ms",
                "fairness_index",
                "cross_device_hit_rate",
            ],
        ),
    ];
    for (file, keys) in EXPECTED {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("{file}: unreadable ({e}) — run bench_json to regenerate"));
        for key in *keys {
            let value = numeric_key(&text, key)
                .unwrap_or_else(|| panic!("{file}: missing or non-numeric \"{key}\""));
            assert!(
                value.is_finite() && value >= 0.0,
                "{file}: \"{key}\" = {value} is not a sane KPI"
            );
        }
    }
    // The headline claims the committed files must keep making.
    let streaming = std::fs::read_to_string("BENCH_streaming.json").expect("checked above");
    let recorded = numeric_key(&streaming, "speedup_vs_recorded").expect("checked above");
    assert!(
        recorded >= 3.0,
        "committed cosim speedup_vs_recorded fell below 3x: {recorded}"
    );
    let parallel = numeric_key(&streaming, "parallel_speedup_vs_recorded").expect("checked above");
    assert!(
        parallel >= 6.0,
        "committed parallel_speedup_vs_recorded fell below 6x: {parallel}"
    );
    let opt_geomean = numeric_key(&streaming, "geomean_speedup").expect("checked above");
    assert!(
        opt_geomean >= 1.3,
        "committed optimizer population geomean speedup fell below 1.3x: {opt_geomean}"
    );
    let opt_min = numeric_key(&streaming, "min_speedup").expect("checked above");
    assert!(
        opt_min >= 0.95,
        "committed optimizer min per-app speedup fell below 0.95x: {opt_min}"
    );
    let build_file = std::fs::read_to_string("BENCH_build.json").expect("checked above");
    let warm_speedup = numeric_key(&build_file, "warm_process_speedup").expect("checked above");
    assert!(
        warm_speedup >= 2.0,
        "committed warm cross-process rebuild speedup fell below 2x: {warm_speedup}"
    );
    let persistent = numeric_key(&build_file, "persistent_hit_rate").expect("checked above");
    assert!(
        persistent >= 0.8,
        "committed persistent cache hit rate fell below 0.8: {persistent}"
    );
    let spec_rate = numeric_key(&build_file, "speculative_hit_rate").expect("checked above");
    assert!(
        spec_rate >= 0.25,
        "committed speculative-compile hit rate fell below 0.25: {spec_rate}"
    );
    let pnr_file = std::fs::read_to_string("BENCH_pnr.json").expect("checked above");
    let warm_vt = numeric_key(&pnr_file, "edit1_vtime_speedup").expect("checked above");
    assert!(
        warm_vt >= 3.0,
        "committed warm single-cell-edit P&R vtime speedup fell below 3x: {warm_vt}"
    );
    let warm_wall = numeric_key(&pnr_file, "edit1_wall_speedup").expect("checked above");
    assert!(
        warm_wall >= 3.0,
        "committed warm single-cell-edit P&R wall speedup fell below 3x: {warm_wall}"
    );
    let wl_ratio = numeric_key(&pnr_file, "wirelength_ratio_max").expect("checked above");
    assert!(
        wl_ratio <= 1.05,
        "committed warm wirelength parity strayed beyond 5%: {wl_ratio}"
    );
    let fmax_ratio = numeric_key(&pnr_file, "fmax_ratio_min").expect("checked above");
    assert!(
        fmax_ratio >= 0.95,
        "committed warm fmax parity strayed beyond 5%: {fmax_ratio}"
    );
    let serving = std::fs::read_to_string("BENCH_serving.json").expect("checked above");
    let p99 = numeric_key(&serving, "p99_admission_ms").expect("checked above");
    assert!(
        p99 <= 250.0,
        "committed fleet p99 admission latency exceeds 250 ms: {p99}"
    );
    let fairness = numeric_key(&serving, "fairness_index").expect("checked above");
    assert!(
        fairness >= 0.8,
        "committed fleet weighted fairness fell below 0.8: {fairness}"
    );
    println!("bench_json check: all KPI files parse and carry the expected keys");
}

/// Extracts `"key": <number>` from the flat KPI JSON this binary emits.
fn numeric_key(text: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{key}\":"))?;
    let tail = text[at..].split_once(':')?.1.trim_start();
    let end = tail.find([',', '\n', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("check") {
        check_kpi_files();
        return;
    }
    // Re-measure just the optimizer population (fast inner loop for tuning).
    if std::env::args().nth(1).as_deref() == Some("optimizer") {
        print!("{}", optimizer_kpis());
        return;
    }

    // 1. Host KPN engine: chunked transport vs per-token baseline.
    let g = copy_pipeline(KPN_STAGES, KPN_TOKENS);
    let inputs = vec![("Input_1", word_values(KPN_TOKENS as u32))];
    let per_token = kpn_tokens_per_sec(&g, &inputs, 1);
    let batched = kpn_tokens_per_sec(&g, &inputs, ThreadedConfig::default().chunk);
    let speedup = batched / per_token;

    // 2. `-O0` cosim: simulated overlay cycles per host second on a real
    //    benchmark. The shipped default (pre-decoded block cache + stall
    //    skip-ahead) is measured against two baselines: the decode-per-step
    //    interpreter run live on the same host, and the decode-per-step
    //    rate this repo recorded in BENCH_streaming.json before the
    //    block-cached engine landed (the live interpreter has itself
    //    sped up since — thin LTO, NoC fast paths — so the recorded rate
    //    is the fixed before/after yardstick).
    let bench = rosetta::spam::bench(Scale::Tiny);
    let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let input_words = rosetta::util::unwords(&bench.inputs[0].1);
    let out_len = rosetta::util::unwords(&bench.run_functional()["Output_1"]).len();
    let cosim_rate = |config: CosimConfig, reps: u32| {
        // Best-of-N: the tiny workload finishes in under a millisecond,
        // so a single rep is scheduler noise.
        let mut best_secs = f64::MAX;
        let mut cycles = 0u64;
        for _ in 0..reps {
            let t0 = Instant::now();
            let out = pld::cosim_o0_with(
                &app,
                std::slice::from_ref(&input_words),
                &[out_len],
                2_000_000_000,
                config,
            )
            .expect("spam filter completes");
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            cycles = out.cycles;
        }
        (cycles, best_secs)
    };
    let (cosim_cycles, cosim_secs) = cosim_rate(CosimConfig::default(), 15);
    let (baseline_cycles, baseline_secs) = cosim_rate(
        CosimConfig {
            block_cache: false,
            ..CosimConfig::default()
        },
        5,
    );
    assert_eq!(cosim_cycles, baseline_cycles, "engines must be cycle-exact");
    let cycles_per_sec = cosim_cycles as f64 / cosim_secs;
    let cosim_baseline = baseline_cycles as f64 / baseline_secs;
    let cosim_speedup = cycles_per_sec / cosim_baseline;
    let cosim_speedup_recorded = cycles_per_sec / COSIM_RECORDED_BASELINE;

    // 2b. Parallel sharded cosim: thread-count scaling on a coarse-grained
    //     pipeline. Every point runs the same engine — `threads = 1` is
    //     the inline path, not a separate serial loop — so the sweep also
    //     re-proves determinism: cycle counts must agree bit-for-bit at
    //     every thread count. The headline gate compares the best point to
    //     the *recorded* decode-per-step baseline only (the live
    //     interpreter number above moves with the host).
    const PAR_STAGES: usize = 2;
    const PAR_TOKENS: i64 = 1_000;
    const PAR_INNER: i64 = 400;
    let par_graph = mul_pipeline(PAR_STAGES, PAR_TOKENS, PAR_INNER);
    let par_app = compile(&par_graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let par_inputs: Vec<u32> = (1..=PAR_TOKENS as u32).collect();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut sweep: Vec<usize> = vec![1, 2, 4, max_threads];
    sweep.sort_unstable();
    sweep.dedup();
    let mut par_rates: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    let mut par_cycles = 0u64;
    for &threads in &sweep {
        // Best-of-N wall-clock per point: these runs take milliseconds, so
        // a single rep measures the scheduler as much as the engine.
        let mut best_secs = f64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let out = pld::cosim_o0_parallel(
                &par_app,
                std::slice::from_ref(&par_inputs),
                &[PAR_TOKENS as usize],
                2_000_000_000,
                threads,
            )
            .expect("mul pipeline completes");
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            if par_cycles == 0 {
                par_cycles = out.cycles;
            }
            assert_eq!(
                out.cycles, par_cycles,
                "parallel cosim must be cycle-identical at every thread count"
            );
        }
        par_rates.insert(threads, par_cycles as f64 / best_secs);
    }
    let par_best = par_rates.values().fold(f64::MIN, |a, &b| a.max(b));
    let par_speedup_recorded = par_best / COSIM_RECORDED_BASELINE;

    // 2c. KPN optimizer: on-vs-off population statistics on the threaded
    //     host engine (generator families × replicates, best-of-3).
    let opt_json = optimizer_kpis();

    // 3. Linking network: sustained delivered flits/cycle, 8 streams of
    //    1000 words each to distinct destinations on a 32-leaf tree.
    let mut net = BftNoc::new(32, 1, 64);
    const STREAMS: usize = 8;
    const WORDS: u64 = 1000;
    for s in 0..STREAMS {
        net.set_dest(
            s,
            0,
            PortAddr {
                leaf: (s + 16) as u16,
                port: 0,
            },
        );
    }
    let mut sent = [0u64; STREAMS];
    while net.stats().delivered < STREAMS as u64 * WORDS {
        for (s, count) in sent.iter_mut().enumerate() {
            if *count < WORDS && net.inject(s, 0, *count as u32).is_ok() {
                *count += 1;
            }
        }
        net.step();
    }
    let flits_per_cycle = net.stats().delivered as f64 / net.cycle() as f64;

    let par_points = sweep
        .iter()
        .map(|t| format!("    \"threads_{t}_cycles_per_sec\": {:.0},\n", par_rates[t]))
        .collect::<String>();
    let json = format!(
        "{{\n  \"host_kpn\": {{\n    \"pipeline_stages\": {KPN_STAGES},\n    \"tokens\": {KPN_TOKENS},\n    \"per_token_tokens_per_sec\": {per_token:.0},\n    \"batched_tokens_per_sec\": {batched:.0},\n    \"speedup\": {speedup:.2}\n  }},\n  \"cosim\": {{\n    \"benchmark\": \"spam_filter_tiny\",\n    \"simulated_cycles\": {},\n    \"host_seconds\": {cosim_secs:.4},\n    \"cycles_per_sec\": {cycles_per_sec:.0},\n    \"baseline_cycles_per_sec\": {cosim_baseline:.0},\n    \"speedup\": {cosim_speedup:.2},\n    \"recorded_baseline_cycles_per_sec\": {COSIM_RECORDED_BASELINE:.0},\n    \"speedup_vs_recorded\": {cosim_speedup_recorded:.2}\n  }},\n  \"parallel_cosim\": {{\n    \"benchmark\": \"mul_pipe_{PAR_STAGES}x{PAR_TOKENS}\",\n    \"simulated_cycles\": {par_cycles},\n    \"max_threads\": {max_threads},\n{par_points}    \"best_cycles_per_sec\": {par_best:.0},\n    \"recorded_baseline_cycles_per_sec\": {COSIM_RECORDED_BASELINE:.0},\n    \"parallel_speedup_vs_recorded\": {par_speedup_recorded:.2}\n  }},\n{opt_json}  \"noc\": {{\n    \"leaves\": 32,\n    \"streams\": {STREAMS},\n    \"delivered_flits\": {},\n    \"cycles\": {},\n    \"flits_per_cycle\": {flits_per_cycle:.3}\n  }}\n}}\n",
        cosim_cycles,
        net.stats().delivered,
        net.cycle(),
    );
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    print!("{json}");

    // 4. Staged build graph: cold vs incremental vs no-op rebuild.
    let build_json = build_kpis();
    std::fs::write("BENCH_build.json", &build_json).expect("write BENCH_build.json");
    print!("{build_json}");

    // 5. Per-page P&R: incremental annealer, A* router, seed racing.
    let pnr_json = pnr_kpis();
    std::fs::write("BENCH_pnr.json", &pnr_json).expect("write BENCH_pnr.json");
    print!("{pnr_json}");

    assert!(
        speedup >= 3.0,
        "chunked transport speedup regressed below 3x: {speedup:.2}"
    );
    assert!(
        cosim_speedup_recorded >= 3.0,
        "block-cached cosim regressed below 3x the recorded decode-per-step \
         baseline: {cycles_per_sec:.0} vs {COSIM_RECORDED_BASELINE:.0} cycles/sec"
    );
    assert!(
        cosim_speedup >= 1.5,
        "block-cached cosim regressed against the live decode-per-step \
         interpreter: {cycles_per_sec:.0} vs {cosim_baseline:.0} cycles/sec"
    );
    assert!(
        par_speedup_recorded >= 6.0,
        "parallel sharded cosim fell below 6x the recorded decode-per-step \
         baseline: {par_best:.0} vs {COSIM_RECORDED_BASELINE:.0} cycles/sec"
    );
}
