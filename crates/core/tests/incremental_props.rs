//! BuildCache properties: the cache's hit/miss accounting is exact over
//! arbitrary edit sequences — the store is content-addressed, so an edit
//! misses exactly when it produces a version never compiled before, and
//! reverting to any previously built version is a hit — and a
//! page-assignment-only change is treated as dirty (an artifact is only
//! reusable on the page it was built for).

use std::collections::HashSet;

use dfg::{Graph, GraphBuilder, Target};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{BuildCache, CompileOptions, OptLevel, StageKind};
use proptest::prelude::*;

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..8,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

fn pipeline(addends: [i64; 4]) -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let mut prev = None;
    for (i, &addend) in addends.iter().enumerate() {
        let id = b.add(
            format!("s{i}"),
            stage(&format!("s{i}"), addend),
            Target::riscv_auto(),
        );
        match prev {
            None => b.ext_input("Input_1", id, "in"),
            Some(p) => {
                b.connect(format!("l{i}"), p, "out", id, "in");
            }
        }
        prev = Some(id);
    }
    b.ext_output("Output_1", prev.unwrap(), "out");
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Across any edit sequence, every operator compile is exactly one hit
    /// or one miss — hits + misses == builds × operators — and the misses
    /// are exactly the edits that produce a version the content-addressed
    /// store has never compiled before. Reverting to any earlier version is
    /// a hit: the store keeps every version, like a Makefile plus ccache.
    #[test]
    fn cache_accounting_is_exact_over_edit_sequences(
        edits in proptest::collection::vec((0usize..4, 1i64..6), 0..8),
    ) {
        let n_builds = edits.len() as u64 + 1;
        let mut addends = [1i64, 2, 3, 4];
        let mut seen: [HashSet<i64>; 4] = Default::default();
        for (op, &a) in addends.iter().enumerate() {
            seen[op].insert(a);
        }
        let mut cache = BuildCache::new();
        let opts = CompileOptions::new(OptLevel::O0);

        cache.compile(&pipeline(addends), &opts).unwrap();
        prop_assert_eq!((cache.hits, cache.misses), (0, 4));

        let mut expected_hits = 0u64;
        let mut expected_misses = 4u64;
        for (op, addend) in edits {
            let fresh = seen[op].insert(addend);
            addends[op] = addend;
            cache.compile(&pipeline(addends), &opts).unwrap();
            expected_misses += fresh as u64;
            expected_hits += 4 - fresh as u64;
            prop_assert_eq!(cache.hits, expected_hits);
            prop_assert_eq!(cache.misses, expected_misses);

            // Stage-level accounting agrees: a softcore operator is two
            // stages (compile + pack); only a freshly edited one executes.
            // (The app-wide LinkDriver stage is keyed on the whole artifact
            // vector, so it may legitimately execute even on a revert.)
            let report = cache.last_report().unwrap();
            prop_assert_eq!(report.executions(StageKind::SoftcoreCc), fresh as u64);
            prop_assert_eq!(report.hits(StageKind::SoftcoreCc), 4 - fresh as u64);
            prop_assert_eq!(report.executions(StageKind::BitstreamPack), fresh as u64);
            prop_assert_eq!(report.hits(StageKind::BitstreamPack), 4 - fresh as u64);
            let driver = report.hits(StageKind::LinkDriver)
                + report.executions(StageKind::LinkDriver);
            prop_assert_eq!(driver, 1);
        }
        prop_assert_eq!(cache.hits + cache.misses, 4 * n_builds);
    }
}

/// Swapping two operators' insertion order changes nothing about their
/// sources — only the automatic page assignment. The cache must still
/// recompile both: an artifact is bound to the page it was built for.
#[test]
fn page_assignment_only_change_is_dirty() {
    let two = |reversed: bool| -> Graph {
        let mut b = GraphBuilder::new("two");
        let addend = |name: &str| if name == "a" { 1 } else { 2 };
        let (first, second) = if reversed { ("b", "a") } else { ("a", "b") };
        let f = b.add(first, stage(first, addend(first)), Target::riscv_auto());
        let s = b.add(second, stage(second, addend(second)), Target::riscv_auto());
        let (a, bb) = if reversed { (s, f) } else { (f, s) };
        b.ext_input("Input_1", a, "in");
        b.connect("l", a, "out", bb, "in");
        b.ext_output("Output_1", bb, "out");
        b.build().unwrap()
    };

    let mut cache = BuildCache::new();
    let opts = CompileOptions::new(OptLevel::O0);
    let app1 = cache.compile(&two(false), &opts).unwrap();
    assert_eq!((cache.hits, cache.misses), (0, 2));

    let g1 = two(false);
    let g2 = two(true);
    let app2 = cache.compile(&g2, &opts).unwrap();
    let page_of = |app: &pld::CompiledApp, name: &str| {
        app.operators
            .iter()
            .find(|o| o.name == name)
            .unwrap()
            .page
            .unwrap()
    };
    for name in ["a", "b"] {
        // The sources are bit-identical: same kernel, same declared target.
        let op1 = g1.operators.iter().find(|o| o.name == name).unwrap();
        let op2 = g2.operators.iter().find(|o| o.name == name).unwrap();
        assert_eq!(format!("{:?}", op1.kernel), format!("{:?}", op2.kernel));
        assert_eq!(op1.target, op2.target);
        // ...but the automatic assignment moved both operators.
        assert_ne!(page_of(&app1, name), page_of(&app2, name));
    }
    // A pure page move reuses nothing: softcore images are packed for their
    // page and the resolved target (hence the content hash) names it.
    assert_eq!((cache.hits, cache.misses), (0, 4));
}
