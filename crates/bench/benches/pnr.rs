//! Micro-benchmarks for the per-page P&R fast path: incremental-cost
//! annealing moves, A* negotiated-congestion routing, and multi-seed
//! racing on the build farm.
//!
//! `cargo bench -p pld-bench --bench pnr`

use criterion::{criterion_group, criterion_main, Criterion};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{build, ArtifactStore, CompileOptions, OptLevel, SeedRace};
use pnr::{place, route, PnrOptions};

fn op_kernel(i: usize) -> kir::Kernel {
    KernelBuilder::new(format!("op{i}"))
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..64,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(i as i64))),
            ],
        )])
        .build()
        .unwrap()
}

/// The 8-operator page workload the repo's placer KPI is measured on:
/// each operator HLS-compiled, leaf-wrapped, and pinned to its own page.
fn page_workload() -> (fabric::Floorplan, Vec<netlist::Netlist>) {
    let fp = fabric::Floorplan::u50();
    let wrapped = (0..8)
        .map(|i| {
            let hls = hlsim::compile(&op_kernel(i)).unwrap();
            pld::flow::wrap_with_leaf_interface(&hls.netlist)
        })
        .collect();
    (fp, wrapped)
}

fn bench_place_and_route(c: &mut Criterion) {
    let (fp, wrapped) = page_workload();
    let mut group = c.benchmark_group("pnr_page");
    group.sample_size(20);
    group.bench_function("place_8_pages", |b| {
        b.iter(|| {
            for (i, nl) in wrapped.iter().enumerate() {
                place(nl, &fp.device, fp.pages[i].rect, &PnrOptions::default()).expect("fits");
            }
        })
    });
    let placements: Vec<_> = wrapped
        .iter()
        .enumerate()
        .map(|(i, nl)| place(nl, &fp.device, fp.pages[i].rect, &PnrOptions::default()).unwrap())
        .collect();
    group.bench_function("route_8_pages", |b| {
        b.iter(|| {
            for (i, nl) in wrapped.iter().enumerate() {
                route(
                    nl,
                    &fp.device,
                    fp.pages[i].rect,
                    &placements[i],
                    &PnrOptions::default(),
                )
                .expect("routes");
            }
        })
    });
    group.finish();
}

fn bench_seed_race(c: &mut Criterion) {
    // Racing re-runs only the PlaceRoute stages: warm the HLS products
    // once, then measure a 4-seed race over a fresh copy of that store.
    let mut g = dfg::GraphBuilder::new("race_bench");
    let a = g.add("op0", op_kernel(0), dfg::Target::hw(0));
    let b_ = g.add("op1", op_kernel(1), dfg::Target::hw(1));
    g.ext_input("Input_1", a, "in");
    g.connect("l0", a, "out", b_, "in");
    g.ext_output("Output_1", b_, "out");
    let graph = g.build().unwrap();

    let mut warm = ArtifactStore::new();
    build(&graph, &CompileOptions::new(OptLevel::O1), &mut warm).unwrap();
    let warm_bytes = warm.to_bytes();

    let mut group = c.benchmark_group("pnr_race");
    group.sample_size(10);
    for (name, jobs) in [("race4_serial", 1usize), ("race4_farm", 8)] {
        let opts = CompileOptions {
            jobs,
            race: SeedRace {
                attempts: 4,
                target_fmax_mhz: 0.0,
            },
            ..CompileOptions::new(OptLevel::O1)
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut store = ArtifactStore::from_bytes(&warm_bytes).unwrap();
                build(&graph, &opts, &mut store).expect("raced build")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_place_and_route, bench_seed_race);
criterion_main!(benches);
