//! Face detection: strong/weak filter cascade (paper Sec. 7.2).
//!
//! "An image classification task that identifies faces in images. We
//! decomposed the two main stages of the computation (strong and weak
//! filtering)." One input item is a candidate window of 4×4 8-bit pixels;
//! the integral operator forms running sums, the strong stage applies a
//! small bank of Haar-like rectangle features, the weak stage a larger one,
//! and the output is a (detected, score) pair per window.

use dfg::{Graph, GraphBuilder, Target};
use kir::types::Value;
use kir::{Expr, Kernel, KernelBuilder, Scalar, Stmt};

use crate::util::{rng, word};
use crate::{Bench, Scale};
use rand::Rng;

/// Window edge in pixels.
pub const WIN: i64 = 4;
/// Pixels (and integral words) per window.
pub const WIN_PIXELS: i64 = WIN * WIN;
/// Features in the strong (first) stage.
pub const STRONG_FEATURES: usize = 4;
/// Features in the weak (second) stage.
pub const WEAK_FEATURES: usize = 8;

/// Windows per scale.
pub fn dims(scale: Scale) -> i64 {
    match scale {
        Scale::Tiny => 8,
        Scale::Small => 32,
        Scale::Medium => 128,
    }
}

fn i32s() -> Scalar {
    Scalar::int(32)
}

/// A Haar-like feature: positive minus negative integral-cell pair with a
/// threshold.
#[derive(Debug, Clone, Copy)]
pub struct Feature {
    /// Index of the positively weighted integral cell.
    pub plus: u32,
    /// Index of the negatively weighted integral cell.
    pub minus: u32,
    /// Decision threshold on the difference.
    pub threshold: i32,
}

/// The deterministic feature banks: (strong, weak).
pub fn features(seed: u64) -> (Vec<Feature>, Vec<Feature>) {
    let mut r = rng(seed);
    let mut mk = |n: usize| {
        (0..n)
            .map(|_| Feature {
                plus: r.gen_range(0..WIN_PIXELS as u32),
                minus: r.gen_range(0..WIN_PIXELS as u32),
                threshold: r.gen_range(-64..64),
            })
            .collect::<Vec<_>>()
    };
    (mk(STRONG_FEATURES), mk(WEAK_FEATURES))
}

/// integral: running prefix sums over each window's pixels.
///
/// In: 16 pixel words. Out: 16 prefix-sum words.
fn integral_kernel(windows: i64) -> Kernel {
    let v = Expr::var;
    KernelBuilder::new("integral")
        .input("in", i32s())
        .output("out", i32s())
        .local("p", i32s())
        .local("acc", i32s())
        .body([Stmt::for_loop(
            "t",
            0..windows,
            [
                Stmt::assign("acc", Expr::cint(0)),
                Stmt::for_pipelined(
                    "i",
                    0..WIN_PIXELS,
                    [
                        Stmt::read("p", "in"),
                        Stmt::assign("acc", v("acc").add(v("p"))),
                        Stmt::write("out", v("acc")),
                    ],
                ),
            ],
        )])
        .build()
        .expect("integral kernel is well-formed")
}

/// A filter stage: apply a feature bank, accumulate votes, forward the
/// window sums plus the running score.
///
/// The cascade is "decomposed... by filter sets" (Sec. 7.2): the first stage
/// starts the score at zero, middle stages read the forwarded score and pass
/// the window onward (17 words), and the terminal stage emits the
/// (flag, score) pair.
fn filter_kernel(
    name: &str,
    bank: &[Feature],
    windows: i64,
    reads_score: bool,
    terminal: bool,
) -> Kernel {
    let v = Expr::var;
    let c = Expr::cint;
    let plus_rom: Vec<u128> = bank.iter().map(|f| f.plus as u128).collect();
    let minus_rom: Vec<u128> = bank.iter().map(|f| f.minus as u128).collect();
    let thr_rom: Vec<u128> = bank.iter().map(|f| (f.threshold as u32) as u128).collect();
    let nf = bank.len() as i64;

    let mut b = KernelBuilder::new(name)
        .input("in", i32s())
        .output("out", i32s())
        .local("w", i32s())
        .local("score", i32s())
        .local("diff", i32s())
        .array("cells", i32s(), WIN_PIXELS as u64)
        .array_init("fplus", i32s(), plus_rom)
        .array_init("fminus", i32s(), minus_rom)
        .array_init("fthr", i32s(), thr_rom);
    let mut body = vec![Stmt::for_pipelined(
        "i",
        0..WIN_PIXELS,
        [Stmt::read("w", "in"), Stmt::store("cells", v("i"), v("w"))],
    )];
    if reads_score {
        body.push(Stmt::read("score", "in"));
    } else {
        body.push(Stmt::assign("score", c(0)));
    }
    body.push(Stmt::for_pipelined(
        "f",
        0..nf,
        [
            Stmt::assign(
                "diff",
                Expr::index("cells", Expr::index("fplus", v("f")))
                    .sub(Expr::index("cells", Expr::index("fminus", v("f"))))
                    .cast(i32s()),
            ),
            Stmt::if_then(
                v("diff").gt(Expr::index("fthr", v("f"))),
                [Stmt::assign("score", v("score").add(c(1)))],
            ),
        ],
    ));
    if terminal {
        let majority = ((STRONG_FEATURES + WEAK_FEATURES) / 2) as i64;
        body.push(Stmt::write("out", v("score").gt(c(majority)).cast(i32s())));
        body.push(Stmt::write("out", v("score")));
    } else {
        body.push(Stmt::for_pipelined(
            "i",
            0..WIN_PIXELS,
            [Stmt::write("out", Expr::index("cells", v("i")))],
        ));
        body.push(Stmt::write("out", v("score")));
    }
    b = b.body([Stmt::for_loop("t", 0..windows, body)]);
    b.build().expect("filter kernel is well-formed")
}

/// Builds the face-detection graph: integral → strong_a → strong_b →
/// weak_a → weak_b, the paper's two main stages each decomposed by filter
/// sets.
pub fn graph(windows: i64, seed: u64) -> Graph {
    let (strong, weak) = features(seed);
    let (sa, sb) = strong.split_at(STRONG_FEATURES / 2);
    let (wa, wb) = weak.split_at(WEAK_FEATURES / 2);
    let mut b = GraphBuilder::new("face_detection");
    let integ = b.add("integral", integral_kernel(windows), Target::hw_auto());
    let stage_a = b.add(
        "strong_a",
        filter_kernel("strong_a", sa, windows, false, false),
        Target::hw_auto(),
    );
    let stage_b = b.add(
        "strong_b",
        filter_kernel("strong_b", sb, windows, true, false),
        Target::hw_auto(),
    );
    let stage_c = b.add(
        "weak_a",
        filter_kernel("weak_a", wa, windows, true, false),
        Target::hw_auto(),
    );
    let stage_d = b.add(
        "weak_b",
        filter_kernel("weak_b", wb, windows, true, true),
        Target::hw_auto(),
    );
    b.ext_input("Input_1", integ, "in");
    b.connect("i2sa", integ, "out", stage_a, "in");
    b.connect("sa2sb", stage_a, "out", stage_b, "in");
    b.connect("sb2wa", stage_b, "out", stage_c, "in");
    b.connect("wa2wb", stage_c, "out", stage_d, "in");
    b.ext_output("Output_1", stage_d, "out");
    b.build().expect("face graph is well-formed")
}

/// Generates candidate windows (pixels 0..255).
pub fn workload(seed: u64, windows: i64) -> Vec<Value> {
    let mut r = rng(seed ^ 0xface);
    (0..windows * WIN_PIXELS)
        .map(|_| word(r.gen_range(0..256)))
        .collect()
}

/// Independent golden model: `(flag, score)` per window.
pub fn golden(input_words: &[u32], strong: &[Feature], weak: &[Feature]) -> Vec<(u32, i32)> {
    input_words
        .chunks(WIN_PIXELS as usize)
        .map(|window| {
            let mut cells = Vec::with_capacity(WIN_PIXELS as usize);
            let mut acc = 0i32;
            for &p in window {
                acc += p as i32;
                cells.push(acc);
            }
            let mut score = 0i32;
            for f in strong.iter().chain(weak) {
                let diff = cells[f.plus as usize] - cells[f.minus as usize];
                if diff > f.threshold {
                    score += 1;
                }
            }
            let majority = ((STRONG_FEATURES + WEAK_FEATURES) / 2) as i32;
            ((score > majority) as u32, score)
        })
        .collect()
}

/// Builds the benchmark at a scale.
pub fn bench(scale: Scale) -> Bench {
    let windows = dims(scale);
    Bench {
        name: "Face Detection",
        graph: graph(windows, 0xface5),
        inputs: vec![("Input_1".into(), workload(4, windows))],
        items: windows as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::unwords;

    #[test]
    fn matches_independent_cascade() {
        let windows = dims(Scale::Tiny);
        let (strong, weak) = features(0xface5);
        let b = bench(Scale::Tiny);
        let out = b.run_functional();
        let got = unwords(&out["Output_1"]);
        let want = golden(&unwords(&b.inputs[0].1), &strong, &weak);
        assert_eq!(got.len(), windows as usize * 2);
        for (i, (flag, score)) in want.iter().enumerate() {
            assert_eq!(got[i * 2], *flag, "window {i} flag");
            assert_eq!(got[i * 2 + 1] as i32, *score, "window {i} score");
        }
    }

    #[test]
    fn flags_consistent_with_scores() {
        let b = bench(Scale::Small);
        let out = b.run_functional();
        let words = unwords(&out["Output_1"]);
        let majority = ((STRONG_FEATURES + WEAK_FEATURES) / 2) as i32;
        for pair in words.chunks(2) {
            let (flag, score) = (pair[0], pair[1] as i32);
            assert!((0..=(STRONG_FEATURES + WEAK_FEATURES) as i32).contains(&score));
            assert_eq!(flag, (score > majority) as u32);
        }
    }
}
