//! End-to-end integration: source graph → compile flows → artifacts →
//! execution, across crates.

use dfg::Target;
use pld::{compile, CompileOptions, OptLevel};
use rosetta::{suite, Bench, Scale};

/// Every Rosetta benchmark compiles under `-O0` and the *compiled softcore
/// binaries*, run operator by operator on traced streams, reproduce the
/// functional golden outputs exactly — the full single-source guarantee
/// through the real `-O0` artifacts.
#[test]
fn o0_softcore_binaries_reproduce_golden_outputs() {
    for bench in suite(Scale::Tiny) {
        let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let (golden_out, _, trace) =
            dfg::run_graph_trace(&bench.graph, &bench.input_refs()).expect("functional run");

        for (i, op) in app.operators.iter().enumerate() {
            let binary = op.soft.as_ref().expect("-O0 maps everything to softcores");
            let inputs: Vec<Vec<u32>> = trace.op_inputs[i]
                .iter()
                .map(kir::wire::stream_to_words)
                .collect();
            let result = softcore::execute(binary, &inputs, 20_000_000_000)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", bench.name, op.name));

            // Each output port must match what the interpreter produced.
            let kernel = &bench.graph.operators[i].kernel;
            let (expected, _) = kir::interp::run_with_stats(
                kernel,
                &kernel
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(pi, p)| (p.name.as_str(), trace.op_inputs[i][pi].clone()))
                    .collect::<Vec<_>>(),
            )
            .expect("interp");
            for (pi, port) in kernel.outputs.iter().enumerate() {
                let want = kir::wire::stream_to_words(&expected[&port.name]);
                assert_eq!(
                    result.outputs[pi], want,
                    "{}/{} port {}",
                    bench.name, op.name, port.name
                );
            }
        }
        // And the graph-level golden output exists.
        assert!(golden_out.values().any(|v| !v.is_empty()));
    }
}

/// Every benchmark compiles under `-O1`: each HW operator closes timing on
/// its own page, artifacts land on distinct pages, and the driver carries
/// one link per stream.
#[test]
fn o1_separate_compilation_closes_on_pages() {
    for bench in suite(Scale::Tiny) {
        let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O1))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let mut pages_seen = std::collections::HashSet::new();
        for op in &app.operators {
            let page = op.page.expect("paged flow assigns pages");
            assert!(
                pages_seen.insert(page),
                "{}: page {page} reused",
                bench.name
            );
            let t = op.timing.as_ref().expect("HW operators close timing");
            assert!(
                t.fmax_mhz > 100.0 && t.fmax_mhz < 800.0,
                "{}/{}: fmax {}",
                bench.name,
                op.name,
                t.fmax_mhz
            );
        }
        let expected_links =
            bench.graph.edges.len() + bench.graph.ext_inputs.len() + bench.graph.ext_outputs.len();
        assert_eq!(app.driver.link_packets(), expected_links, "{}", bench.name);
        // Re-linking is packets, not recompiles: a handful per stream.
        assert!(app.driver.link_packets() < 64);
    }
}

/// The headline compile-time ordering holds on a real benchmark:
/// `-O0` (seconds) < `-O1` (minutes) < `-O3` (hours), in virtual time.
#[test]
fn compile_time_ordering_on_rendering() {
    let bench = rosetta::rendering::bench(Scale::Tiny);
    let o0 = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let o1 = compile(&bench.graph, &CompileOptions::new(OptLevel::O1)).unwrap();
    let o3 = compile(&bench.graph, &CompileOptions::new(OptLevel::O3)).unwrap();

    let (t0, t1, t3) = (
        o0.compile_seconds(),
        o1.compile_seconds(),
        o3.compile_seconds(),
    );
    assert!(t0 < 10.0, "-O0 compiles in seconds, got {t0}");
    assert!(t0 * 10.0 < t1, "-O1 is minutes-scale: {t0} vs {t1}");
    assert!(t1 < t3, "-O3 is the slowest: {t1} vs {t3}");
}

/// Editing one operator recompiles one page; the other artifacts are
/// bit-identical across the incremental build.
#[test]
fn incremental_rebuild_touches_one_page() {
    let (w, h) = rosetta::optical::dims(Scale::Tiny);
    let g1 = rosetta::optical::graph(w, h);
    // "Edit" flow_calc by replacing it with a same-interface variant: wrap
    // the graph again with a different seed elsewhere is not an edit, so
    // instead retarget one operator — a pragma flip is the paper's edit.
    let mut b = dfg::GraphBuilder::new("optical_flow");
    let ids: Vec<_> = g1
        .operators
        .iter()
        .map(|o| {
            let target = if o.name == "flow_calc" {
                Target::riscv_auto()
            } else {
                o.target
            };
            b.add(o.name.clone(), o.kernel.clone(), target)
        })
        .collect();
    for p in &g1.ext_inputs {
        b.ext_input(p.name.clone(), ids[p.op.0], &p.port);
    }
    for e in &g1.edges {
        b.connect(
            e.name.clone(),
            ids[e.from.0 .0],
            &e.from.1,
            ids[e.to.0 .0],
            &e.to.1,
        );
    }
    for p in &g1.ext_outputs {
        b.ext_output(p.name.clone(), ids[p.op.0], &p.port);
    }
    let g2 = b.build().unwrap();

    let mut cache = pld::BuildCache::new();
    let opts = CompileOptions::new(OptLevel::O1);
    let full = cache.compile(&g1, &opts).unwrap();
    assert_eq!(cache.misses, 7);
    let incr = cache.compile(&g2, &opts).unwrap();
    assert_eq!(cache.misses, 8, "exactly one operator recompiled");
    assert_eq!(cache.hits, 6);
    // The flipped operator is now a softcore image; others unchanged.
    let flow = incr
        .operators
        .iter()
        .find(|o| o.name == "flow_calc")
        .unwrap();
    assert!(flow.soft.is_some());
    for (a, b) in full.operators.iter().zip(&incr.operators) {
        if a.name != "flow_calc" {
            let ia = a.artifact.unwrap();
            let ib = b.artifact.unwrap();
            assert_eq!(
                full.artifacts[ia].hash, incr.artifacts[ib].hash,
                "{}",
                a.name
            );
        }
    }
    // The incremental turn is seconds-scale: the paper's whole point.
    assert!(incr.vtime_serial.total() < 10.0);
}

/// Functional outputs are identical across compile levels (the Kahn
/// guarantee): spot-check via the `-O1` co-simulation path's functional
/// trace against plain graph execution.
#[test]
fn functional_outputs_level_independent() {
    let bench = rosetta::spam::bench(Scale::Tiny);
    let (a, _) = dfg::run_graph(&bench.graph, &bench.input_refs()).unwrap();
    let (b, _, _) = dfg::run_graph_trace(&bench.graph, &bench.input_refs()).unwrap();
    assert_eq!(a, b);
}

/// The whole suite fits the 22-page floorplan at every paged level.
#[test]
fn suite_fits_the_u50_floorplan() {
    for bench in suite(Scale::Tiny) {
        assert!(
            bench.graph.operators.len() <= 22,
            "{} needs more pages than the U50 floorplan offers",
            bench.name
        );
        for level in [OptLevel::O0, OptLevel::O1] {
            compile(&bench.graph, &CompileOptions::new(level))
                .unwrap_or_else(|e| panic!("{} at {level}: {e}", bench.name));
        }
    }
}

/// Loading artifacts is fast for pages and slow for full-device bitstreams.
#[test]
fn partial_bitstreams_load_faster() {
    let bench: Bench = rosetta::spam::bench(Scale::Tiny);
    let o1 = compile(&bench.graph, &CompileOptions::new(OptLevel::O1)).unwrap();
    let o3 = compile(&bench.graph, &CompileOptions::new(OptLevel::O3)).unwrap();
    let page_load: f64 = o1.artifacts.iter().skip(1).map(|x| x.load_seconds()).sum();
    let kernel_load: f64 = o3.artifacts.iter().map(|x| x.load_seconds()).sum();
    assert!(
        kernel_load > page_load,
        "full bitstream {kernel_load}s vs pages {page_load}s"
    );
}

/// The complete `-O0` system — compiled softcore binaries on their pages,
/// exchanging every word through the cycle-level linking network under DMA —
/// reproduces the golden outputs for a real benchmark.
#[test]
fn full_system_cosimulation_of_spam_filter() {
    let bench = rosetta::spam::bench(Scale::Tiny);
    let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();

    let input_words = rosetta::util::unwords(&bench.inputs[0].1);
    let golden = {
        let out = bench.run_functional();
        rosetta::util::unwords(&out["Output_1"])
    };

    let result = pld::cosim_o0(&app, &[input_words], &[golden.len()], 2_000_000_000)
        .expect("system completes");
    assert_eq!(result.outputs[0], golden);
    // Tab. 3's point: the softcore system costs milliseconds of card time
    // for a workload hardware finishes in microseconds.
    assert!(result.seconds > 1e-5, "cosim took {}s", result.seconds);
}

/// The cosimulator's host-time optimizations — stall skip-ahead and the
/// pre-decoded block cache — are purely host-side: every combination must
/// produce bit-identical outputs, simulated cycle counts, and instruction
/// counts against the decode-per-step cycle-by-cycle reference.
#[test]
fn cosim_fast_paths_are_cycle_accurate_on_spam_filter() {
    let bench = rosetta::spam::bench(Scale::Tiny);
    let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let input_words = rosetta::util::unwords(&bench.inputs[0].1);
    let golden = {
        let out = bench.run_functional();
        rosetta::util::unwords(&out["Output_1"])
    };

    let run = |skip_ahead: bool, block_cache: bool| {
        pld::cosim_o0_with(
            &app,
            std::slice::from_ref(&input_words),
            &[golden.len()],
            2_000_000_000,
            pld::CosimConfig {
                skip_ahead,
                block_cache,
                ..pld::CosimConfig::default()
            },
        )
        .expect("system completes")
    };
    let reference = run(false, false);
    assert_eq!(reference.outputs[0], golden);
    for skip_ahead in [false, true] {
        for block_cache in [false, true] {
            let got = run(skip_ahead, block_cache);
            let tag = format!("skip_ahead={skip_ahead} block_cache={block_cache}");
            assert_eq!(got.outputs, reference.outputs, "{tag}");
            assert_eq!(got.cycles, reference.cycles, "{tag} changed virtual time");
            assert_eq!(got.instructions, reference.instructions, "{tag}");
        }
    }
}

/// The sharded parallel driver is the same engine at every host thread
/// count: outputs, simulated cycles, and instruction counts on a real
/// benchmark must be bit-identical across `threads` — including against
/// the decode-per-step reference. CI runs this as the multi-thread smoke
/// (actual worker threads drive the cores when `threads > 1`).
#[test]
fn parallel_cosim_smoke_is_thread_count_invariant() {
    let bench = rosetta::spam::bench(Scale::Tiny);
    let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0)).unwrap();
    let input_words = rosetta::util::unwords(&bench.inputs[0].1);
    let golden = {
        let out = bench.run_functional();
        rosetta::util::unwords(&out["Output_1"])
    };

    let reference = pld::cosim_o0(
        &app,
        std::slice::from_ref(&input_words),
        &[golden.len()],
        2_000_000_000,
    )
    .expect("system completes");
    assert_eq!(reference.outputs[0], golden);
    for threads in [2, 4] {
        let got = pld::cosim_o0_parallel(
            &app,
            std::slice::from_ref(&input_words),
            &[golden.len()],
            2_000_000_000,
            threads,
        )
        .expect("system completes");
        assert_eq!(got.outputs, reference.outputs, "threads={threads}");
        assert_eq!(
            got.cycles, reference.cycles,
            "threads={threads} changed virtual time"
        );
        assert_eq!(
            got.instructions, reference.instructions,
            "threads={threads}"
        );
    }
}

/// The `-O0` batch executor's block-cached engine reproduces the reference
/// interpreter bit-for-bit across the whole Rosetta suite — registers and
/// memory are covered by the softcore differential tests; here the real
/// compiled binaries must agree on outputs, cycles, and instructions.
#[test]
fn o0_block_cached_engine_matches_reference_on_suite() {
    for bench in suite(Scale::Tiny) {
        let app = compile(&bench.graph, &CompileOptions::new(OptLevel::O0))
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let (_, _, trace) =
            dfg::run_graph_trace(&bench.graph, &bench.input_refs()).expect("functional run");
        for (i, op) in app.operators.iter().enumerate() {
            let binary = op.soft.as_ref().expect("-O0 maps everything to softcores");
            let inputs: Vec<Vec<u32>> = trace.op_inputs[i]
                .iter()
                .map(kir::wire::stream_to_words)
                .collect();
            let fast = softcore::execute_with(
                binary,
                &inputs,
                20_000_000_000,
                softcore::Engine::BlockCached,
            );
            let slow = softcore::execute_with(
                binary,
                &inputs,
                20_000_000_000,
                softcore::Engine::Reference,
            );
            assert_eq!(fast, slow, "{}/{}", bench.name, op.name);
        }
    }
}
