//! Acceptance tests for the staged build graph: phase-level incrementality
//! (a seed-only edit re-runs P&R against the cached HLS netlist), no-op
//! rebuilds that execute nothing, on-disk store round-trips, and virtual-time
//! recalibration that recompiles nothing because seconds are derived from
//! stored work measures at materialization time.

use dfg::{Graph, GraphBuilder, Target};
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{build, compile, ArtifactStore, CompileOptions, OptLevel, StageKind, VtimeModel};

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..32,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .unwrap()
}

fn pipeline(addends: [i64; 3], targets: [Target; 3]) -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let a = b.add("a", stage("a", addends[0]), targets[0]);
    let c = b.add("c", stage("c", addends[1]), targets[1]);
    let d = b.add("d", stage("d", addends[2]), targets[2]);
    b.ext_input("Input_1", a, "in");
    b.connect("l1", a, "out", c, "in");
    b.connect("l2", c, "out", d, "in");
    b.ext_output("Output_1", d, "out");
    b.build().unwrap()
}

fn hw3() -> [Target; 3] {
    [Target::hw_auto(), Target::hw_auto(), Target::hw_auto()]
}

#[test]
fn seed_only_change_redoes_pnr_but_reuses_hls_netlists() {
    let g = pipeline([1, 2, 3], hw3());
    let mut store = ArtifactStore::new();
    let opts = CompileOptions::new(OptLevel::O1);
    let (_, first) = build(&g, &opts, &mut store).unwrap();
    assert_eq!(first.executions(StageKind::HlsLower), 3);
    assert_eq!(first.executions(StageKind::PlaceRoute), 3);

    let reseeded = CompileOptions { seed: 99, ..opts };
    let (app, report) = build(&g, &reseeded, &mut store).unwrap();
    // Per operator: HLS hit, P&R + pack executed.
    assert_eq!(report.hits(StageKind::HlsLower), 3);
    assert_eq!(report.executions(StageKind::HlsLower), 0);
    assert_eq!(report.executions(StageKind::PlaceRoute), 3);
    assert_eq!(report.executions(StageKind::BitstreamPack), 3);
    // The reseeded build is cheaper than from scratch by exactly the HLS
    // phase: executed time has hls == 0 while the fresh estimate does not.
    assert_eq!(app.vtime_serial.hls, 0.0);
    assert!(report.fresh_vtime_serial.hls > 0.0);
    assert!(app.vtime_serial.pnr > 0.0);
}

#[test]
fn noop_rebuild_executes_zero_stages() {
    let g = pipeline([1, 2, 3], hw3());
    let mut store = ArtifactStore::new();
    let opts = CompileOptions::new(OptLevel::O1);
    let (first, _) = build(&g, &opts, &mut store).unwrap();
    let (second, report) = build(&g, &opts, &mut store).unwrap();
    assert_eq!(report.total_executions(), 0);
    assert_eq!(report.hit_rate(), 1.0);
    assert_eq!(report.critical_path_seconds, 0.0);
    assert_eq!(second.vtime_parallel.total(), 0.0);
    // Identical outputs, down to the artifact hashes and the driver.
    let hashes = |app: &pld::CompiledApp| app.artifacts.iter().map(|x| x.hash).collect::<Vec<_>>();
    assert_eq!(hashes(&first), hashes(&second));
    assert_eq!(first.driver, second.driver);
}

#[test]
fn store_round_trips_through_disk_with_identical_hashes() {
    let g = pipeline(
        [1, 2, 3],
        [Target::hw_auto(), Target::riscv_auto(), Target::hw_auto()],
    );
    let mut store = ArtifactStore::new();
    let opts = CompileOptions::new(OptLevel::O1);
    let (first, _) = build(&g, &opts, &mut store).unwrap();

    let dir = std::env::temp_dir().join(format!("pld-build-graph-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.pldstore");
    store.save(&path).unwrap();
    let mut back = ArtifactStore::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.to_bytes(), store.to_bytes());
    assert_eq!(back.len(), store.len());

    // A build against the reloaded store is a full cache hit and reproduces
    // the artifacts bit-identically.
    let (again, report) = build(&g, &opts, &mut back).unwrap();
    assert_eq!(report.total_executions(), 0);
    for (a, b) in first.artifacts.iter().zip(&again.artifacts) {
        assert_eq!(a.hash, b.hash);
        assert_eq!(a, b);
    }
    assert_eq!(first.driver, again.driver);
}

#[test]
fn vtime_recalibration_recompiles_nothing() {
    let g = pipeline([1, 2, 3], hw3());
    let mut store = ArtifactStore::new();
    let opts = CompileOptions::new(OptLevel::O1);
    let (_, first) = build(&g, &opts, &mut store).unwrap();

    // Double the P&R cost model: stage keys don't cover the vtime model, so
    // nothing re-runs — the stored work measures are just repriced.
    let recal = CompileOptions {
        vtime: VtimeModel {
            pnr_per_work: VtimeModel::default().pnr_per_work * 2.0,
            pnr_fixed: VtimeModel::default().pnr_fixed * 2.0,
            ..VtimeModel::default()
        },
        ..opts
    };
    let (app, report) = build(&g, &recal, &mut store).unwrap();
    assert_eq!(report.total_executions(), 0);
    assert_eq!(app.vtime_parallel.total(), 0.0);
    // The from-scratch estimate reflects the new calibration.
    assert!(report.fresh_vtime_serial.pnr > first.fresh_vtime_serial.pnr * 1.9);
    assert_eq!(report.fresh_vtime_serial.hls, first.fresh_vtime_serial.hls);
}

#[test]
fn fresh_vtime_report_matches_a_fresh_compile() {
    // The report's from-scratch estimate is bit-identical to what a fresh
    // `compile` (empty ephemeral store) records as the app's own cost.
    let g = pipeline(
        [4, 5, 6],
        [Target::hw_auto(), Target::riscv_auto(), Target::hw_auto()],
    );
    let opts = CompileOptions::new(OptLevel::O1);
    let fresh = compile(&g, &opts).unwrap();

    let mut store = ArtifactStore::new();
    build(&g, &opts, &mut store).unwrap(); // warm the store
    let (warm, report) = build(&g, &opts, &mut store).unwrap();
    assert_eq!(report.total_executions(), 0);
    assert_eq!(report.fresh_vtime_serial, fresh.vtime_serial);
    assert_eq!(report.fresh_vtime_parallel, fresh.vtime_parallel);
    // And the warm build's outputs equal the fresh build's.
    let hashes = |app: &pld::CompiledApp| app.artifacts.iter().map(|x| x.hash).collect::<Vec<_>>();
    assert_eq!(hashes(&fresh), hashes(&warm));
}

#[test]
fn stores_are_shared_across_opt_levels() {
    // -O0 and -O1 of the same graph share nothing for hardware targets (the
    // -O0 flow forces softcore), but two -O1 compiles of different graphs
    // share the stages of their common operators — one store serves all.
    let g1 = pipeline([1, 2, 3], hw3());
    let g2 = pipeline([1, 2, 99], hw3()); // shares a and c with g1
    let mut store = ArtifactStore::new();
    let opts = CompileOptions::new(OptLevel::O1);
    build(&g1, &opts, &mut store).unwrap();
    let (_, report) = build(&g2, &opts, &mut store).unwrap();
    assert_eq!(report.hits(StageKind::HlsLower), 2);
    assert_eq!(report.executions(StageKind::HlsLower), 1);
    assert_eq!(report.executions(StageKind::PlaceRoute), 1);
}
