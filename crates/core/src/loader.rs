//! The loader: bringing a compiled application up on the card.
//!
//! Executes the generated [`Driver`](crate::artifact::Driver) against the
//! simulated card: partial bitstreams stream through the configuration port,
//! softcore images stream over the linking network into page memories, and
//! the final link step sends one configuration packet per stream through a
//! real [`noc::BftNoc`]. The report's timings are the "downtime" the paper
//! discusses in Sec. 7.3 — the window during which an edited page is being
//! reloaded.

use fabric::PageId;
use noc::BftNoc;

use crate::artifact::LoadOp;
use crate::flow::CompiledApp;

/// Timing breakdown of one application bring-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Seconds loading the overlay (L1 bitstream).
    pub overlay_seconds: f64,
    /// Seconds loading page bitstreams (L2, via the configuration port).
    pub bitstream_seconds: f64,
    /// Seconds streaming softcore images over the linking network.
    pub softcore_seconds: f64,
    /// Linking-network cycles spent delivering configuration packets.
    pub link_cycles: u64,
    /// Configuration packets sent ("a few packets per page", Sec. 4.3).
    pub link_packets: usize,
    /// Total bytes moved.
    pub payload_bytes: u64,
}

impl LoadReport {
    /// Total bring-up seconds.
    pub fn total_seconds(&self) -> f64 {
        self.overlay_seconds
            + self.bitstream_seconds
            + self.softcore_seconds
            + crate::vtime::overlay_seconds(self.link_cycles)
    }

    /// The downtime for reloading just the given artifacts (an incremental
    /// edit): time to reload those pages plus a full re-link.
    pub fn incremental_seconds(&self, artifact_seconds: f64) -> f64 {
        artifact_seconds + crate::vtime::overlay_seconds(self.link_cycles)
    }
}

/// The subset of an app's load ops that (re)program the given pages — what
/// an incremental reload or a multi-tenant page swap must replay.
pub fn page_load_ops(app: &CompiledApp, pages: &[PageId]) -> Vec<LoadOp> {
    app.driver
        .loads
        .iter()
        .filter(|op| {
            let artifact = match op {
                LoadOp::Overlay => return false,
                LoadOp::PageBitstream { artifact } | LoadOp::SoftcoreImage { artifact } => {
                    *artifact
                }
            };
            app.artifacts[artifact]
                .page()
                .is_some_and(|p| pages.contains(&p))
        })
        .cloned()
        .collect()
}

/// Replays a subset of an app's load ops, reporting the artifact-side
/// transfer timing (link fields stay zero — the caller owns the link step,
/// which may run on a shared, already-linked network).
pub fn replay_loads(app: &CompiledApp, ops: &[LoadOp]) -> LoadReport {
    let mut report = LoadReport {
        overlay_seconds: 0.0,
        bitstream_seconds: 0.0,
        softcore_seconds: 0.0,
        link_cycles: 0,
        link_packets: 0,
        payload_bytes: 0,
    };
    for op in ops {
        match op {
            LoadOp::Overlay => {
                let x = &app.artifacts[0];
                report.overlay_seconds += x.load_seconds();
                report.payload_bytes += x.payload_bytes();
            }
            LoadOp::PageBitstream { artifact } => {
                let x = &app.artifacts[*artifact];
                report.bitstream_seconds += x.load_seconds();
                report.payload_bytes += x.payload_bytes();
            }
            LoadOp::SoftcoreImage { artifact } => {
                let x = &app.artifacts[*artifact];
                report.softcore_seconds += x.load_seconds();
                report.payload_bytes += x.payload_bytes();
            }
        }
    }
    report
}

/// Simulates loading and linking a compiled application.
///
/// Bitstream/image transfer times come from artifact sizes; the link step
/// actually runs on a [`BftNoc`] instance so the packet count and cycle cost
/// are measured, not estimated.
pub fn load(app: &CompiledApp) -> LoadReport {
    let mut report = replay_loads(app, &app.driver.loads);
    report.link_packets = app.driver.links.len();

    // Linking: deliver the driver's configuration packets through the tree
    // from the DMA leaf, as the generated driver.c does.
    if !app.driver.links.is_empty() {
        let n_pages = app.floorplan.pages.len();
        let mut net = BftNoc::new(n_pages + 2, 4, 64);
        let host = app.dma_in_leaf() as usize;
        for link in &app.driver.links {
            while net
                .send_config(host, link.src_leaf, link.stream, link.dest)
                .is_err()
            {
                net.step();
            }
        }
        net.drain(1_000_000);
        assert_eq!(
            net.stats().config_writes,
            app.driver.links.len() as u64,
            "every link packet must apply"
        );
        report.link_cycles = net.cycle();
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{compile, CompileOptions, OptLevel};
    use dfg::{GraphBuilder, Target};
    use kir::{Expr, KernelBuilder, Scalar, Stmt};

    fn app(level: OptLevel) -> CompiledApp {
        let k = |name: &str| {
            KernelBuilder::new(name)
                .input("in", Scalar::uint(32))
                .output("out", Scalar::uint(32))
                .local("x", Scalar::uint(32))
                .body([Stmt::for_pipelined(
                    "i",
                    0..32,
                    [Stmt::read("x", "in"), Stmt::write("out", Expr::var("x"))],
                )])
                .build()
                .unwrap()
        };
        let mut b = GraphBuilder::new("g");
        let a = b.add("a", k("a"), Target::hw_auto());
        let c = b.add("c", k("c"), Target::hw_auto());
        b.ext_input("Input_1", a, "in");
        b.connect("l", a, "out", c, "in");
        b.ext_output("Output_1", c, "out");
        compile(&b.build().unwrap(), &CompileOptions::new(level)).unwrap()
    }

    #[test]
    fn o1_load_is_pages_plus_link_packets() {
        let report = load(&app(OptLevel::O1));
        assert!(report.bitstream_seconds > 0.0);
        assert_eq!(report.softcore_seconds, 0.0);
        assert_eq!(report.link_packets, 3); // dma-in, a->c, dma-out
        assert!(report.link_cycles > 0);
        // Linking is microseconds-scale — packets, not recompiles.
        assert!(report.link_cycles < 1_000);
    }

    #[test]
    fn o0_load_streams_small_images() {
        let report = load(&app(OptLevel::O0));
        assert!(report.softcore_seconds > 0.0);
        assert_eq!(report.bitstream_seconds, 0.0);
        // Paper Sec. 5.2: operator footprints are tens of KB.
        assert!(report.payload_bytes < 64 * 1024 * 1024);
    }

    #[test]
    fn page_subset_replay_covers_only_those_pages() {
        let app = app(OptLevel::O1);
        let full = load(&app);
        let pages: Vec<_> = app.operators.iter().filter_map(|o| o.page).collect();
        let one = page_load_ops(&app, &pages[..1]);
        assert_eq!(one.len(), 1);
        let partial = replay_loads(&app, &one);
        assert!(partial.bitstream_seconds > 0.0);
        assert!(partial.bitstream_seconds < full.bitstream_seconds);
        assert_eq!(partial.overlay_seconds, 0.0);
        assert_eq!(partial.link_cycles, 0);
        // All pages replayed equals the full bitstream phase.
        let all = replay_loads(&app, &page_load_ops(&app, &pages));
        assert_eq!(all.bitstream_seconds, full.bitstream_seconds);
    }

    #[test]
    fn page_reload_downtime_beats_full_bringup() {
        let app = app(OptLevel::O1);
        let report = load(&app);
        let one_page = app.artifacts[1].load_seconds();
        assert!(report.incremental_seconds(one_page) < report.total_seconds());
    }
}
