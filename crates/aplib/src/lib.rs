#![warn(missing_docs)]
//! Arbitrary-precision integer and fixed-point libraries for PLD.
//!
//! The PLD paper (Sec. 5.2) requires datatypes "with compatible implementations
//! for processor and FPGA (e.g., arbitrary precision integer and fixed-point
//! libraries: `ap_int`, `ap_fixed`)" so that the *same* operator source can be
//! compiled to FPGA pages and to softcore processors. It further notes that the
//! vendor libraries waste memory on small softcore pages, motivating a
//! memory-efficient reimplementation.
//!
//! This crate provides both halves of that story:
//!
//! * [`ApInt`] / [`ApUint`] / [`ApFixed`] / [`ApUfixed`] — const-generic types
//!   mirroring `ap_int<W>`, `ap_uint<W>`, `ap_fixed<W,I>`, `ap_ufixed<W,I>`
//!   for host-side Rust code (examples, golden models).
//! * [`DynInt`] / [`DynFixed`] — width-as-value twins used by the `kir`
//!   interpreter, the HLS datapath model and the softcore compiler, where
//!   operator types are runtime data.
//!
//! Semantics follow the Xilinx defaults the paper's benchmarks rely on:
//! overflow **wraps** (`AP_WRAP`) and fixed-point assignment **truncates
//! toward negative infinity** (`AP_TRN`). Division by zero yields zero, the
//! conventional model for a hardware divider with undefined output (the
//! paper's `flow_calc` operator in Fig. 2 explicitly guards `denom == 0`).
//!
//! # Examples
//!
//! ```
//! use aplib::{ApFixed, ApUint};
//!
//! let a: ApUint<12> = ApUint::new(4000);
//! let b: ApUint<12> = ApUint::new(200);
//! assert_eq!((a + b).to_u128(), (4000u128 + 200) % (1 << 12));
//!
//! // ap_fixed<32,17>: 17 integer bits (incl. sign), 15 fractional bits.
//! let x: ApFixed<32, 17> = ApFixed::from_f64(3.25);
//! let y: ApFixed<32, 17> = ApFixed::from_f64(-1.5);
//! assert_eq!((x * y).to_f64(), -4.875);
//! ```

#![allow(clippy::should_implement_trait)] // ap-arithmetic methods mirror the HLS API

mod apfixed;
mod apint;
mod bits;
mod dynfixed;
mod dynint;

pub use apfixed::{ApFixed, ApUfixed};
pub use apint::{ApInt, ApUint};
pub use bits::{mask, min_bits_signed, min_bits_unsigned, sign_extend, wrap_to_width};
pub use dynfixed::DynFixed;
pub use dynint::DynInt;

/// Maximum supported bit width for all arbitrary-precision types.
///
/// Xilinx `ap_int` supports up to 1024 bits by default; the Rosetta operators
/// exercised by the paper use at most 64 (`ap_fixed<64,40>` in Fig. 2), so a
/// 128-bit backing store is generous while staying cheap on the softcore.
pub const MAX_WIDTH: u32 = 128;
