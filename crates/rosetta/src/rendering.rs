//! 3D rendering: projection → rasterization → Z-buffer (paper Sec. 7.2).
//!
//! "A simple triangle rendering pipeline that includes projection to a 2D
//! viewpoint, rasterization, and Z-buffering. We decomposed by the pipeline
//! stages." One input item is a frame of `N` triangles with 16-bit
//! coordinates; the output is the `W×H` depth buffer.

use dfg::{Graph, GraphBuilder, Target};
use kir::types::Value;
use kir::{Expr, Kernel, KernelBuilder, Scalar, Stmt};

use crate::util::{rng, word};
use crate::{Bench, Scale};
use rand::Rng;

/// Depth value of an uncovered pixel (the Z-buffer clear value).
pub const Z_CLEAR: u32 = 0x00ff_ffff;
/// Depth emitted for fragments outside their triangle (never wins).
pub const Z_EMPTY: u32 = 0xffff_ffff;
/// Rasterizer window edge (fragments per triangle = WINDOW²).
pub const WINDOW: i64 = 8;

/// Frame geometry per scale: (triangles, width, height).
pub fn dims(scale: Scale) -> (i64, i64, i64) {
    match scale {
        Scale::Tiny => (4, 16, 16),
        Scale::Small => (16, 32, 32),
        Scale::Medium => (64, 32, 32),
    }
}

fn i32s() -> Scalar {
    Scalar::int(32)
}

/// Projection: drop the per-vertex depth to a face depth.
///
/// In: 9 words per triangle (x,y,z × 3). Out: 7 words (x,y × 3, z̄).
fn projection_kernel(n_tri: i64) -> Kernel {
    let mut b = KernelBuilder::new("projection")
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32));
    for v in ["x0", "y0", "z0", "x1", "y1", "z1", "x2", "y2", "z2"] {
        b = b.local(v, i32s());
    }
    b.body([Stmt::for_pipelined(
        "t",
        0..n_tri,
        [
            Stmt::read("x0", "in"),
            Stmt::read("y0", "in"),
            Stmt::read("z0", "in"),
            Stmt::read("x1", "in"),
            Stmt::read("y1", "in"),
            Stmt::read("z1", "in"),
            Stmt::read("x2", "in"),
            Stmt::read("y2", "in"),
            Stmt::read("z2", "in"),
            Stmt::write("out", Expr::var("x0")),
            Stmt::write("out", Expr::var("y0")),
            Stmt::write("out", Expr::var("x1")),
            Stmt::write("out", Expr::var("y1")),
            Stmt::write("out", Expr::var("x2")),
            Stmt::write("out", Expr::var("y2")),
            Stmt::write(
                "out",
                Expr::var("z0")
                    .add(Expr::var("z1"))
                    .add(Expr::var("z2"))
                    .div(Expr::cint(3)),
            ),
        ],
    )])
    .build()
    .expect("projection kernel is well-formed")
}

/// Rasterization over an 8×8 window anchored at the triangle's bbox min.
///
/// In: 7 words per triangle. Out: 2 words per window pixel (pos, z).
fn raster_kernel(n_tri: i64, w: i64, h: i64) -> Kernel {
    let v = Expr::var;
    let c = Expr::cint;
    let mut b = KernelBuilder::new("rasterization")
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32));
    for name in [
        "x0", "y0", "x1", "y1", "x2", "y2", "z", "minx", "miny", "x", "y", "e0", "e1", "e2",
        "area", "inside",
    ] {
        b = b.local(name, i32s());
    }
    // Edge function e(a,b,p) = (bx-ax)*(py-ay) - (by-ay)*(px-ax)
    let edge = |ax: &'static str, ay: &'static str, bx: &'static str, by: &'static str| {
        v(bx)
            .sub(v(ax))
            .mul(v("y").sub(v(ay)))
            .sub(v(by).sub(v(ay)).mul(v("x").sub(v(ax))))
            .cast(i32s())
    };
    let per_pixel = vec![
        Stmt::assign("x", v("minx").add(v("px"))),
        Stmt::assign("y", v("miny").add(v("py"))),
        Stmt::assign("e0", edge("x0", "y0", "x1", "y1")),
        Stmt::assign("e1", edge("x1", "y1", "x2", "y2")),
        Stmt::assign("e2", edge("x2", "y2", "x0", "y0")),
        // Orient consistently: flip signs when the triangle is clockwise.
        Stmt::if_then(
            v("area").lt(c(0)),
            [
                Stmt::assign("e0", v("e0").neg()),
                Stmt::assign("e1", v("e1").neg()),
                Stmt::assign("e2", v("e2").neg()),
            ],
        ),
        Stmt::assign(
            "inside",
            v("e0")
                .ge(c(0))
                .land(v("e1").ge(c(0)))
                .land(v("e2").ge(c(0)))
                .land(v("x").lt(c(w)))
                .land(v("y").lt(c(h)))
                .land(v("area").ne(c(0)))
                .cast(i32s()),
        ),
        // pos is always in range (clamped by the inside test's w/h guard;
        // outside pixels carry pos 0 with a losing depth).
        Stmt::write(
            "out",
            v("inside")
                .select(v("y").mul(c(w)).add(v("x")), c(0))
                .cast(Scalar::uint(32)),
        ),
        Stmt::write(
            "out",
            v("inside")
                .select(v("z"), Expr::cint_ty(Z_EMPTY as i128, Scalar::uint(32)))
                .cast(Scalar::uint(32)),
        ),
    ];
    b.body([Stmt::for_loop(
        "t",
        0..n_tri,
        [
            Stmt::read("x0", "in"),
            Stmt::read("y0", "in"),
            Stmt::read("x1", "in"),
            Stmt::read("y1", "in"),
            Stmt::read("x2", "in"),
            Stmt::read("y2", "in"),
            Stmt::read("z", "in"),
            Stmt::assign("minx", v("x0").min(v("x1")).min(v("x2"))),
            Stmt::assign("miny", v("y0").min(v("y1")).min(v("y2"))),
            Stmt::assign(
                "area",
                v("x1")
                    .sub(v("x0"))
                    .mul(v("y2").sub(v("y0")))
                    .sub(v("y1").sub(v("y0")).mul(v("x2").sub(v("x0"))))
                    .cast(i32s()),
            ),
            Stmt::for_loop(
                "py",
                0..WINDOW,
                [Stmt::for_pipelined("px", 0..WINDOW, per_pixel)],
            ),
        ],
    )])
    .build()
    .expect("rasterization kernel is well-formed")
}

/// Builds the rendering graph for `n_tri` triangles on a `w×h` frame.
pub fn graph(n_tri: i64, w: i64, h: i64) -> Graph {
    let mut b = GraphBuilder::new("rendering");
    let proj = b.add("projection", projection_kernel(n_tri), Target::hw_auto());
    let rast = b.add(
        "rasterization",
        raster_kernel(n_tri, w, h),
        Target::hw_auto(),
    );
    let zbuf = b.add("zbuffer", zbuffer_kernel(n_tri, w, h), Target::hw_auto());
    b.ext_input("Input_1", proj, "in");
    b.connect("proj2rast", proj, "out", rast, "in");
    b.connect("rast2zbuf", rast, "out", zbuf, "in");
    b.ext_output("Output_1", zbuf, "out");
    b.build().expect("rendering graph is well-formed")
}

/// Z-buffering: depth test into a `W×H` frame, then frame output.
///
/// In: 2 words per fragment. Out: the `w*h`-word depth frame.
fn zbuffer_kernel(n_tri: i64, w: i64, h: i64) -> Kernel {
    let v = Expr::var;
    let frags = WINDOW * WINDOW;
    KernelBuilder::new("zbuffer")
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("pos", i32s())
        .local("z", Scalar::uint(32))
        .array("zbuf", Scalar::uint(32), (w * h) as u64)
        .body([
            Stmt::for_pipelined(
                "i",
                0..w * h,
                [Stmt::store(
                    "zbuf",
                    v("i"),
                    Expr::cint_ty(Z_CLEAR as i128, Scalar::uint(32)),
                )],
            ),
            Stmt::for_loop(
                "t",
                0..n_tri,
                [Stmt::for_pipelined(
                    "p",
                    0..frags,
                    [
                        Stmt::read("pos", "in"),
                        Stmt::read("z", "in"),
                        Stmt::if_then(
                            v("z").lt(Expr::index("zbuf", v("pos"))),
                            [Stmt::store("zbuf", v("pos"), v("z"))],
                        ),
                    ],
                )],
            ),
            Stmt::for_pipelined(
                "i",
                0..w * h,
                [Stmt::write("out", Expr::index("zbuf", v("i")))],
            ),
        ])
        .build()
        .expect("zbuffer kernel is well-formed")
}

/// Generates a random frame of triangles (9 words each).
pub fn workload(seed: u64, n_tri: i64, w: i64, h: i64) -> Vec<Value> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n_tri as usize * 9);
    for _ in 0..n_tri {
        // Anchor plus small extents keeps bboxes within the 8×8 window.
        let ax = r.gen_range(0..w - WINDOW) as u32;
        let ay = r.gen_range(0..h - WINDOW) as u32;
        for _ in 0..3 {
            out.push(word(ax + r.gen_range(0..WINDOW as u32)));
            out.push(word(ay + r.gen_range(0..WINDOW as u32)));
            out.push(word(r.gen_range(1..Z_CLEAR / 2)));
        }
    }
    out
}

/// Independent plain-Rust golden model of the whole pipeline.
pub fn golden(input_words: &[u32], n_tri: i64, w: i64, h: i64) -> Vec<u32> {
    let mut zbuf = vec![Z_CLEAR; (w * h) as usize];
    for t in 0..n_tri as usize {
        let tri = &input_words[t * 9..t * 9 + 9];
        let (x0, y0, z0) = (tri[0] as i64, tri[1] as i64, tri[2] as i64);
        let (x1, y1, z1) = (tri[3] as i64, tri[4] as i64, tri[5] as i64);
        let (x2, y2, z2) = (tri[6] as i64, tri[7] as i64, tri[8] as i64);
        let z = ((z0 + z1 + z2) / 3) as u32;
        let minx = x0.min(x1).min(x2);
        let miny = y0.min(y1).min(y2);
        let area = (x1 - x0) * (y2 - y0) - (y1 - y0) * (x2 - x0);
        for py in 0..WINDOW {
            for px in 0..WINDOW {
                let (x, y) = (minx + px, miny + py);
                let mut e0 = (x1 - x0) * (y - y0) - (y1 - y0) * (x - x0);
                let mut e1 = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1);
                let mut e2 = (x0 - x2) * (y - y2) - (y0 - y2) * (x - x2);
                if area < 0 {
                    e0 = -e0;
                    e1 = -e1;
                    e2 = -e2;
                }
                let inside = e0 >= 0 && e1 >= 0 && e2 >= 0 && x < w && y < h && area != 0;
                if inside {
                    let pos = (y * w + x) as usize;
                    if z < zbuf[pos] {
                        zbuf[pos] = z;
                    }
                }
            }
        }
    }
    zbuf
}

/// Builds the benchmark at a scale.
pub fn bench(scale: Scale) -> Bench {
    let (n, w, h) = dims(scale);
    Bench {
        name: "3D Rendering",
        graph: graph(n, w, h),
        inputs: vec![("Input_1".into(), workload(0x3d, n, w, h))],
        items: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::unwords;

    #[test]
    fn matches_independent_golden_model() {
        let (n, w, h) = dims(Scale::Tiny);
        let b = bench(Scale::Tiny);
        let input = unwords(&b.inputs[0].1);
        let out = b.run_functional();
        let got = unwords(&out["Output_1"]);
        assert_eq!(got, golden(&input, n, w, h));
    }

    #[test]
    fn some_pixels_are_covered() {
        let b = bench(Scale::Tiny);
        let out = b.run_functional();
        let frame = unwords(&out["Output_1"]);
        let covered = frame.iter().filter(|&&z| z != Z_CLEAR).count();
        assert!(covered > 0, "workload must rasterize something");
        assert!(covered < frame.len(), "and not everything");
    }

    #[test]
    fn token_counts_are_static() {
        let (n, w, h) = dims(Scale::Tiny);
        let b = bench(Scale::Tiny);
        let (_, stats) = dfg::run_graph(&b.graph, &b.input_refs()).unwrap();
        // proj->rast carries 7 words/tri; rast->zbuf 2 per window pixel.
        assert_eq!(stats.edge_tokens[0], n as u64 * 7);
        assert_eq!(
            stats.edge_tokens[1],
            n as u64 * (WINDOW * WINDOW) as u64 * 2
        );
        let _ = (w, h);
    }
}
