//! Micro-benchmark: single-page hot-swap vs full-app reload under the
//! multi-tenant runtime (the Sec. 9 serving story).
//!
//! Two costs are compared. The *virtual* downtime — what the device model
//! charges for reloading one page and re-sending its config packets versus
//! replaying every LoadOp of the app — is printed once up front. The
//! Criterion timings then measure the *host-side* cost of performing each
//! operation (recompile-one-operator + swap vs evict + re-admit).
//!
//! `cargo bench -p pld-bench --bench hot_swap`

use criterion::{criterion_group, criterion_main, Criterion};
use dfg::{Graph, GraphBuilder, Target};
use fabric::Floorplan;
use kir::{Expr, KernelBuilder, Scalar, Stmt};
use pld::{BuildCache, CompileOptions, OptLevel};
use pld_runtime::Runtime;

const N_OPS: usize = 4;

fn stage(name: &str, addend: i64) -> kir::Kernel {
    KernelBuilder::new(name)
        .input("in", Scalar::uint(32))
        .output("out", Scalar::uint(32))
        .local("x", Scalar::uint(32))
        .body([Stmt::for_pipelined(
            "i",
            0..8,
            [
                Stmt::read("x", "in"),
                Stmt::write("out", Expr::var("x").add(Expr::cint(addend))),
            ],
        )])
        .build()
        .expect("kernel is well-formed")
}

/// A linear softcore pipeline; optionally pin the last operator to `pin`
/// (the one-pragma edit whose swap touches exactly one page).
fn pipeline(pin_last: Option<u32>) -> Graph {
    let mut b = GraphBuilder::new("pipe");
    let ids: Vec<_> = (0..N_OPS)
        .map(|i| {
            let target = match pin_last {
                Some(p) if i == N_OPS - 1 => Target::riscv(p),
                _ => Target::riscv_auto(),
            };
            b.add(
                format!("s{i}"),
                stage(&format!("s{i}"), i as i64 + 1),
                target,
            )
        })
        .collect();
    b.ext_input("Input_1", ids[0], "in");
    for (i, w) in ids.windows(2).enumerate() {
        b.connect(format!("l{i}"), w[0], "out", w[1], "in");
    }
    b.ext_output("Output_1", ids[N_OPS - 1], "out");
    b.build().expect("graph is well-formed")
}

/// A free page the auto assignment did not use, to pin the edit onto.
fn spare_page(app: &pld::CompiledApp) -> u32 {
    let homes: Vec<u32> = app
        .operators
        .iter()
        .filter_map(|o| o.page.map(|p| p.0))
        .collect();
    (0..Floorplan::u50().pages.len() as u32)
        .rev()
        .find(|p| !homes.contains(p))
        .expect("a 4-op app leaves spare pages")
}

fn bench_hot_swap(c: &mut Criterion) {
    let opts = CompileOptions::new(OptLevel::O0);

    // One-shot: print the device model's downtime verdict.
    {
        let mut cache = BuildCache::new();
        let app = cache.compile(&pipeline(None), &opts).expect("compiles");
        let spare = spare_page(&app);
        let mut rt = Runtime::new(Floorplan::u50());
        let id = rt.submit("pipe", app).expect("queue empty");
        rt.poll();
        let report = rt
            .hot_swap(id, &pipeline(Some(spare)), &mut cache, &opts)
            .expect("swap succeeds");
        println!(
            "virtual downtime: hot swap {:.2} us ({} page, {} packets) vs full reload {:.2} us ({:.1}x)",
            report.downtime_seconds * 1e6,
            report.swapped_pages.len(),
            report.link_packets,
            report.full_reload_seconds * 1e6,
            report.full_reload_seconds / report.downtime_seconds.max(1e-12)
        );
    }

    let mut group = c.benchmark_group("hot_swap_vs_reload");
    group.sample_size(10);

    group.bench_function("hot_swap_one_page", |b| {
        let mut cache = BuildCache::new();
        let app = cache.compile(&pipeline(None), &opts).expect("compiles");
        let spare = spare_page(&app);
        let mut rt = Runtime::new(Floorplan::u50());
        let id = rt.submit("pipe", app).expect("queue empty");
        rt.poll();
        let (home, pinned) = (pipeline(None), pipeline(Some(spare)));
        let mut flip = false;
        b.iter(|| {
            // Alternate pin <-> auto: every swap recompiles exactly one
            // operator and reloads exactly one page.
            flip = !flip;
            let g = if flip { &pinned } else { &home };
            rt.hot_swap(id, g, &mut cache, &opts)
                .expect("swap succeeds")
        })
    });

    group.bench_function("full_app_reload", |b| {
        let mut cache = BuildCache::new();
        let app = cache.compile(&pipeline(None), &opts).expect("compiles");
        let mut rt = Runtime::new(Floorplan::u50());
        let mut id = rt.submit("pipe", app.clone()).expect("queue empty");
        rt.poll();
        b.iter(|| {
            rt.evict(id).expect("resident");
            id = rt.submit("pipe", app.clone()).expect("queue empty");
            rt.poll()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hot_swap);
criterion_main!(benches);
