//! Property tests: the linking network must never lose, duplicate or
//! reorder tokens of a stream, under arbitrary traffic patterns — the
//! delivery guarantees the latency-insensitive abstraction rests on
//! (paper Secs. 3.2, 4.3).

use noc::{BftNoc, PortAddr};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary point-to-point link sets with arbitrary per-stream loads:
    /// every injected word arrives exactly once, in per-stream order, at the
    /// right port — even with hotspots and deflections.
    #[test]
    fn random_traffic_delivers_everything_in_order(
        n_exp in 2u32..=5,
        links in proptest::collection::vec((any::<u16>(), any::<u16>(), 0u8..4), 1..12),
        loads in proptest::collection::vec(1u32..40, 1..12),
    ) {
        let n = 1usize << n_exp;
        let mut net = BftNoc::new(n, 4, 64);
        // Each source leaf drives at most one stream; destinations may
        // collide freely (hotspots allowed).
        let mut sources: Vec<(usize, PortAddr)> = Vec::new();
        for (src, dst, port) in links {
            let src = (src as usize) % n;
            let dst = (dst as usize) % n;
            if src == dst || sources.iter().any(|(s, _)| *s == src) {
                continue;
            }
            let addr = PortAddr { leaf: dst as u16, port };
            net.set_dest(src, 0, addr);
            sources.push((src, addr));
        }
        prop_assume!(!sources.is_empty());

        // Interleave injection with stepping; tag words with (src, seq).
        let mut remaining: Vec<u32> = sources
            .iter()
            .zip(loads.iter().cycle())
            .map(|(_, &l)| l)
            .collect();
        let mut sent: Vec<u32> = vec![0; sources.len()];
        let mut total = 0u64;
        while remaining.iter().any(|&r| r > 0) {
            for (i, (src, _)) in sources.iter().enumerate() {
                if remaining[i] > 0 {
                    let word = ((*src as u32) << 16) | sent[i];
                    if net.inject(*src, 0, word).is_ok() {
                        remaining[i] -= 1;
                        sent[i] += 1;
                        total += 1;
                    }
                }
            }
            net.step();
        }
        net.drain(200_000);
        prop_assert_eq!(net.stats().delivered, total);

        // Drain every receive queue once, preserving arrival order.
        let mut arrived: HashMap<(u16, u8), Vec<u32>> = HashMap::new();
        for (_, addr) in &sources {
            let entry = arrived.entry((addr.leaf, addr.port)).or_default();
            if entry.is_empty() {
                while let Some(w) = net.try_recv(addr.leaf as usize, addr.port) {
                    entry.push(w);
                }
            }
        }
        // Per-stream subsequences are exactly 0..sent, in order.
        for (i, (src, addr)) in sources.iter().enumerate() {
            let words = &arrived[&(addr.leaf, addr.port)];
            let seqs: Vec<u32> = words
                .iter()
                .filter(|w| (*w >> 16) as usize == *src)
                .map(|w| w & 0xffff)
                .collect();
            prop_assert_eq!(seqs, (0..sent[i]).collect::<Vec<_>>(), "stream from {}", src);
        }
    }

    /// Sequentially applied configuration packets always land, and the
    /// linker's last write per register wins (the loader drains the network
    /// between writes, as the generated driver does).
    #[test]
    fn config_packets_always_apply(
        writes in proptest::collection::vec((0u16..8, 0u8..4, 0u16..8, 0u8..4), 1..20),
    ) {
        let mut net = BftNoc::new(8, 4, 64);
        for (dst, reg, leaf, port) in &writes {
            net.send_config(7, *dst, *reg, PortAddr { leaf: *leaf, port: *port })
                .expect("queue has room after drain");
            net.drain(10_000);
        }
        prop_assert_eq!(net.stats().config_writes, writes.len() as u64);
        let mut last = HashMap::new();
        for (dst, reg, leaf, port) in &writes {
            last.insert((*dst, *reg), PortAddr { leaf: *leaf, port: *port });
        }
        for ((dst, reg), addr) in last {
            prop_assert_eq!(net.leaf(dst as usize).dest(reg as usize), Some(addr));
        }
    }
}
