//! The butterfly-fat-tree network: topology and cycle stepping.

use std::fmt;

use crate::leaf::{LeafInterface, PortAddr};
use crate::switch::{arbitrate, Flit, FlitKind};

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NocStats {
    /// Data flits injected into the network.
    pub injected: u64,
    /// Data flits delivered to their destination port.
    pub delivered: u64,
    /// Configuration writes applied.
    pub config_writes: u64,
    /// Deflection events across all switches.
    pub deflections: u64,
    /// Sum of per-flit latencies (inject → deliver), in cycles.
    pub total_latency: u64,
    /// Worst single-flit latency.
    pub max_latency: u64,
}

impl NocStats {
    /// Mean delivery latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }
}

/// Injection failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The output stream has no destination configured.
    #[allow(missing_docs)]
    NotLinked { leaf: usize, stream: usize },
    /// The leaf's outgoing FIFO is full (backpressure).
    #[allow(missing_docs)]
    Backpressure { leaf: usize },
    /// The leaf's injection-credit budget is exhausted — a QoS throttle,
    /// not congestion. Credits return via [`BftNoc::add_inject_credits`]
    /// (or the budget is lifted with [`BftNoc::set_inject_budget`]).
    #[allow(missing_docs)]
    Throttled { leaf: usize },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::NotLinked { leaf, stream } => {
                write!(
                    f,
                    "leaf {leaf} stream {stream} has no destination configured"
                )
            }
            InjectError::Backpressure { leaf } => {
                write!(f, "leaf {leaf} outgoing FIFO full")
            }
            InjectError::Throttled { leaf } => {
                write!(f, "leaf {leaf} injection budget exhausted (QoS throttle)")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// A cycle-level butterfly-fat-tree NoC with deflection-routed single-flit
/// packets (the paper's Hoplite BFT, Sec. 4.3).
///
/// Stepping cost is proportional to the number of flits in flight, not the
/// number of switches: occupancy lists (`up_occ`/`down_occ`, plus
/// `queued_leaves` for pending injections) identify exactly the switches
/// and leaves with work each cycle, so an idle or lightly-loaded network of
/// thousands of leaves steps in near-constant time while producing
/// cycle-for-cycle identical behavior to the dense sweep.
#[derive(Debug)]
pub struct BftNoc {
    n_leaves: usize,
    levels: usize,
    leaves: Vec<LeafInterface>,
    /// `up[l][i]`: flit in flight upward from node `i` of level `l`.
    up: Vec<Vec<Option<Flit>>>,
    /// `down[l][i]`: flit in flight downward to node `i` of level `l`.
    down: Vec<Vec<Option<Flit>>>,
    /// Occupied indices of `up[l]` / `down[l]`, duplicate-free.
    up_occ: Vec<Vec<usize>>,
    down_occ: Vec<Vec<usize>>,
    /// Double-buffer scratch reused across steps; all-`None` (and for the
    /// occupancy lists, all-empty) between calls.
    up_next: Vec<Vec<Option<Flit>>>,
    down_next: Vec<Vec<Option<Flit>>>,
    up_occ_next: Vec<Vec<usize>>,
    down_occ_next: Vec<Vec<usize>>,
    /// Leaves whose out FIFO is non-empty, duplicate-free (`has_queued` is
    /// the membership bitmap).
    queued_leaves: Vec<usize>,
    has_queued: Vec<bool>,
    /// Flits inside the tree (sum of occupancy list lengths).
    tree_flits: usize,
    /// Flits waiting in leaf out FIFOs.
    queued_flits: usize,
    /// Per-step scratch for active switch / leaf index sets.
    active: Vec<usize>,
    inputs_scratch: Vec<Flit>,
    cycle: u64,
    stats: NocStats,
}

impl BftNoc {
    /// Creates a network for `clients` leaves (rounded up to a power of two),
    /// each leaf with `ports` output streams / input ports and an output
    /// FIFO of `queue_depth` flits.
    ///
    /// # Panics
    ///
    /// Panics if `clients < 2`.
    pub fn new(clients: usize, ports: usize, queue_depth: usize) -> BftNoc {
        assert!(clients >= 2, "a linking network needs at least two clients");
        let n_leaves = clients.next_power_of_two();
        let levels = n_leaves.trailing_zeros() as usize;
        let slots = || -> Vec<Vec<Option<Flit>>> {
            (0..levels).map(|l| vec![None; n_leaves >> l]).collect()
        };
        let occ = || -> Vec<Vec<usize>> { (0..levels).map(|_| Vec::new()).collect() };
        BftNoc {
            n_leaves,
            levels,
            leaves: (0..n_leaves)
                .map(|_| LeafInterface::new(ports, ports, queue_depth))
                .collect(),
            up: slots(),
            down: slots(),
            up_next: slots(),
            down_next: slots(),
            up_occ: occ(),
            down_occ: occ(),
            up_occ_next: occ(),
            down_occ_next: occ(),
            queued_leaves: Vec::new(),
            has_queued: vec![false; n_leaves],
            tree_flits: 0,
            queued_flits: 0,
            active: Vec::new(),
            inputs_scratch: Vec::with_capacity(3),
            cycle: 0,
            stats: NocStats::default(),
        }
    }

    /// Records that `leaf`'s out FIFO gained a flit.
    fn note_queued(&mut self, leaf: usize) {
        self.queued_flits += 1;
        if !self.has_queued[leaf] {
            self.has_queued[leaf] = true;
            self.queued_leaves.push(leaf);
        }
    }

    /// Number of leaves (power of two).
    pub fn leaf_count(&self) -> usize {
        self.n_leaves
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Immutable access to a leaf interface.
    pub fn leaf(&self, leaf: usize) -> &LeafInterface {
        &self.leaves[leaf]
    }

    /// Directly writes a leaf's destination register (loader-side linking).
    pub fn set_dest(&mut self, leaf: usize, stream: usize, addr: PortAddr) {
        self.leaves[leaf].set_dest(stream, addr);
    }

    /// Tears down one stream's route, leaving every other register intact —
    /// the unlink half of the paper's re-linking story, used when a page's
    /// tenant is evicted or hot-swapped.
    pub fn clear_dest(&mut self, leaf: usize, stream: usize) {
        self.leaves[leaf].clear_dest(stream);
    }

    /// Sends an in-band configuration packet from `src_leaf` that, on
    /// delivery, points `dest_leaf`'s register `reg` at `addr` — the paper's
    /// "few packets per page to link it into the network".
    ///
    /// # Errors
    ///
    /// Returns [`InjectError::Backpressure`] when the source FIFO is full.
    pub fn send_config(
        &mut self,
        src_leaf: usize,
        dest_leaf: u16,
        reg: u8,
        addr: PortAddr,
    ) -> Result<(), InjectError> {
        let flit = Flit {
            dest_leaf,
            dest_port: reg,
            src_leaf: src_leaf as u16,
            seq: 0, // config writes apply on arrival; the loader orders them
            payload: addr.encode(),
            kind: FlitKind::Config,
            birth: self.cycle,
        };
        if !self.leaves[src_leaf].out_queue.try_push(flit) {
            return Err(InjectError::Backpressure { leaf: src_leaf });
        }
        self.note_queued(src_leaf);
        Ok(())
    }

    /// Injects one data word from `leaf`'s output `stream`.
    ///
    /// The lookup/budget/stamp work happens inside the leaf interface
    /// ([`LeafInterface::inject_local`]); this wrapper immediately folds the
    /// new flit into the network's global bookkeeping.
    ///
    /// # Errors
    ///
    /// See [`InjectError`].
    pub fn inject(&mut self, leaf: usize, stream: usize, word: u32) -> Result<(), InjectError> {
        let now = self.cycle;
        self.leaves[leaf].inject_local(leaf, stream, word, now)?;
        self.commit_injections(leaf);
        Ok(())
    }

    /// Folds flits injected locally into `leaf` (via
    /// [`LeafInterface::inject_local`] while the leaf was swapped out of the
    /// network) into the global scheduler bookkeeping: queued-flit counts,
    /// the queued-leaf set, and injection stats. The parallel cosim engine
    /// calls this at each barrier, in ascending leaf order, after swapping
    /// worker-held leaves back in. Idempotent when nothing is pending.
    pub fn commit_injections(&mut self, leaf: usize) {
        let n = self.leaves[leaf].take_pending_injects();
        if n > 0 {
            self.stats.injected += n as u64;
            self.queued_flits += n as usize;
            if !self.has_queued[leaf] {
                self.has_queued[leaf] = true;
                self.queued_leaves.push(leaf);
            }
        }
    }

    /// Swaps the leaf interface at `leaf` with `other`. The parallel cosim
    /// engine uses this to hand disjoint leaves to worker threads between
    /// barriers (leaving a placeholder behind) and to return them; the
    /// network must not be stepped while a real leaf is swapped out.
    pub fn swap_leaf(&mut self, leaf: usize, other: &mut LeafInterface) {
        std::mem::swap(&mut self.leaves[leaf], other);
    }

    /// Exclusive access to the leaf interface at `leaf` — the zero-copy
    /// sibling of [`swap_leaf`](Self::swap_leaf) for the cosim engine's
    /// inline (no-worker) mode. Local injections made through it must be
    /// folded in with [`commit_injections`](Self::commit_injections) before
    /// the next [`step`](Self::step), exactly as with a swapped-out leaf.
    pub fn leaf_mut(&mut self, leaf: usize) -> &mut LeafInterface {
        &mut self.leaves[leaf]
    }

    /// Sets (or with `None` lifts) a leaf's data-injection credit budget —
    /// the QoS throttling hook. A budget of `Some(0)` blocks data injection
    /// outright until credits are added; config packets are unaffected.
    pub fn set_inject_budget(&mut self, leaf: usize, budget: Option<u32>) {
        self.leaves[leaf].inject_budget = budget;
    }

    /// Remaining injection credits at `leaf` (`None` = unthrottled).
    pub fn inject_budget(&self, leaf: usize) -> Option<u32> {
        self.leaves[leaf].inject_budget
    }

    /// Grants `credits` more data injections to a throttled leaf (no-op on
    /// an unthrottled one) — the refill half of a token-rate fair-share.
    pub fn add_inject_credits(&mut self, leaf: usize, credits: u32) {
        if let Some(budget) = &mut self.leaves[leaf].inject_budget {
            *budget = budget.saturating_add(credits);
        }
    }

    /// Data injections refused by the QoS throttle since bring-up, summed
    /// across all leaves.
    pub fn throttled_injects(&self) -> u64 {
        self.leaves.iter().map(|l| l.throttled_injects).sum()
    }

    /// Pops a delivered word from `leaf`'s input `port`.
    pub fn try_recv(&mut self, leaf: usize, port: u8) -> Option<u32> {
        self.leaves[leaf].try_recv(port)
    }

    /// Words pending on `leaf`'s input `port`.
    pub fn pending(&self, leaf: usize, port: u8) -> usize {
        self.leaves[leaf].pending(port)
    }

    /// Monotone count of data deliveries into `leaf`'s input ports. While
    /// this is unchanged, no `pending` count on the leaf can have grown.
    pub fn rx_events(&self, leaf: usize) -> u64 {
        self.leaves[leaf].rx_seq
    }

    /// Monotone count of uplink slots freed from `leaf`'s out FIFO. While
    /// this is unchanged, a full out FIFO is still full.
    pub fn tx_events(&self, leaf: usize) -> u64 {
        self.leaves[leaf].tx_seq
    }

    /// Whether any flit is still in flight inside the tree.
    pub fn in_flight(&self) -> bool {
        self.tree_flits > 0 || self.queued_flits > 0
    }

    /// Flits currently anywhere in the network: tree slots plus leaf out
    /// FIFOs.
    pub fn active_flits(&self) -> usize {
        self.tree_flits + self.queued_flits
    }

    /// Flits currently inside the switch tree (excluding leaf out FIFOs).
    pub fn tree_flits(&self) -> usize {
        self.tree_flits
    }

    /// Earliest birth cycle among the flits at the front of any leaf's out
    /// FIFO (`None` when nothing is queued). Injection order makes each
    /// front flit its leaf's earliest, so this is the next cycle at which
    /// any queued flit can possibly enter the tree — with an empty tree,
    /// every step before it is a no-op.
    pub fn next_ripe_birth(&self) -> Option<u64> {
        self.queued_leaves
            .iter()
            .filter_map(|&i| self.leaves[i].out_queue.peek().map(|f| f.birth))
            .min()
    }

    /// Whether no queued flit is eligible for uplink entry this cycle —
    /// either nothing is queued, or every front flit is future-born
    /// (parallel cosim windows stamp flits with the injecting core's local
    /// cycle, which may run ahead of the network clock).
    fn no_ripe_queued(&self) -> bool {
        self.queued_flits == 0 || self.next_ripe_birth().is_none_or(|b| b > self.cycle)
    }

    /// Advances the clock by `n` cycles without stepping. Exact only while
    /// every skipped [`step`](Self::step) would have been a no-op: the
    /// switch tree is empty and no queued flit ripens before the target
    /// cycle (debug-asserted). The cosim driver uses this to jump its loop
    /// clock over idle stretches, so that flit birth cycles (stamped in
    /// loop time) stay comparable with the network clock that gates uplink
    /// entry.
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(
            self.tree_flits == 0
                && self
                    .next_ripe_birth()
                    .is_none_or(|b| b >= self.cycle.saturating_add(n)),
            "idle clock skip over a movable flit"
        );
        self.cycle += n;
    }

    /// Advances the network by one clock cycle.
    ///
    /// Only switches with at least one input flit and leaves with incoming
    /// or queued traffic are visited; an idle network advances in O(1). The
    /// flit movement itself is identical to a dense sweep over every switch,
    /// because a switch with no inputs produces no outputs.
    pub fn step(&mut self) {
        // Unripe queued flits (birth in the future) cannot pop this cycle,
        // so for fast-path purposes they are as good as absent.
        if self.tree_flits == 0 && self.no_ripe_queued() {
            self.cycle += 1;
            return;
        }
        // A lone flit with no poppable out FIFOs — the dominant busy case
        // on a lightly loaded tree — moves one uncontended hop without the
        // full sweep machinery.
        if self.tree_flits == 1 && self.no_ripe_queued() && self.levels > 0 {
            self.step_single_flit();
            self.cycle += 1;
            return;
        }
        let levels = self.levels;
        let mut next_up = std::mem::take(&mut self.up_next);
        let mut next_down = std::mem::take(&mut self.down_next);
        let mut next_up_occ = std::mem::take(&mut self.up_occ_next);
        let mut next_down_occ = std::mem::take(&mut self.down_occ_next);
        let mut active = std::mem::take(&mut self.active);

        // Switches: level-l switch index s has children at level l-1 nodes
        // (2s, 2s+1); its own "node index" at level l is s. The switch at
        // the top (l == levels) is the root.
        let mut inputs = std::mem::take(&mut self.inputs_scratch);
        for l in 1..=levels {
            // A level with no upward or downward flits has no active
            // switches — skip the set construction entirely.
            if self.up_occ[l - 1].is_empty() && (l == levels || self.down_occ[l].is_empty()) {
                continue;
            }
            active.clear();
            for &i in &self.up_occ[l - 1] {
                active.push(i / 2);
            }
            if l < levels {
                active.extend_from_slice(&self.down_occ[l]);
            }
            // Lightly-loaded cycles have one or two active switches; the
            // sort machinery costs more than it saves there.
            if active.len() > 1 {
                active.sort_unstable();
                active.dedup();
            }
            for &s in &active {
                if let Some(f) = self.up[l - 1][2 * s] {
                    inputs.push(f);
                }
                if let Some(f) = self.up[l - 1][2 * s + 1] {
                    inputs.push(f);
                }
                if l < levels {
                    if let Some(f) = self.down[l][s] {
                        inputs.push(f);
                    }
                }
                let lo = (s << l) as u16;
                let hi = ((s + 1) << l) as u16;
                let mid = lo + (1u16 << (l - 1));
                let has_up = l < levels;
                let (out, deflections) = arbitrate(&mut inputs, (lo, hi), mid, has_up);
                self.stats.deflections += deflections as u64;
                if out[0].is_some() {
                    next_down[l - 1][2 * s] = out[0];
                    next_down_occ[l - 1].push(2 * s);
                }
                if out[1].is_some() {
                    next_down[l - 1][2 * s + 1] = out[1];
                    next_down_occ[l - 1].push(2 * s + 1);
                }
                if has_up && out[2].is_some() {
                    next_up[l][s] = out[2];
                    next_up_occ[l].push(s);
                }
                inputs.clear();
            }
        }
        self.inputs_scratch = inputs;

        // Leaves: deliver incoming (bouncing mis-deflected flits back up),
        // then inject one flit onto the uplink if it is free. Only leaves
        // with a down flit or a non-empty out FIFO can do either.
        active.clear();
        active.extend_from_slice(&self.down_occ[0]);
        active.extend_from_slice(&self.queued_leaves);
        if active.len() > 1 {
            active.sort_unstable();
            active.dedup();
        }
        for &i in &active {
            let leaf = &mut self.leaves[i];
            if let Some(flit) = self.down[0][i] {
                if flit.dest_leaf as usize != i {
                    // Deflection routed this flit to the wrong leaf; the
                    // leaf interface turns it straight around (taking the
                    // uplink slot ahead of local injection). `birth` is
                    // preserved, so the eventual delivery latency still
                    // counts from first injection.
                    self.stats.deflections += 1;
                    next_up[0][i] = Some(flit);
                    next_up_occ[0].push(i);
                } else {
                    let latency = self.cycle.saturating_sub(flit.birth);
                    match flit.kind {
                        FlitKind::Data => {
                            leaf.deliver(flit.src_leaf, flit.dest_port, flit.seq, flit.payload);
                            leaf.rx_seq += 1;
                            self.stats.delivered += 1;
                            self.stats.total_latency += latency;
                            self.stats.max_latency = self.stats.max_latency.max(latency);
                        }
                        FlitKind::Config => {
                            leaf.apply_config(flit.dest_port, flit.payload);
                            self.stats.config_writes += 1;
                        }
                    }
                }
            }
            // Birth gating: a flit injected by a core running *ahead* of the
            // network clock (parallel cosim windows) carries its true birth
            // cycle and may not enter the tree before that cycle — exactly
            // when the serial schedule would have injected it. For flits
            // born at or before the current cycle (every flit outside the
            // parallel engine) this is the plain uplink pop.
            if next_up[0][i].is_none()
                && leaf.out_queue.peek().is_some_and(|f| f.birth <= self.cycle)
            {
                if let Some(flit) = leaf.out_queue.try_pop() {
                    next_up[0][i] = Some(flit);
                    next_up_occ[0].push(i);
                    self.queued_flits -= 1;
                    leaf.tx_seq += 1;
                }
            }
        }
        // Drop drained leaves from the queued set.
        let leaves = &self.leaves;
        let has_queued = &mut self.has_queued;
        self.queued_leaves.retain(|&i| {
            let keep = !leaves[i].out_queue.is_empty();
            if !keep {
                has_queued[i] = false;
            }
            keep
        });

        // Clear exactly the slots that were occupied, making the old arrays
        // clean scratch for the next step, then swap the double buffers.
        for l in 0..levels {
            for &i in &self.up_occ[l] {
                self.up[l][i] = None;
            }
            for &i in &self.down_occ[l] {
                self.down[l][i] = None;
            }
            self.up_occ[l].clear();
            self.down_occ[l].clear();
        }
        self.tree_flits = next_up_occ.iter().map(Vec::len).sum::<usize>()
            + next_down_occ.iter().map(Vec::len).sum::<usize>();
        self.up_next = std::mem::replace(&mut self.up, next_up);
        self.down_next = std::mem::replace(&mut self.down, next_down);
        self.up_occ_next = std::mem::replace(&mut self.up_occ, next_up_occ);
        self.down_occ_next = std::mem::replace(&mut self.down_occ, next_down_occ);
        self.active = active;
        self.cycle += 1;
    }

    /// Hops a lone in-flight flit toward delivery for as many consecutive
    /// cycles as the single-flit fast path stays valid, stopping at
    /// `limit`, at delivery, or one cycle before the earliest queued flit
    /// ripens. Returns the cycles advanced (0 when the fast path does not
    /// apply right now). Equivalent to calling [`step`](Self::step) that
    /// many times — each hop IS the single-flit body of `step` — but
    /// without per-cycle dispatch, so the driver can batch a flit's whole
    /// flight. During the batched stretch no delivery, pop, or event
    /// counter change can occur before the final hop, which is why the
    /// caller only needs to re-check its wake conditions once on return.
    pub fn run_lone_flit(&mut self, limit: u64) -> u64 {
        if self.levels == 0 {
            return 0;
        }
        // Queue membership can't change while we only hop the tree flit,
        // so the earliest ripening cycle is a constant for the whole run.
        let limit = match self.next_ripe_birth() {
            Some(b) if b <= self.cycle => return 0,
            Some(b) => limit.min(b),
            None => limit,
        };
        let start = self.cycle;
        while self.tree_flits == 1 && self.cycle < limit {
            self.step_single_flit();
            self.cycle += 1;
        }
        self.cycle - start
    }

    /// Moves the single in-flight flit one hop. With no other flit and no
    /// queued traffic there is no contention, so the move mirrors what the
    /// dense sweep would do — including root deflection and the wrong-leaf
    /// bounce — while touching only the slots involved.
    fn step_single_flit(&mut self) {
        // Locate the flit: exactly one occupancy list has one entry.
        let mut pos = None;
        for l in 0..self.levels {
            if let Some(&i) = self.up_occ[l].first() {
                pos = Some((true, l, i));
                break;
            }
            if let Some(&i) = self.down_occ[l].first() {
                pos = Some((false, l, i));
                break;
            }
        }
        let Some((is_up, l, i)) = pos else {
            debug_assert!(false, "tree_flits == 1 with empty occupancy");
            return;
        };
        if !is_up && l == 0 {
            // Arrival at leaf `i`.
            let flit = self.down[0][i].take().expect("occupancy list is exact");
            self.down_occ[0].clear();
            if flit.dest_leaf as usize != i {
                // Mis-deflected: bounce straight back up (uplink is free).
                self.stats.deflections += 1;
                self.up[0][i] = Some(flit);
                self.up_occ[0].push(i);
                return;
            }
            self.tree_flits = 0;
            let latency = self.cycle.saturating_sub(flit.birth);
            match flit.kind {
                FlitKind::Data => {
                    self.leaves[i].deliver(flit.src_leaf, flit.dest_port, flit.seq, flit.payload);
                    self.leaves[i].rx_seq += 1;
                    self.stats.delivered += 1;
                    self.stats.total_latency += latency;
                    self.stats.max_latency = self.stats.max_latency.max(latency);
                }
                FlitKind::Config => {
                    self.leaves[i].apply_config(flit.dest_port, flit.payload);
                    self.stats.config_writes += 1;
                }
            }
            return;
        }
        // Through a switch: an up flit at level `l` feeds the switch at
        // level `l + 1` above node `i`; a down flit at level `l >= 1` feeds
        // switch `(l, i)` itself.
        let (sl, s, flit) = if is_up {
            let f = self.up[l][i].take().expect("occupancy list is exact");
            self.up_occ[l].clear();
            (l + 1, i / 2, f)
        } else {
            let f = self.down[l][i].take().expect("occupancy list is exact");
            self.down_occ[l].clear();
            (l, i, f)
        };
        let lo = (s << sl) as u16;
        let hi = ((s + 1) << sl) as u16;
        let mid = lo + (1u16 << (sl - 1));
        if flit.dest_leaf >= lo && flit.dest_leaf < hi {
            let child = 2 * s + usize::from(flit.dest_leaf >= mid);
            self.down[sl - 1][child] = Some(flit);
            self.down_occ[sl - 1].push(child);
        } else if sl < self.levels {
            self.up[sl][s] = Some(flit);
            self.up_occ[sl].push(s);
        } else {
            // Out-of-range destination at the root: deflect down the left
            // child, as the general arbitration would.
            self.stats.deflections += 1;
            self.down[sl - 1][2 * s] = Some(flit);
            self.down_occ[sl - 1].push(2 * s);
        }
    }

    /// Steps until the network drains or `max_cycles` elapse; returns the
    /// cycles stepped.
    pub fn drain(&mut self, max_cycles: u64) -> u64 {
        let mut stepped = 0;
        while self.in_flight() && stepped < max_cycles {
            self.step();
            stepped += 1;
        }
        stepped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linked_net(n: usize) -> BftNoc {
        let mut net = BftNoc::new(n, 2, 64);
        for i in 0..net.leaf_count() {
            let dest = ((i + 1) % net.leaf_count()) as u16;
            net.set_dest(
                i,
                0,
                PortAddr {
                    leaf: dest,
                    port: 0,
                },
            );
        }
        net
    }

    #[test]
    fn single_flit_delivered() {
        let mut net = linked_net(8);
        net.inject(0, 0, 42).unwrap();
        net.drain(100);
        assert_eq!(net.try_recv(1, 0), Some(42));
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn inject_budget_throttles_data_but_not_config() {
        let mut net = linked_net(8);
        net.set_inject_budget(0, Some(2));
        assert_eq!(net.inject_budget(0), Some(2));
        net.inject(0, 0, 1).unwrap();
        net.inject(0, 0, 2).unwrap();
        assert_eq!(net.inject(0, 0, 3), Err(InjectError::Throttled { leaf: 0 }));
        assert_eq!(net.throttled_injects(), 1);
        // Config packets bypass the throttle: the control plane can still
        // re-link a starved tenant.
        net.send_config(0, 3, 1, PortAddr { leaf: 5, port: 0 })
            .unwrap();
        // Refill unblocks; lifting the budget removes the throttle entirely.
        net.add_inject_credits(0, 1);
        net.inject(0, 0, 3).unwrap();
        assert_eq!(net.inject_budget(0), Some(0));
        net.set_inject_budget(0, None);
        net.inject(0, 0, 4).unwrap();
        // Other leaves were never throttled.
        net.inject(1, 0, 9).unwrap();
        net.drain(1000);
        assert_eq!(net.stats().delivered, 5);
    }

    #[test]
    fn all_to_next_neighbour_delivers_everything_in_order() {
        let mut net = linked_net(16);
        for round in 0..20u32 {
            for leaf in 0..16 {
                net.inject(leaf, 0, round * 100 + leaf as u32).unwrap();
            }
            // Interleave stepping so FIFOs don't overflow.
            for _ in 0..4 {
                net.step();
            }
        }
        net.drain(10_000);
        assert_eq!(net.stats().delivered, 320);
        for leaf in 0..16usize {
            let src = (leaf + 15) % 16;
            for round in 0..20u32 {
                assert_eq!(
                    net.try_recv(leaf, 0),
                    Some(round * 100 + src as u32),
                    "leaf {leaf} round {round}"
                );
            }
        }
    }

    #[test]
    fn hotspot_traffic_still_delivers_all() {
        // Every leaf hammers leaf 0: deflection must not lose or duplicate.
        let mut net = BftNoc::new(8, 1, 256);
        for i in 1..8 {
            net.set_dest(i, 0, PortAddr { leaf: 0, port: 0 });
        }
        let mut sent = 0u64;
        for round in 0..50u32 {
            for leaf in 1..8usize {
                if net.inject(leaf, 0, round * 8 + leaf as u32).is_ok() {
                    sent += 1;
                }
            }
            net.step();
            net.step();
        }
        net.drain(20_000);
        assert_eq!(net.stats().delivered, sent);
        let mut got = 0;
        while net.try_recv(0, 0).is_some() {
            got += 1;
        }
        assert_eq!(got, sent);
        // Hotspot contention must cause deflections.
        assert!(net.stats().deflections > 0);
    }

    #[test]
    fn config_packets_relink_without_recompile() {
        let mut net = BftNoc::new(8, 2, 16);
        // Host (leaf 7) configures leaf 2's stream 1 to feed leaf 5 port 0.
        net.send_config(7, 2, 1, PortAddr { leaf: 5, port: 0 })
            .unwrap();
        net.drain(100);
        assert_eq!(net.stats().config_writes, 1);
        net.inject(2, 1, 777).unwrap();
        net.drain(100);
        assert_eq!(net.try_recv(5, 0), Some(777));
    }

    #[test]
    fn clear_dest_unlinks_one_stream_only() {
        let mut net = BftNoc::new(8, 2, 16);
        net.set_dest(2, 0, PortAddr { leaf: 5, port: 0 });
        net.set_dest(2, 1, PortAddr { leaf: 6, port: 0 });
        net.clear_dest(2, 0);
        assert_eq!(
            net.inject(2, 0, 1),
            Err(InjectError::NotLinked { leaf: 2, stream: 0 })
        );
        // The sibling stream and its route are untouched.
        net.inject(2, 1, 42).unwrap();
        net.drain(100);
        assert_eq!(net.try_recv(6, 0), Some(42));
        // A config packet re-establishes the cleared route.
        net.send_config(7, 2, 0, PortAddr { leaf: 3, port: 1 })
            .unwrap();
        net.drain(100);
        net.inject(2, 0, 7).unwrap();
        net.drain(100);
        assert_eq!(net.try_recv(3, 1), Some(7));
    }

    #[test]
    fn unlinked_stream_rejected() {
        let mut net = BftNoc::new(4, 1, 4);
        assert_eq!(
            net.inject(0, 0, 1),
            Err(InjectError::NotLinked { leaf: 0, stream: 0 })
        );
    }

    #[test]
    fn backpressure_when_fifo_full() {
        let mut net = BftNoc::new(4, 1, 2);
        net.set_dest(0, 0, PortAddr { leaf: 1, port: 0 });
        assert!(net.inject(0, 0, 1).is_ok());
        assert!(net.inject(0, 0, 2).is_ok());
        assert_eq!(
            net.inject(0, 0, 3),
            Err(InjectError::Backpressure { leaf: 0 })
        );
        net.drain(50);
        assert!(net.inject(0, 0, 3).is_ok());
    }

    #[test]
    fn latency_grows_with_distance() {
        // Leaves 0→1 share the level-1 switch; 0→15 crosses the root.
        let mut near = BftNoc::new(16, 1, 4);
        near.set_dest(0, 0, PortAddr { leaf: 1, port: 0 });
        near.inject(0, 0, 1).unwrap();
        near.drain(100);
        let near_lat = near.stats().max_latency;

        let mut far = BftNoc::new(16, 1, 4);
        far.set_dest(0, 0, PortAddr { leaf: 15, port: 0 });
        far.inject(0, 0, 1).unwrap();
        far.drain(100);
        let far_lat = far.stats().max_latency;
        assert!(far_lat > near_lat, "far {far_lat} vs near {near_lat}");
    }

    #[test]
    fn deflection_storm_latency_counts_from_first_inject() {
        // 2-leaf hot spot: both leaves stream to leaf 0, so the two uplinks
        // collide at the root every cycle and the loser deflects down to
        // leaf 1, bounces, and retries. If latency were measured from the
        // re-injection after a deflection, every delivery would read as a
        // couple of cycles; measured from first injection, the tail of the
        // burst must wait for the whole burst to squeeze through leaf 0's
        // single down-link.
        let mut net = BftNoc::new(2, 1, 128);
        net.set_dest(0, 0, PortAddr { leaf: 0, port: 0 });
        net.set_dest(1, 0, PortAddr { leaf: 0, port: 0 });
        let mut sent = 0u64;
        for w in 0..40u32 {
            net.inject(0, 0, w).unwrap();
            net.inject(1, 0, 1000 + w).unwrap();
            sent += 2;
        }
        net.drain(10_000);
        let stats = net.stats();
        assert_eq!(stats.delivered, sent);
        assert!(stats.deflections > 0, "hot spot must deflect");
        // All flits were born at cycle 0 and leaf 0 accepts at most one
        // flit per cycle, so the last delivery is at least `sent` cycles
        // after its injection.
        assert!(
            stats.max_latency >= sent,
            "max_latency {} counts re-injection, not first inject",
            stats.max_latency
        );
        // Deliveries are spread over ~`sent` cycles, so the latency *sum*
        // must be quadratic in the burst, not linear.
        assert!(
            stats.total_latency >= sent * sent / 4,
            "total_latency {} too small for a hot-spot burst",
            stats.total_latency
        );
    }

    #[test]
    fn idle_steps_advance_time_without_touching_switches() {
        // O(active) stepping: a big idle network must step in ~no time and
        // behave identically afterwards.
        let mut net = BftNoc::new(1024, 1, 4);
        for _ in 0..100_000 {
            net.step();
        }
        assert_eq!(net.cycle(), 100_000);
        assert!(!net.in_flight());
        net.set_dest(0, 0, PortAddr { leaf: 9, port: 0 });
        net.inject(0, 0, 7).unwrap();
        assert!(net.in_flight());
        net.drain(100);
        assert_eq!(net.try_recv(9, 0), Some(7));
        assert!(!net.in_flight());
        assert_eq!(net.active_flits(), 0);
    }

    #[test]
    fn swapped_leaf_injection_commits_at_barrier_and_respects_birth() {
        let mut net = linked_net(8);
        // Swap leaf 0 out, as a parallel worker would between barriers.
        let mut held = LeafInterface::new(1, 1, 4);
        net.swap_leaf(0, &mut held);
        // The worker injects two words: one due now (cycle 0) and one born
        // three cycles in the future by a core running ahead of the clock.
        held.inject_local(0, 0, 10, 0).unwrap();
        held.inject_local(0, 0, 20, 3).unwrap();
        // Nothing is visible to the scheduler until the barrier commit.
        assert_eq!(net.active_flits(), 0);
        net.swap_leaf(0, &mut held);
        net.commit_injections(0);
        assert_eq!(net.active_flits(), 2);
        assert_eq!(net.stats().injected, 2);
        // The first word leaves immediately; the future-born word must not
        // enter the tree before cycle 3.
        net.step();
        assert_eq!(net.active_flits(), 2, "future-born flit held in FIFO");
        net.drain(100);
        assert_eq!(net.try_recv(1, 0), Some(10));
        assert_eq!(net.try_recv(1, 0), Some(20));
        // Birth gating delays entry to cycle 3, so its latency (measured
        // from birth) stays small even though it was queued at cycle 0.
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn rounds_up_to_power_of_two() {
        let net = BftNoc::new(23, 1, 4);
        assert_eq!(net.leaf_count(), 32);
    }

    #[test]
    fn uplink_is_one_word_per_cycle() {
        // 100 words from one leaf need >= 100 cycles to drain: the paper's
        // leaf-interface bandwidth bottleneck.
        let mut net = BftNoc::new(4, 1, 128);
        net.set_dest(0, 0, PortAddr { leaf: 2, port: 0 });
        for w in 0..100 {
            net.inject(0, 0, w).unwrap();
        }
        let cycles = net.drain(10_000);
        assert!(cycles >= 100, "drained in {cycles} cycles");
        assert_eq!(net.stats().delivered, 100);
    }
}
