//! Regenerates Fig. 9: the distribution of per-page operator mapping times
//! under `-O1`.
//!
//! `cargo run --release -p pld-bench --bin fig9 [tiny|small|medium]`

use pld_bench::{compile_suite, histogram_line, scale_from_args, secs};

fn main() {
    let scale = scale_from_args();
    let entries = compile_suite(scale);

    println!("Figure 9: Operators Mapping Time for PLD with -O1 ({scale:?} scale)\n");
    println!(
        "{:18} {:>7} {:>7} {:>7}  distribution (min..max)",
        "benchmark", "min", "median", "max"
    );
    for e in &entries {
        let mut times: Vec<f64> = e.o1.operators.iter().map(|o| o.vtime.total()).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let min = times[0];
        let max = *times.last().expect("nonempty");
        let median = times[times.len() / 2];
        println!(
            "{:18} {:>6}s {:>6}s {:>6}s  [{}]",
            e.bench.name,
            secs(min),
            secs(median),
            secs(max),
            histogram_line(&times, 24),
        );
    }
    println!(
        "\npaper shape: per-page compiles spread over minutes; the worst page\n\
         defines the -O1 turn, and designs with a 2x-slowest page also hold\n\
         pages that compile in half the time (Sec. 7.3)."
    );
}
